"""A stateless firewall: ordered allow/deny rules over match fields.

IXP fabrics enforce port security and protocol hygiene at the edge
(only IPv4/ARP from the member's MAC, no leaked IGP chatter, etc.).
:class:`FirewallApp` compiles an ordered ACL into priority-stacked
OpenFlow rules: each ACL entry becomes a rule whose action is either
Drop (deny) or GotoTable/no-op (allow), with a configurable default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Union

from ...errors import ControlPlaneError
from ...openflow.action import ApplyActions, Drop, GotoTable
from ...openflow.match import Match
from ..app import ControllerApp


@dataclass(frozen=True)
class AclRule:
    """One access-control entry: ``match`` then allow or deny."""

    match: Match
    allow: bool

    def __repr__(self) -> str:
        verb = "allow" if self.allow else "deny"
        return f"<AclRule {verb} {self.match.describe()}>"


class FirewallApp(ControllerApp):
    """Install an ordered ACL on selected switches.

    Semantics mirror router ACLs: the first matching entry decides;
    ``default_allow`` covers the rest.  Like the rate limiter, the
    firewall occupies an early pipeline table and allows by jumping to
    the next table, so it composes with any forwarding policy.

    Parameters
    ----------
    rules:
        Ordered ACL; earlier entries win (compiled to higher priority).
    default_allow:
        Behaviour when nothing matches (True = permit).
    scope:
        ``"all"`` or an iterable of switch names (e.g. the edge only).
    """

    #: Priority of the first ACL entry; later entries count down.
    BASE_PRIORITY = 1000

    def __init__(
        self,
        rules: Sequence[AclRule] = (),
        name: str = "firewall",
        default_allow: bool = True,
        scope: Union[str, Iterable[str]] = "all",
    ) -> None:
        super().__init__(name)
        self.rules: List[AclRule] = list(rules)
        self.default_allow = default_allow
        self.scope = scope
        self.next_table: Optional[int] = None

    def _scoped_dpids(self) -> List[int]:
        if self.scope == "all":
            return self.channel.datapath_ids()
        names = set(self.scope)
        return [s.dpid for s in self.topology.switches if s.name in names]

    def _require_next_table(self) -> int:
        next_table = (
            self.next_table if self.next_table is not None else self.table_id + 1
        )
        for switch in self.topology.switches:
            if switch.pipeline is not None and next_table >= len(
                switch.pipeline.tables
            ):
                raise ControlPlaneError(
                    f"the firewall needs a table after {self.table_id} to "
                    f"jump to on allow, but {switch.name} has only "
                    f"{len(switch.pipeline.tables)} tables"
                )
        return next_table

    def start(self) -> None:
        next_table = self._require_next_table()
        if len(self.rules) >= self.BASE_PRIORITY:
            raise ControlPlaneError(
                f"ACL too long ({len(self.rules)} entries; "
                f"max {self.BASE_PRIORITY - 1})"
            )
        for dpid in self._scoped_dpids():
            for index, rule in enumerate(self.rules):
                priority = self.BASE_PRIORITY - index
                if rule.allow:
                    instructions = (GotoTable(next_table),)
                else:
                    instructions = (ApplyActions((Drop(),)),)
                self.add_flow(dpid, rule.match, instructions, priority=priority)
            # Default entry below every ACL rule.
            default_instructions = (
                (GotoTable(next_table),)
                if self.default_allow
                else (ApplyActions((Drop(),)),)
            )
            self.add_flow(dpid, Match(), default_instructions, priority=0)

    # ------------------------------------------------------------------
    def append_rule(self, rule: AclRule) -> None:
        """Add an entry at the end of the ACL at runtime."""
        next_table = self._require_next_table()
        index = len(self.rules)
        self.rules.append(rule)
        priority = self.BASE_PRIORITY - index
        if priority <= 0:
            raise ControlPlaneError("ACL exhausted its priority band")
        instructions = (
            (GotoTable(next_table),)
            if rule.allow
            else (ApplyActions((Drop(),)),)
        )
        for dpid in self._scoped_dpids():
            self.add_flow(dpid, rule.match, instructions, priority=priority)


def deny(match: Match) -> AclRule:
    """Shorthand for a deny entry."""
    return AclRule(match=match, allow=False)


def allow(match: Match) -> AclRule:
    """Shorthand for an allow entry."""
    return AclRule(match=match, allow=True)
