"""Application-based peering (the poster's "application specific
policy": 'e1->e3 : http').

Traffic of a given application (transport port) between two endpoints is
steered over a dedicated path, overriding base forwarding with
higher-priority rules that additionally match the application port.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from ...errors import ControlPlaneError
from ...openflow.action import ApplyActions, Output
from ...openflow.headers import AppPort, EthType, IpProto
from ...openflow.match import Match
from ..app import ControllerApp

#: Application names accepted in specs (the poster's 'http' style).
APP_PORTS = {
    "http": AppPort.HTTP,
    "https": AppPort.HTTPS,
    "dns": AppPort.DNS,
    "ssh": AppPort.SSH,
    "rtmp": AppPort.RTMP,
}


def app_port(app: Union[str, int]) -> int:
    """Resolve an application name or explicit port number."""
    if isinstance(app, int):
        if not 0 < app < 65536:
            raise ControlPlaneError(f"bad application port {app}")
        return app
    try:
        return APP_PORTS[app.lower()]
    except KeyError:
        raise ControlPlaneError(
            f"unknown application {app!r}; known: {sorted(APP_PORTS)}"
        ) from None


@dataclass(frozen=True)
class PeeringRule:
    """Steer ``app`` traffic from ``src`` prefix to ``dst`` prefix over
    ``path`` (a host-to-host node-name path, or None for the second
    shortest path between the endpoints' attachment switches)."""

    src_host: str
    dst_host: str
    app: Union[str, int]
    path: Optional[Sequence[str]] = None


class AppPeeringApp(ControllerApp):
    """Install per-application path overrides.

    Parameters
    ----------
    rules:
        The peering rules.
    priority:
        Must outrank base forwarding (default 60).
    alternative_path_index:
        When a rule has no explicit path, use the k-th shortest simple
        path (1 = shortest, default 2 = first alternative), falling back
        to the shortest when no alternative exists.
    """

    def __init__(
        self,
        rules: Sequence[PeeringRule] = (),
        name: str = "app-peering",
        priority: int = 60,
        alternative_path_index: int = 2,
    ) -> None:
        super().__init__(name)
        self.rules: List[PeeringRule] = list(rules)
        self.priority = priority
        self.alternative_path_index = alternative_path_index

    def start(self) -> None:
        for rule in self.rules:
            self._install(rule)

    def _resolve_path(self, rule: PeeringRule) -> List[str]:
        if rule.path is not None:
            return list(rule.path)
        k = self.alternative_path_index
        paths = self.topology.k_shortest_paths(rule.src_host, rule.dst_host, k)
        return paths[min(k, len(paths)) - 1]

    def _install(self, rule: PeeringRule) -> None:
        src = self.topology.host(rule.src_host)
        dst = self.topology.host(rule.dst_host)
        port = app_port(rule.app)
        path = self._resolve_path(rule)
        if path[0] != src.name or path[-1] != dst.name:
            raise ControlPlaneError(
                f"peering path {path} does not connect "
                f"{src.name} -> {dst.name}"
            )
        match = Match(
            eth_type=EthType.IPV4,
            ip_src=src.ip,
            ip_dst=dst.ip,
            ip_proto=IpProto.TCP,
            tp_dst=port,
        )
        for i in range(1, len(path) - 1):
            switch = self.topology.switch(path[i])
            egress = self.topology.egress_port(switch.name, path[i + 1])
            self.add_flow(
                switch.dpid,
                match,
                (ApplyActions((Output(egress.number),)),),
                priority=self.priority,
            )

    def add_rule(self, rule: PeeringRule) -> None:
        """Add a peering override at runtime."""
        self.rules.append(rule)
        self._install(rule)
