"""Traffic mirroring: copy selected traffic to a monitor port.

IXPs tap peering traffic toward analytics boxes.  :class:`MirrorApp`
rewrites matching rules to an ALL group whose buckets are (a) the
original forwarding decision and (b) an Output to the tap port, so the
aggregate is replicated without disturbing the primary path.

Because mirroring must wrap whatever forwarding decides, the app runs
*after* the forwarding table would have: it installs higher-priority
rules in the same table whose ALL group contains both the tap output
and the forwarding egress, resolved at install time from the topology's
shortest path (the same decision ShortestPathApp makes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ...errors import ControlPlaneError
from ...net.node import Host
from ...openflow.action import ApplyActions, GroupAction, Output
from ...openflow.group import Bucket, GroupType
from ...openflow.match import Match
from ..app import ControllerApp


@dataclass(frozen=True)
class MirrorRule:
    """Mirror traffic matching ``match`` at switch ``switch_name`` to
    host ``tap_host`` (which must attach to that switch)."""

    switch_name: str
    match: Match
    tap_host: str


class MirrorApp(ControllerApp):
    """Install ALL-group mirroring rules.

    Restrictions keep semantics crisp: the tap host must be directly
    attached to the mirroring switch, and the mirrored traffic must be
    destination-routable by hop-count shortest path (the common case;
    compose with SourceRoutingApp for exotic paths).

    Parameters
    ----------
    rules:
        The mirror rules.
    priority:
        Must outrank the base forwarding rules being wrapped.
    """

    def __init__(
        self,
        rules: Sequence[MirrorRule] = (),
        name: str = "mirror",
        priority: int = 150,
    ) -> None:
        super().__init__(name)
        self.rules: List[MirrorRule] = list(rules)
        self.priority = priority
        self._next_group: Dict[int, int] = {}
        #: (dpid, group_id) pairs installed, for tests/inspection.
        self.installed: List[Tuple[int, int]] = []

    def start(self) -> None:
        for rule in self.rules:
            self._install(rule)

    def _install(self, rule: MirrorRule) -> None:
        switch = self.topology.switch(rule.switch_name)
        tap = self.topology.host(rule.tap_host)
        tap_port = None
        for port in switch.connected_ports:
            peer = port.peer
            if peer is not None and peer.node is tap:
                tap_port = port.number
        if tap_port is None:
            raise ControlPlaneError(
                f"tap host {tap.name} is not attached to {switch.name}"
            )
        forward_port = self._forwarding_port(rule, switch, tap_port)
        group_id = self._allocate_group(switch.dpid)
        buckets = [
            Bucket((Output(forward_port),)),
            Bucket((Output(tap_port),)),
        ]
        self.add_group(switch.dpid, group_id, GroupType.ALL, buckets)
        self.add_flow(
            switch.dpid,
            rule.match,
            (ApplyActions((GroupAction(group_id),)),),
            priority=self.priority,
        )
        self.installed.append((switch.dpid, group_id))

    def _forwarding_port(self, rule: MirrorRule, switch, tap_port: int) -> int:
        """Where would this traffic go if not mirrored?"""
        destination = self._destination_host(rule.match)
        path = self.topology.shortest_path(switch.name, destination.name)
        if len(path) < 2:
            raise ControlPlaneError(
                f"no forwarding hop from {switch.name} to {destination.name}"
            )
        return self.topology.egress_port(switch.name, path[1].name).number

    def _destination_host(self, match: Match) -> Host:
        if match.ip_dst is not None:
            for host in self.topology.hosts:
                if host.ip == match.ip_dst:
                    return host
        if match.eth_dst is not None:
            for host in self.topology.hosts:
                if host.mac == match.eth_dst:
                    return host
        raise ControlPlaneError(
            "mirror rules need an exact ip_dst or eth_dst to resolve the "
            f"primary path (got {match.describe()})"
        )

    def _allocate_group(self, dpid: int) -> int:
        # Offset well away from the load balancer's group id space.
        self._next_group[dpid] = self._next_group.get(dpid, 0) + 1
        return 0x4000 + self._next_group[dpid]

    def add_rule(self, rule: MirrorRule) -> None:
        """Start mirroring a new aggregate at runtime."""
        self.rules.append(rule)
        self._install(rule)
