"""Multipath load balancing: ECMP, WCMP, and a reactive variant.

Per destination host, every switch with several equal-cost next hops
gets a SELECT group hashing flows across them (ECMP).  WCMP starts from
explicit weights; the reactive variant re-weights buckets away from hot
links using monitor samples — the monitor→policy loop of experiment E5.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from ...errors import ControlPlaneError
from ...net.node import Host, Switch
from ...openflow.action import ApplyActions, GroupAction, Output
from ...openflow.group import Bucket, GroupType
from ...openflow.match import Match
from ...openflow.messages import PortStatus
from ..app import ControllerApp


class EcmpLoadBalancerApp(ControllerApp):
    """Hash-based equal-cost multipath forwarding.

    Parameters
    ----------
    match_on:
        ``"eth_dst"`` or ``"ip_dst"`` (default).
    priority:
        Priority of installed rules.
    weights:
        Optional static WCMP weights: ``{(switch_name, port_no): weight}``.
    """

    def __init__(
        self,
        name: str = "ecmp-lb",
        match_on: str = "ip_dst",
        priority: int = 10,
        weights: Optional[Dict[Tuple[str, int], int]] = None,
    ) -> None:
        super().__init__(name)
        if match_on not in ("eth_dst", "ip_dst"):
            raise ControlPlaneError(f"match_on must be eth_dst/ip_dst, got {match_on}")
        self.match_on = match_on
        self.priority = priority
        self.weights = dict(weights or {})
        #: (dpid, dst host name) -> group id
        self.group_ids: Dict[Tuple[int, str], int] = {}
        self._next_group: Dict[int, int] = {}
        #: (dpid, group_id) -> ordered egress port list (for re-weighting)
        self.group_ports: Dict[Tuple[int, int], List[int]] = {}

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.install_all()

    def install_all(self) -> None:
        for host in self.topology.hosts:
            self._install_for_destination(host)

    def _match_for(self, host: Host) -> Match:
        if self.match_on == "eth_dst":
            return Match(eth_dst=host.mac)
        return Match(ip_dst=host.ip)

    def _distances(self, dst: Host) -> Dict[str, int]:
        """Hop distance to dst over up links (hosts don't forward)."""
        topo = self.topology
        dist = {dst.name: 0}
        frontier = deque([dst.name])
        while frontier:
            name = frontier.popleft()
            for neighbor in topo.neighbors(name, up_only=True):
                if neighbor.name in dist:
                    continue
                dist[neighbor.name] = dist[name] + 1
                if isinstance(neighbor, Switch):
                    frontier.append(neighbor.name)
        return dist

    def _install_for_destination(self, dst: Host) -> None:
        dist = self._distances(dst)
        match = self._match_for(dst)
        for switch in self.topology.switches:
            if switch.name not in dist:
                continue
            next_hops = [
                n
                for n in self.topology.neighbors(switch.name, up_only=True)
                if n.name in dist and dist[n.name] == dist[switch.name] - 1
            ]
            if not next_hops:
                continue
            ports = sorted(
                self.topology.egress_port(switch.name, n.name).number
                for n in next_hops
            )
            if len(ports) == 1:
                self.add_flow(
                    switch.dpid,
                    match,
                    (ApplyActions((Output(ports[0]),)),),
                    priority=self.priority,
                )
                continue
            group_id = self._group_for(switch.dpid, dst.name)
            buckets = [
                Bucket(
                    (Output(p),),
                    weight=self.weights.get((switch.name, p), 1),
                )
                for p in ports
            ]
            self.add_group(switch.dpid, group_id, GroupType.SELECT, buckets)
            self.group_ports[(switch.dpid, group_id)] = ports
            self.add_flow(
                switch.dpid,
                match,
                (ApplyActions((GroupAction(group_id),)),),
                priority=self.priority,
            )

    def _group_for(self, dpid: int, dst_name: str) -> int:
        key = (dpid, dst_name)
        if key not in self.group_ids:
            self._next_group[dpid] = self._next_group.get(dpid, 0) + 1
            self.group_ids[key] = self._next_group[dpid]
        return self.group_ids[key]

    # ------------------------------------------------------------------
    def on_port_status(self, message: PortStatus) -> None:
        for dpid in self.channel.datapath_ids():
            self.delete_flows(dpid, Match())
        self.install_all()


class ReactiveLoadBalancerApp(EcmpLoadBalancerApp):
    """WCMP that shifts weight away from hot egress links.

    Consumes monitor samples (see
    :class:`repro.control.monitor.NetworkMonitor`): when any watched
    egress link of a group exceeds ``threshold`` utilization, bucket
    weights are recomputed inversely proportional to utilization and the
    group is modified in place — flows re-hash onto cooler paths.
    """

    def __init__(
        self,
        name: str = "reactive-lb",
        match_on: str = "ip_dst",
        priority: int = 10,
        threshold: float = 0.8,
        min_imbalance: float = 0.15,
        weight_scale: int = 10,
    ) -> None:
        super().__init__(name=name, match_on=match_on, priority=priority)
        if not 0 < threshold <= 1:
            raise ControlPlaneError(f"threshold must be in (0,1], got {threshold}")
        self.threshold = threshold
        #: Hysteresis: don't touch a group unless the spread between its
        #: hottest and coolest egress exceeds this, or re-hashing whole
        #: buckets just oscillates the hot spot.
        self.min_imbalance = min_imbalance
        self.weight_scale = weight_scale
        self.rebalances = 0

    def on_monitor_sample(self, sample) -> None:
        utilization = sample.utilization
        for (dpid, group_id), ports in list(self.group_ports.items()):
            switch = self.topology.switch_by_dpid(dpid)
            utils = [
                utilization.get((switch.name, p), 0.0) for p in ports
            ]
            if not utils or max(utils) < self.threshold:
                continue
            if max(utils) - min(utils) < self.min_imbalance:
                continue  # both paths hot: re-hashing cannot help
            # New weight: proportional to free headroom, at least 1.
            buckets = [
                Bucket(
                    (Output(p),),
                    weight=max(1, round(self.weight_scale * (1.0 - u))),
                )
                for p, u in zip(ports, utils)
            ]
            self.add_group(dpid, group_id, GroupType.SELECT, buckets)
            self.rebalances += 1
