"""Proactive shortest-path forwarding.

Builds one destination-rooted shortest-path tree per host and installs a
``dst -> next hop`` rule on every switch, matching on destination MAC or
IPv4.  Recomputes affected trees on port-status changes, so traffic
converges after link failures without per-flow controller involvement.
"""

from __future__ import annotations

from collections import deque
from typing import Dict

from ...errors import ControlPlaneError
from ...net.node import Host, Switch
from ...openflow.action import ApplyActions, Output
from ...openflow.match import Match
from ...openflow.messages import PortStatus
from ..app import ControllerApp


class ShortestPathApp(ControllerApp):
    """Install hop-count shortest-path forwarding for every host.

    Parameters
    ----------
    match_on:
        ``"eth_dst"`` (default) or ``"ip_dst"``.
    priority:
        Priority of installed rules.
    next_table:
        When set (by the policy composer), rules also jump to this table
        — unused for plain forwarding, present for composition symmetry.
    """

    def __init__(
        self,
        name: str = "shortest-path",
        match_on: str = "eth_dst",
        priority: int = 10,
    ) -> None:
        super().__init__(name)
        if match_on not in ("eth_dst", "ip_dst"):
            raise ControlPlaneError(f"match_on must be eth_dst/ip_dst, got {match_on}")
        self.match_on = match_on
        self.priority = priority

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.install_all()

    def install_all(self) -> None:
        """(Re)install forwarding trees for every host."""
        for host in self.topology.hosts:
            self._install_tree(host)

    def _match_for(self, host: Host) -> Match:
        if self.match_on == "eth_dst":
            return Match(eth_dst=host.mac)
        return Match(ip_dst=host.ip)

    def _install_tree(self, dst: Host) -> None:
        """BFS from the destination; each switch forwards to its parent."""
        parent = self._bfs_parents(dst)
        match = self._match_for(dst)
        for switch in self.topology.switches:
            towards = parent.get(switch.name)
            if towards is None:
                continue  # unreachable from this switch
            port = self.topology.egress_port(switch.name, towards)
            self.add_flow(
                switch.dpid,
                match,
                (ApplyActions((Output(port.number),)),),
                priority=self.priority,
            )

    def _bfs_parents(self, dst: Host) -> Dict[str, str]:
        """name -> neighbor name one hop closer to dst (over up links)."""
        topo = self.topology
        parent: Dict[str, str] = {}
        seen = {dst.name}
        frontier = deque([dst.name])
        while frontier:
            name = frontier.popleft()
            for neighbor in topo.neighbors(name, up_only=True):
                if neighbor.name in seen:
                    continue
                seen.add(neighbor.name)
                parent[neighbor.name] = name
                # Hosts other than dst never forward; don't traverse them.
                if isinstance(neighbor, Switch):
                    frontier.append(neighbor.name)
        return parent

    # ------------------------------------------------------------------
    def on_port_status(self, message: PortStatus) -> None:
        # Topology changed: wipe this app's rules and rebuild all trees.
        # (Coarse but correct; incremental repair is an optimization.)
        for dpid in self.channel.datapath_ids():
            self.delete_flows(dpid, Match())
        self.install_all()
