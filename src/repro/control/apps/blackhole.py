"""Blackholing: drop traffic to/from a victim address or prefix.

The classic IXP DDoS mitigation the poster lists among legacy policies:
high-priority drop rules, installed fabric-wide or at the edge only.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

from ...errors import ControlPlaneError
from ...net.address import IPv4Address, IPv4Network, MacAddress
from ...openflow.action import ApplyActions, Drop
from ...openflow.match import Match
from ..app import ControllerApp

Target = Union[IPv4Address, IPv4Network, MacAddress]


class BlackholeApp(ControllerApp):
    """Install drop rules for victim targets.

    Parameters
    ----------
    targets:
        Addresses/prefixes to blackhole.
    direction:
        ``"dst"`` (default: drop traffic *to* the victim), ``"src"``
        (drop traffic *from* it), or ``"both"``.
    scope:
        ``"all"`` switches (default) or an iterable of switch names.
    priority:
        Must outrank forwarding rules (default 100).
    """

    def __init__(
        self,
        targets: Sequence[Target] = (),
        name: str = "blackhole",
        direction: str = "dst",
        scope: Union[str, Iterable[str]] = "all",
        priority: int = 100,
    ) -> None:
        super().__init__(name)
        if direction not in ("dst", "src", "both"):
            raise ControlPlaneError(f"direction must be dst/src/both, got {direction}")
        self.targets: List[Target] = list(targets)
        self.direction = direction
        self.scope = scope
        self.priority = priority

    def _scoped_dpids(self) -> List[int]:
        if self.scope == "all":
            return self.channel.datapath_ids()
        names = set(self.scope)
        return [
            s.dpid for s in self.topology.switches if s.name in names
        ]

    def _matches_for(self, target: Target) -> List[Match]:
        matches = []
        if isinstance(target, MacAddress):
            if self.direction in ("dst", "both"):
                matches.append(Match(eth_dst=target))
            if self.direction in ("src", "both"):
                matches.append(Match(eth_src=target))
        else:
            if self.direction in ("dst", "both"):
                matches.append(Match(ip_dst=target))
            if self.direction in ("src", "both"):
                matches.append(Match(ip_src=target))
        return matches

    def start(self) -> None:
        for target in self.targets:
            self._install(target)

    def _install(self, target: Target) -> None:
        instructions = (ApplyActions((Drop(),)),)
        for dpid in self._scoped_dpids():
            for match in self._matches_for(target):
                self.add_flow(dpid, match, instructions, priority=self.priority)

    # ------------------------------------------------------------------
    # Runtime management (mitigation is usually turned on under attack)
    # ------------------------------------------------------------------
    def add_target(self, target: Target) -> None:
        """Blackhole a new victim immediately."""
        self.targets.append(target)
        self._install(target)

    def remove_target(self, target: Target) -> None:
        """Lift the blackhole for one victim."""
        if target not in self.targets:
            raise ControlPlaneError(f"{target} is not blackholed")
        self.targets.remove(target)
        for dpid in self._scoped_dpids():
            for match in self._matches_for(target):
                self.delete_flows(dpid, match)
