"""Rate limiting via meters (the poster's "rate limit policy ...
500 Mbps" example).

Each limit compiles to a meter plus a rule directing matching traffic
through it.  Because the limiting rule must not hide the forwarding
decision, the app is designed for multi-table composition: its rules
live in an early table and jump to the next one (``GotoTable``), where
forwarding apps match again.  The policy composer assigns tables; using
the app standalone with a single-table pipeline raises a clear error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ...errors import ControlPlaneError
from ...openflow.action import GotoTable, MeterInstruction
from ...openflow.match import Match
from ..app import ControllerApp


@dataclass(frozen=True)
class RateLimit:
    """One limit: traffic matching ``match`` is capped at ``rate_bps``.

    ``scope`` limits installation to the named switches (default: the
    first switch on the matched traffic's path is unknown to the app,
    so all switches meter it; metering the same aggregate at several
    hops is harmless — the first meter is binding).
    """

    match: Match
    rate_bps: float
    scope: Optional[Sequence[str]] = None
    burst_bits: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ControlPlaneError(f"rate must be > 0, got {self.rate_bps}")


class RateLimiterApp(ControllerApp):
    """Install meters + metering rules for a list of :class:`RateLimit`.

    Parameters
    ----------
    limits:
        The limits to enforce.
    priority:
        Priority of metering rules within their table.
    """

    def __init__(
        self,
        limits: Sequence[RateLimit] = (),
        name: str = "rate-limiter",
        priority: int = 50,
    ) -> None:
        super().__init__(name)
        self.limits: List[RateLimit] = list(limits)
        self.priority = priority
        #: Set by the policy composer: the table forwarding lives in.
        self.next_table: Optional[int] = None
        self._next_meter: dict = {}

    def _require_next_table(self) -> int:
        next_table = (
            self.next_table if self.next_table is not None else self.table_id + 1
        )
        # Validate against an actual pipeline.
        for switch in self.topology.switches:
            if switch.pipeline is not None and next_table >= len(
                switch.pipeline.tables
            ):
                raise ControlPlaneError(
                    f"rate limiting needs a table after {self.table_id} to jump "
                    f"to, but {switch.name} has only "
                    f"{len(switch.pipeline.tables)} tables; build pipelines "
                    "with num_tables >= 2 or use the policy composer"
                )
        return next_table

    def _scoped_dpids(self, limit: RateLimit) -> List[int]:
        if limit.scope is None:
            return self.channel.datapath_ids()
        names = set(limit.scope)
        return [s.dpid for s in self.topology.switches if s.name in names]

    def start(self) -> None:
        next_table = self._require_next_table()
        # A low-priority pass-through so unmatched traffic still reaches
        # the forwarding table.
        for dpid in self.channel.datapath_ids():
            self.add_flow(dpid, Match(), (GotoTable(next_table),), priority=0)
        for limit in self.limits:
            self._install(limit, next_table)

    def _install(self, limit: RateLimit, next_table: int) -> None:
        for dpid in self._scoped_dpids(limit):
            meter_id = self._allocate_meter(dpid)
            self.add_meter(
                dpid, meter_id, limit.rate_bps, burst_bits=limit.burst_bits
            )
            self.add_flow(
                dpid,
                limit.match,
                (MeterInstruction(meter_id), GotoTable(next_table)),
                priority=self.priority,
            )

    def _allocate_meter(self, dpid: int) -> int:
        self._next_meter[dpid] = self._next_meter.get(dpid, 0) + 1
        return self._next_meter[dpid]

    # ------------------------------------------------------------------
    def add_limit(self, limit: RateLimit) -> None:
        """Enforce a new limit at runtime."""
        self.limits.append(limit)
        self._install(limit, self._require_next_table())
