"""Source routing: pin a (src, dst) pair to an explicit path.

Installs per-pair rules matching both endpoints along the chosen node
path, overriding base forwarding (the poster's "source routing" edge
policy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ...errors import ControlPlaneError
from ...openflow.action import ApplyActions, Output
from ...openflow.match import Match
from ..app import ControllerApp


@dataclass(frozen=True)
class SourceRoute:
    """An explicit host-to-host node-name path for one pair."""

    src_host: str
    dst_host: str
    path: Sequence[str]

    def __post_init__(self) -> None:
        if len(self.path) < 3:
            raise ControlPlaneError(
                f"source route must contain at least one switch: {self.path}"
            )


class SourceRoutingApp(ControllerApp):
    """Install explicit per-pair paths.

    Parameters
    ----------
    routes:
        The pinned paths.
    priority:
        Must outrank base forwarding (default 50).
    """

    def __init__(
        self,
        routes: Sequence[SourceRoute] = (),
        name: str = "source-routing",
        priority: int = 50,
    ) -> None:
        super().__init__(name)
        self.routes: List[SourceRoute] = list(routes)
        self.priority = priority

    def start(self) -> None:
        for route in self.routes:
            self._install(route)

    def _install(self, route: SourceRoute) -> None:
        src = self.topology.host(route.src_host)
        dst = self.topology.host(route.dst_host)
        path = list(route.path)
        if path[0] != src.name or path[-1] != dst.name:
            raise ControlPlaneError(
                f"route path {path} does not connect {src.name} -> {dst.name}"
            )
        # Validate contiguity up front so errors surface at install time.
        for a, b in zip(path, path[1:]):
            self.topology.link_between(a, b)
        match = Match(ip_src=src.ip, ip_dst=dst.ip)
        for i in range(1, len(path) - 1):
            switch = self.topology.switch(path[i])
            egress = self.topology.egress_port(switch.name, path[i + 1])
            self.add_flow(
                switch.dpid,
                match,
                (ApplyActions((Output(egress.number),)),),
                priority=self.priority,
            )

    def add_route(self, route: SourceRoute) -> None:
        """Pin a new path at runtime."""
        self.routes.append(route)
        self._install(route)
