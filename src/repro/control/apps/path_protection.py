"""Path protection with fast-failover groups.

Instead of waiting for the controller to recompute after a failure
(ShortestPathApp's reactive repair), this app pre-installs backup next
hops: each (switch, destination) rule points at a FAST_FAILOVER group
whose first live bucket wins.  When the primary egress port dies, the
data plane fails over instantly — zero control-plane round trips — the
classic argument for OpenFlow group tables.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

from ...errors import ControlPlaneError
from ...net.node import Host, Switch
from ...openflow.action import ApplyActions, GroupAction, Output
from ...openflow.group import Bucket, GroupType
from ...openflow.match import Match
from ..app import ControllerApp


class PathProtectionApp(ControllerApp):
    """Proactive forwarding with precomputed local backup next hops.

    For every destination host, each switch ranks its neighbours by
    distance-to-destination: neighbours strictly closer (downhill) are
    primaries, equal-distance neighbours (sideways) are backups — a
    loop-free alternate in the LFA sense, because a same-distance
    neighbour's shortest path cannot come back through us after our
    downhill link died.

    Parameters
    ----------
    match_on:
        ``"eth_dst"`` or ``"ip_dst"`` (default).
    priority:
        Priority of installed rules.
    """

    def __init__(
        self,
        name: str = "path-protection",
        match_on: str = "ip_dst",
        priority: int = 10,
    ) -> None:
        super().__init__(name)
        if match_on not in ("eth_dst", "ip_dst"):
            raise ControlPlaneError(f"match_on must be eth_dst/ip_dst, got {match_on}")
        self.match_on = match_on
        self.priority = priority
        self._next_group: Dict[int, int] = {}
        #: (dpid, dst host) -> number of buckets installed (tests).
        self.protection: Dict[Tuple[int, str], int] = {}

    def start(self) -> None:
        for host in self.topology.hosts:
            self._install_for_destination(host)

    def _match_for(self, host: Host) -> Match:
        if self.match_on == "eth_dst":
            return Match(eth_dst=host.mac)
        return Match(ip_dst=host.ip)

    def _distances(self, dst: Host) -> Dict[str, int]:
        topo = self.topology
        dist = {dst.name: 0}
        frontier = deque([dst.name])
        while frontier:
            name = frontier.popleft()
            for neighbor in topo.neighbors(name, up_only=True):
                if neighbor.name in dist:
                    continue
                dist[neighbor.name] = dist[name] + 1
                if isinstance(neighbor, Switch):
                    frontier.append(neighbor.name)
        return dist

    def _install_for_destination(self, dst: Host) -> None:
        dist = self._distances(dst)
        match = self._match_for(dst)
        for switch in self.topology.switches:
            if switch.name not in dist:
                continue
            own = dist[switch.name]
            primaries: List[int] = []
            backups: List[int] = []
            for neighbor in self.topology.neighbors(switch.name, up_only=True):
                if neighbor.name not in dist:
                    continue
                port = self.topology.egress_port(switch.name, neighbor.name)
                if dist[neighbor.name] == own - 1:
                    primaries.append(port.number)
                elif (
                    dist[neighbor.name] == own
                    and isinstance(neighbor, Switch)
                ):
                    backups.append(port.number)
            if not primaries:
                continue
            ports = sorted(primaries) + sorted(backups)
            if len(ports) == 1:
                self.add_flow(
                    switch.dpid,
                    match,
                    (ApplyActions((Output(ports[0]),)),),
                    priority=self.priority,
                )
                self.protection[(switch.dpid, dst.name)] = 1
                continue
            group_id = self._allocate_group(switch.dpid)
            buckets = [
                Bucket((Output(p),), watch_port=p) for p in ports
            ]
            self.add_group(
                switch.dpid, group_id, GroupType.FAST_FAILOVER, buckets
            )
            self.add_flow(
                switch.dpid,
                match,
                (ApplyActions((GroupAction(group_id),)),),
                priority=self.priority,
            )
            self.protection[(switch.dpid, dst.name)] = len(buckets)

    def _allocate_group(self, dpid: int) -> int:
        self._next_group[dpid] = self._next_group.get(dpid, 0) + 1
        return 0x8000 + self._next_group[dpid]

    def on_port_status(self, message) -> None:
        """Failover is handled in the data plane; the controller only
        refreshes groups on *recovery* so primaries become preferred
        again (watch-port ordering is static)."""
        if not message.link_up:
            return
        for dpid in self.channel.datapath_ids():
            self.delete_flows(dpid, Match())
        self.protection.clear()
        for host in self.topology.hosts:
            self._install_for_destination(host)
