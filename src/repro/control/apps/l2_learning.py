"""Reactive L2 learning switch (the poster's "basic forwarding based on
source and destination MAC").

Installs a table-miss rule punting to the controller; on each packet-in
it learns the source MAC's port and either forwards/installs toward a
learned destination or floods.  Suitable for loop-free topologies
(trees, stars); use :class:`ShortestPathApp` on meshes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...net.address import MacAddress
from ...openflow.action import (
    ApplyActions,
            Output,
    PORT_FLOOD,
    ToController,
)
from ...openflow.match import Match
from ...openflow.messages import FlowRemoved, PacketIn, PortStatus
from ..app import ControllerApp


class L2LearningApp(ControllerApp):
    """MAC-learning forwarding with reactive rule installation.

    Parameters
    ----------
    idle_timeout:
        Idle timeout of installed forwarding rules (0 = permanent).
    priority:
        Priority of installed forwarding rules.
    """

    def __init__(
        self,
        name: str = "l2-learning",
        idle_timeout: float = 0.0,
        priority: int = 10,
    ) -> None:
        super().__init__(name)
        self.idle_timeout = idle_timeout
        self.priority = priority
        #: (dpid, mac) -> port number
        self.mac_table: Dict[Tuple[int, MacAddress], int] = {}

    def start(self) -> None:
        instructions = (ApplyActions((ToController(),)),)
        for dpid in self.channel.datapath_ids():
            self.add_flow(dpid, Match(), instructions, priority=0)

    def on_packet_in(self, message: PacketIn) -> Optional[List[int]]:
        headers = message.headers
        if headers is None:
            return None
        if headers.eth_src is not None:
            self.mac_table[(message.dpid, headers.eth_src)] = message.in_port
        if headers.eth_dst is None or headers.eth_dst.is_broadcast:
            return [PORT_FLOOD]
        out_port = self.mac_table.get((message.dpid, headers.eth_dst))
        if out_port is None:
            return [PORT_FLOOD]
        # Destination learned: install and forward directly.
        self.add_flow(
            message.dpid,
            Match(eth_dst=headers.eth_dst),
            (ApplyActions((Output(out_port),)),),
            priority=self.priority,
            idle_timeout=self.idle_timeout,
        )
        return [out_port]

    def on_port_status(self, message: PortStatus) -> None:
        if message.link_up:
            return
        # Purge learnings and rules through the dead port.
        stale = [
            key
            for key, port in self.mac_table.items()
            if key[0] == message.dpid and port == message.port_no
        ]
        for key in stale:
            del self.mac_table[key]
            self.delete_flows(message.dpid, Match(eth_dst=key[1]))

    def on_flow_removed(self, message: FlowRemoved) -> None:
        # An idle-timed-out rule means the learning may be stale too.
        if message.cookie != self.cookie:
            return
        eth_dst = message.match.eth_dst
        if eth_dst is not None:
            self.mac_table.pop((message.dpid, eth_dst), None)
