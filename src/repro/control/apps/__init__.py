"""Policy applications for the Horse controller."""

from .app_peering import APP_PORTS, AppPeeringApp, PeeringRule, app_port
from .blackhole import BlackholeApp
from .firewall import AclRule, FirewallApp, allow, deny
from .l2_learning import L2LearningApp
from .load_balancer import EcmpLoadBalancerApp, ReactiveLoadBalancerApp
from .mirror import MirrorApp, MirrorRule
from .path_protection import PathProtectionApp
from .rate_limiter import RateLimit, RateLimiterApp
from .shortest_path import ShortestPathApp
from .source_routing import SourceRoute, SourceRoutingApp

__all__ = [
    "APP_PORTS",
    "AclRule",
    "AppPeeringApp",
    "BlackholeApp",
    "EcmpLoadBalancerApp",
    "FirewallApp",
    "L2LearningApp",
    "MirrorApp",
    "MirrorRule",
    "PathProtectionApp",
    "PeeringRule",
    "RateLimit",
    "RateLimiterApp",
    "ReactiveLoadBalancerApp",
    "ShortestPathApp",
    "SourceRoute",
    "SourceRoutingApp",
    "allow",
    "app_port",
    "deny",
]
