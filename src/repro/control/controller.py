"""The lightweight modular controller.

Hosts an ordered list of :class:`~repro.control.app.ControllerApp`
instances and dispatches northbound events to them.  The controller is
deliberately thin — policy logic lives in apps, the poster's "policy
generator" lives in :mod:`repro.control.policy`, which configures apps
from high-level specs.
"""

from __future__ import annotations

import logging
from typing import List, Optional

from ..errors import ControlPlaneError
from ..openflow.messages import (
    ErrorMsg,
    FlowRemoved,
    Message,
    PacketIn,
    PortStatus,
)
from .app import ControllerApp

logger = logging.getLogger(__name__)


class Controller:
    """An SDN controller made of ordered apps.

    Examples
    --------
    Attach apps, wire a channel, then ``start()`` to install proactive
    state::

        controller = Controller()
        controller.add_app(ShortestPathApp())
        channel = ControlChannel(sim, topo, controller=controller)
        controller.start()
    """

    def __init__(self, name: str = "controller") -> None:
        self.name = name
        self.apps: List[ControllerApp] = []
        self.channel = None
        self._started = False
        self.stats = {
            "packet_ins": 0,
            "port_status": 0,
            "flow_removed": 0,
            "errors": 0,
        }

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, channel) -> None:
        """Called by the channel constructor."""
        self.channel = channel

    def add_app(self, app: ControllerApp) -> ControllerApp:
        """Register an app; order defines packet-in precedence."""
        if any(existing.name == app.name for existing in self.apps):
            raise ControlPlaneError(f"duplicate app name {app.name!r}")
        app.controller = self
        app.cookie = ControllerApp.COOKIE_BASE + len(self.apps) + 1
        self.apps.append(app)
        if self._started and self.channel is not None:
            app.start()
        return app

    def app(self, name: str) -> ControllerApp:
        for app in self.apps:
            if app.name == name:
                return app
        raise ControlPlaneError(f"no app named {name!r}")

    def remove_app(self, name: str) -> ControllerApp:
        """Stop an app and remove its rules."""
        app = self.app(name)
        app.stop()
        self.apps.remove(app)
        return app

    def start(self) -> None:
        """Install every app's proactive state."""
        if self.channel is None:
            raise ControlPlaneError("controller has no channel attached")
        self._started = True
        for app in self.apps:
            app.start()

    # ------------------------------------------------------------------
    # Northbound dispatch
    # ------------------------------------------------------------------
    def on_packet_in(self, message: PacketIn) -> Optional[List[int]]:
        """First app returning a packet-out decision claims the event."""
        self.stats["packet_ins"] += 1
        for app in self.apps:
            if not app.enabled:
                continue
            ports = app.on_packet_in(message)
            if ports is not None:
                return ports
        return None

    def on_port_status(self, message: PortStatus) -> None:
        self.stats["port_status"] += 1
        for app in self.apps:
            if app.enabled:
                app.on_port_status(message)

    def on_flow_removed(self, message: FlowRemoved) -> None:
        self.stats["flow_removed"] += 1
        for app in self.apps:
            if app.enabled:
                app.on_flow_removed(message)

    def on_monitor_sample(self, sample) -> None:
        for app in self.apps:
            if app.enabled:
                app.on_monitor_sample(sample)

    def on_error(self, message: ErrorMsg) -> None:
        self.stats["errors"] += 1
        logger.warning(
            "%s: switch %s rejected xid=%s: %s",
            self.name,
            message.dpid,
            message.failed_xid,
            message.detail,
        )

    def on_reply(self, message: Message) -> None:
        """Asynchronous stats replies land here (latency > 0 channels)."""

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def verify(
        self,
        specs: Optional[List] = None,
        strict: bool = False,
        raise_on_error: bool = True,
    ):
        """Statically verify the installed forwarding state.

        Runs the data-plane analyzer (:mod:`repro.analysis`) over the
        attached topology: loops, blackholes, shadowed rules, and —
        when ``specs`` carry path intents — reachability checks.

        Parameters
        ----------
        specs:
            Declared policy intents to verify against (e.g. the
            ``specs`` field of a :class:`CompiledPolicy`).
        strict:
            Treat warnings as failures too.
        raise_on_error:
            Raise :class:`~repro.errors.VerificationError` when the
            report fails; pass False to always get the report back.
        """
        if self.channel is None:
            raise ControlPlaneError("controller has no channel attached")
        from ..analysis import analyze_network
        from ..errors import VerificationError

        report = analyze_network(self.channel.topology, specs=specs)
        if raise_on_error and report.exit_code(strict=strict):
            raise VerificationError(report.summary_text())
        return report

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def rule_count(self) -> int:
        """Total rules currently installed across all switches."""
        if self.channel is None:
            return 0
        total = 0
        for switch in self.channel.topology.switches:
            if switch.pipeline is not None:
                total += switch.pipeline.total_entries
        return total

    def __repr__(self) -> str:
        return f"<Controller {self.name!r} apps={[a.name for a in self.apps]}>"
