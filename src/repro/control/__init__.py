"""Control plane: controller, apps, channel, monitoring, and policies."""

from .app import ControllerApp
from .channel import ControlChannel
from .controller import Controller
from .monitor import NetworkMonitor

__all__ = [
    "ControlChannel",
    "Controller",
    "ControllerApp",
    "NetworkMonitor",
]
