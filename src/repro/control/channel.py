"""The in-memory control channel.

The poster: "there are no real OpenFlow connections between the control
and the data plane" — to reduce state, control messages are plain method
calls carrying the dataclasses of :mod:`repro.openflow.messages`.  The
channel still preserves the *semantics* of a connection: southbound
messages mutate switch pipelines (optionally after a configurable
control latency), northbound events reach the controller, and the data-
plane engines are notified whenever rules change so affected flows are
re-routed.
"""

from __future__ import annotations

import logging
from typing import List, Optional

from ..errors import ControlPlaneError, OpenFlowError, UnknownDatapathError
from ..net.topology import Topology
from ..openflow.flowtable import FlowEntry
from ..openflow.messages import (
    BarrierReply,
    BarrierRequest,
    ErrorMsg,
    FlowMod,
    FlowModCommand,
    FlowRemoved,
    FlowRemovedReason,
    FlowStatsReply,
    FlowStatsRequest,
    GroupMod,
    GroupModCommand,
    Message,
    MeterMod,
    MeterModCommand,
    PacketIn,
    PortStatsReply,
    PortStatsRequest,
    PortStatus,
    TableStatsReply,
    TableStatsRequest,
)
from ..openflow.switch import OpenFlowPipeline
from ..sim.kernel import Simulator
from .transport import ControlTransport, InprocTransport

logger = logging.getLogger(__name__)


class ControlChannel:
    """Connects a controller to every switch pipeline in a topology.

    Parameters
    ----------
    sim:
        Shared kernel (used when ``latency_s`` > 0).
    topology:
        Switches are looked up by dpid at message time, so switches added
        later are visible automatically.
    controller:
        Object with ``on_packet_in/on_port_status/on_flow_removed``
        handlers; usually :class:`repro.control.controller.Controller`.
    latency_s:
        One-way control-plane delay.  Zero (default) makes the channel
        synchronous: reactive rule setup completes within the data-plane
        event that triggered it, which is the poster's abstraction.
    transport:
        Northbound delivery strategy (see
        :mod:`repro.control.transport`).  None selects the in-process
        transport, which is the channel's historical behavior; the wire
        gateway (:mod:`repro.wire`) plugs in here.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        controller: Optional[object] = None,
        latency_s: float = 0.0,
        transport: Optional[ControlTransport] = None,
    ) -> None:
        if latency_s < 0:
            raise ControlPlaneError(f"latency must be >= 0, got {latency_s}")
        self.sim = sim
        self.topology = topology
        self.controller = controller
        self.latency_s = latency_s
        #: Data-plane engines notified on rule changes.
        self.engines: List[object] = []
        self.stats = {
            "flow_mods": 0,
            "group_mods": 0,
            "meter_mods": 0,
            "packet_ins": 0,
            "packet_outs": 0,
            "stats_requests": 0,
            "counter_pushes": 0,
            "errors": 0,
        }
        #: Structured trace sink (:class:`repro.telemetry.TraceBus`) or
        #: None; emission sites check ``is not None``.
        self.trace_bus = None
        #: Live push-mode counter subscriptions (see
        #: :meth:`subscribe_counters`).
        self.subscriptions: List[CounterSubscription] = []
        self.transport: ControlTransport = (
            transport if transport is not None else InprocTransport()
        )
        self.transport.bind(self)
        if controller is not None and hasattr(controller, "attach"):
            controller.attach(self)

    def stats_snapshot(self) -> dict:
        """A copy of the channel's message counters (picklable metrics
        source for :class:`repro.telemetry.MetricsRegistry`)."""
        return dict(self.stats)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def connect_engine(self, engine: object) -> None:
        """Register a data-plane engine for rules-changed notifications."""
        if engine not in self.engines:
            self.engines.append(engine)

    def _pipeline(self, dpid: int) -> OpenFlowPipeline:
        try:
            switch = self.topology.switch_by_dpid(dpid)
        except Exception:
            raise UnknownDatapathError(f"no switch with dpid {dpid}") from None
        if switch.pipeline is None:
            raise UnknownDatapathError(f"switch {switch.name} has no pipeline")
        return switch.pipeline

    def datapath_ids(self) -> List[int]:
        """All dpids currently on the channel."""
        return sorted(s.dpid for s in self.topology.switches)

    # ------------------------------------------------------------------
    # Southbound: controller -> switches
    # ------------------------------------------------------------------
    def send(self, message: Message) -> Optional[Message]:
        """Send a southbound message.

        Synchronous channels apply immediately and return the reply (for
        stats requests).  With latency, application is scheduled and None
        is returned — stats repliers call the controller handler instead.
        """
        if self.latency_s == 0.0:
            return self._apply(message)
        # Deferred deliveries are bound-method events (not closures) so a
        # pending control message survives checkpoint/restore pickling.
        self.sim.call_in(self.latency_s, self._apply_async, message)
        return None

    def send_all(self, messages) -> List[Optional[Message]]:
        """Send a batch of southbound messages in order."""
        return [self.send(m) for m in messages]

    def apply_southbound(self, message: Message) -> Optional[Message]:
        """Apply a southbound message immediately and return the reply
        (stats/barrier) or the ErrorMsg the switch rejected it with.

        Public entry point for transports: the wire gateway decodes
        frames off a socket and applies them here, from the simulation
        thread, so pipeline mutation semantics (and the stats counters)
        are identical whichever transport carried the message.
        """
        return self._apply(message)

    def deliver_packet_out(self, message: PacketIn, ports: List[int]) -> None:
        """Hand an asynchronous packet-out to the data-plane engines.

        Public entry point for transports answering a packet-in after
        the fact (the wire path when the reply misses the synchronous
        window).
        """
        self._deliver_packet_out(message, ports)

    def _apply_async(self, sim: Simulator, message: Message) -> None:
        reply = self._apply(message)
        # Replies travel back after another latency.
        if reply is not None and self.controller is not None:
            self.sim.call_in(self.latency_s, self._deliver_reply, reply)

    def _deliver_reply(self, sim: Simulator, reply: Message) -> None:
        self.controller.on_reply(reply)

    def _apply(self, message: Message) -> Optional[Message]:
        try:
            return self._dispatch(message)
        except (OpenFlowError, UnknownDatapathError) as exc:
            self.stats["errors"] += 1
            error = ErrorMsg(
                dpid=message.dpid,
                error_type=type(exc).__name__,
                detail=str(exc),
                failed_xid=message.xid,
            )
            if self.controller is not None and hasattr(self.controller, "on_error"):
                self.controller.on_error(error)
            return error

    def _dispatch(self, message: Message) -> Optional[Message]:
        if isinstance(message, FlowMod):
            self._apply_flow_mod(message)
            return None
        if isinstance(message, GroupMod):
            self._apply_group_mod(message)
            return None
        if isinstance(message, MeterMod):
            self._apply_meter_mod(message)
            return None
        if isinstance(message, PortStatsRequest):
            return self._port_stats(message)
        if isinstance(message, FlowStatsRequest):
            return self._flow_stats(message)
        if isinstance(message, TableStatsRequest):
            return self._table_stats(message)
        if isinstance(message, BarrierRequest):
            if self.trace_bus is not None:
                self.trace_bus.emit("channel.barrier", dpid=message.dpid)
            return BarrierReply(dpid=message.dpid, xid=message.xid)
        raise ControlPlaneError(f"unsupported southbound message {message!r}")

    def _apply_flow_mod(self, mod: FlowMod) -> None:
        self.stats["flow_mods"] += 1
        if self.trace_bus is not None:
            self.trace_bus.emit(
                "channel.flow_mod",
                dpid=mod.dpid,
                command=mod.command.name,
                table=mod.table_id,
                priority=mod.priority,
            )
        pipeline = self._pipeline(mod.dpid)
        table = pipeline.table(mod.table_id)
        if mod.command is FlowModCommand.ADD:
            entry = FlowEntry(
                match=mod.match,
                priority=mod.priority,
                instructions=mod.instructions,
                idle_timeout=mod.idle_timeout,
                hard_timeout=mod.hard_timeout,
                cookie=mod.cookie,
                install_time=self.sim.now,
            )
            table.add(entry, check_overlap=mod.check_overlap)
        elif mod.command in (FlowModCommand.MODIFY, FlowModCommand.MODIFY_STRICT):
            table.modify(
                mod.match,
                mod.instructions,
                priority=mod.priority,
                strict=mod.command is FlowModCommand.MODIFY_STRICT,
            )
        else:
            removed = table.delete(
                mod.match,
                priority=mod.priority,
                strict=mod.command is FlowModCommand.DELETE_STRICT,
                cookie=mod.cookie or None,
            )
            for entry in removed:
                self.deliver_flow_removed_entry(
                    mod.dpid,
                    mod.table_id,
                    entry,
                    "delete",
                    now=self.sim.now,
                )
        self._rules_changed(mod.dpid)

    def _apply_group_mod(self, mod: GroupMod) -> None:
        self.stats["group_mods"] += 1
        if self.trace_bus is not None:
            self.trace_bus.emit(
                "channel.group_mod", dpid=mod.dpid, command=mod.command.name
            )
        pipeline = self._pipeline(mod.dpid)
        if mod.command is GroupModCommand.ADD:
            pipeline.groups.add(mod.group_id, mod.group_type, mod.buckets)
        elif mod.command is GroupModCommand.MODIFY:
            pipeline.groups.modify(mod.group_id, mod.group_type, mod.buckets)
        else:
            pipeline.groups.delete(mod.group_id)
        self._rules_changed(mod.dpid)

    def _apply_meter_mod(self, mod: MeterMod) -> None:
        self.stats["meter_mods"] += 1
        if self.trace_bus is not None:
            self.trace_bus.emit(
                "channel.meter_mod", dpid=mod.dpid, command=mod.command.name
            )
        pipeline = self._pipeline(mod.dpid)
        if mod.command is MeterModCommand.ADD:
            pipeline.meters.add(mod.meter_id, mod.bands)
        elif mod.command is MeterModCommand.MODIFY:
            pipeline.meters.modify(mod.meter_id, mod.bands)
        else:
            pipeline.meters.delete(mod.meter_id)
        self._rules_changed(mod.dpid)

    def _rules_changed(self, dpid: int) -> None:
        for engine in self.engines:
            engine.notify_rules_changed(dpid)

    # ------------------------------------------------------------------
    # Stats repliers
    # ------------------------------------------------------------------
    def _sync_engines(self) -> None:
        """Bring lazily-accrued data-plane counters up to now before a
        statistics read (the poster's state export to the control plane)."""
        for engine in self.engines:
            sync = getattr(engine, "sync_statistics", None)
            if sync is not None:
                sync(self.sim.now)

    def _port_stats(self, request: PortStatsRequest) -> PortStatsReply:
        self.stats["stats_requests"] += 1
        if self.trace_bus is not None:
            self.trace_bus.emit(
                "channel.stats", kind="port", dpid=request.dpid
            )
        self._sync_engines()
        switch = self.topology.switch_by_dpid(request.dpid)
        stats = [
            port.stats()
            for number, port in sorted(switch.ports.items())
            if request.port_no is None or number == request.port_no
        ]
        return PortStatsReply(dpid=request.dpid, xid=request.xid, stats=stats)

    def _flow_stats(self, request: FlowStatsRequest) -> FlowStatsReply:
        self.stats["stats_requests"] += 1
        if self.trace_bus is not None:
            self.trace_bus.emit(
                "channel.stats", kind="flow", dpid=request.dpid
            )
        self._sync_engines()
        pipeline = self._pipeline(request.dpid)
        tables = (
            [pipeline.table(request.table_id)]
            if request.table_id is not None
            else pipeline.tables
        )
        stats = []
        for table in tables:
            for entry in table:
                if request.cookie is not None and entry.cookie != request.cookie:
                    continue
                if request.match is not None and not request.match.subsumes(
                    entry.match
                ):
                    continue
                stats.append(
                    {
                        "table_id": table.table_id,
                        "match": entry.match,
                        "priority": entry.priority,
                        "cookie": entry.cookie,
                        "packet_count": entry.packet_count,
                        "byte_count": entry.byte_count,
                        "duration_s": self.sim.now - entry.install_time,
                    }
                )
        return FlowStatsReply(dpid=request.dpid, xid=request.xid, stats=stats)

    def _table_stats(self, request: TableStatsRequest) -> TableStatsReply:
        self.stats["stats_requests"] += 1
        if self.trace_bus is not None:
            self.trace_bus.emit(
                "channel.stats", kind="table", dpid=request.dpid
            )
        pipeline = self._pipeline(request.dpid)
        return TableStatsReply(
            dpid=request.dpid,
            xid=request.xid,
            stats=[t.stats() for t in pipeline.tables],
        )

    # ------------------------------------------------------------------
    # Public statistics API
    # ------------------------------------------------------------------
    def port_stats(
        self, dpid: int, port_no: Optional[int] = None
    ) -> PortStatsReply:
        """Synchronously read a switch's port counters.

        This is the supported query surface (the message-level replier is
        an implementation detail): engines are synced first, so counters
        reflect all traffic up to ``sim.now``.
        """
        return self._port_stats(PortStatsRequest(dpid=dpid, port_no=port_no))

    def flow_stats(
        self,
        dpid: int,
        table_id: Optional[int] = None,
        match=None,
        cookie: Optional[int] = None,
    ) -> FlowStatsReply:
        """Synchronously read a switch's flow-entry counters, optionally
        filtered by table, match, or cookie."""
        return self._flow_stats(
            FlowStatsRequest(
                dpid=dpid, table_id=table_id, match=match, cookie=cookie
            )
        )

    # ------------------------------------------------------------------
    # Push-based monitoring: threshold/delta-triggered counter feeds
    # ------------------------------------------------------------------
    def subscribe_counters(
        self,
        callback,
        interval_s: float,
        dpids: Optional[List[int]] = None,
        min_delta_bytes: float = 0.0,
        start: Optional[float] = None,
    ) -> "CounterSubscription":
        """Register a push-mode port-counter feed.

        Every ``interval_s`` the channel samples port counters on
        ``dpids`` (default: every datapath, in topology order) and calls
        ``callback(t, replies)`` with one :class:`PortStatsReply` per
        datapath.  With ``min_delta_bytes`` > 0, a push is suppressed
        unless some port's tx or rx counter moved at least that much
        since the *last delivered* push (the first sample is always
        delivered so subscribers can baseline).  Cancel with
        :meth:`CounterSubscription.cancel`.
        """
        if interval_s <= 0:
            raise ControlPlaneError(
                f"subscription interval must be > 0, got {interval_s}"
            )
        if dpids is None:
            dpids = [s.dpid for s in self.topology.switches]
        subscription = CounterSubscription(
            self, callback, interval_s, list(dpids), min_delta_bytes
        )
        self.subscriptions.append(subscription)
        self.sim.every(interval_s, subscription.tick, start=start)
        return subscription

    def push_counters(self, subscription: "CounterSubscription", t: float) -> None:
        """Sample one subscription's datapaths and deliver if triggered."""
        replies = [
            self._port_stats(PortStatsRequest(dpid=dpid))
            for dpid in subscription.dpids
        ]
        if not subscription.triggered(replies):
            return
        self.stats["counter_pushes"] += 1
        if self.trace_bus is not None:
            self.trace_bus.emit(
                "channel.counter_push",
                datapaths=len(replies),
                min_delta_bytes=subscription.min_delta_bytes,
            )
        subscription.callback(t, replies)

    # ------------------------------------------------------------------
    # Northbound: switches/engines -> controller
    # ------------------------------------------------------------------
    def deliver_packet_in(self, message: PacketIn) -> Optional[List[int]]:
        """Deliver a packet-in.  Returns the controller's packet-out port
        list when synchronous, else None (handled later)."""
        self.stats["packet_ins"] += 1
        ports = self.transport.packet_in(message)
        if ports:
            self.stats["packet_outs"] += 1
        return ports

    def async_packet_in(self, sim: Simulator, message: PacketIn) -> None:
        """Handle a delayed packet-in; ship any packet-out back to the
        data plane after another channel latency."""
        ports = self.controller.on_packet_in(message)
        if not ports:
            return
        self.stats["packet_outs"] += 1
        self.sim.call_in(
            self.latency_s, self._async_packet_out, message, list(ports)
        )

    def _async_packet_out(
        self, sim: Simulator, message: PacketIn, ports: List[int]
    ) -> None:
        self._deliver_packet_out(message, ports)

    def _deliver_packet_out(self, message: PacketIn, ports: List[int]) -> None:
        for engine in self.engines:
            handler = getattr(engine, "apply_packet_out", None)
            if handler is not None:
                handler(message, ports)

    def deliver_port_status(self, message: PortStatus) -> None:
        self.transport.port_status(message)

    def async_port_status(self, sim: Simulator, message: PortStatus) -> None:
        self.controller.on_port_status(message)

    def deliver_flow_removed_entry(
        self,
        dpid: int,
        table_id: int,
        entry: FlowEntry,
        reason: str,
        now: float,
    ) -> None:
        """Build and deliver a FlowRemoved from a removed entry."""
        if self.controller is None and not self.transport.external:
            return
        message = FlowRemoved(
            dpid=dpid,
            table_id=table_id,
            match=entry.match,
            priority=entry.priority,
            reason={
                "idle": FlowRemovedReason.IDLE_TIMEOUT,
                "hard": FlowRemovedReason.HARD_TIMEOUT,
                "delete": FlowRemovedReason.DELETE,
            }[reason],
            cookie=entry.cookie,
            duration_s=now - entry.install_time,
            packet_count=entry.packet_count,
            byte_count=entry.byte_count,
        )
        self.transport.flow_removed(message)

    def async_flow_removed(self, sim: Simulator, message: FlowRemoved) -> None:
        self.controller.on_flow_removed(message)


class CounterSubscription:
    """One push-mode counter feed (see ControlChannel.subscribe_counters).

    Holds the delta baseline used for ``min_delta_bytes`` triggering: the
    per-port (tx_bytes, rx_bytes) as of the last *delivered* push, so
    suppressed samples accumulate toward the threshold instead of
    resetting it.  All scheduled callbacks are bound methods, so a live
    subscription survives checkpoint/restore pickling.
    """

    def __init__(
        self,
        channel: ControlChannel,
        callback,
        interval_s: float,
        dpids: List[int],
        min_delta_bytes: float,
    ) -> None:
        self.channel = channel
        self.callback = callback
        self.interval_s = interval_s
        self.dpids = dpids
        self.min_delta_bytes = min_delta_bytes
        self.active = True
        self.pushes = 0
        # (dpid, port_no) -> (tx_bytes, rx_bytes) at the last delivery.
        self._last: dict = {}

    def cancel(self) -> None:
        """Stop the feed (takes effect at the next scheduled tick)."""
        self.active = False

    def tick(self, sim, t: float) -> None:
        """Periodic-event callback; ends its series once cancelled."""
        if not self.active:
            if self in self.channel.subscriptions:
                self.channel.subscriptions.remove(self)
            raise StopIteration
        self.channel.push_counters(self, t)

    def triggered(self, replies) -> bool:
        """Decide delivery and, if delivering, advance the baseline."""
        current = {
            (reply.dpid, stat["port_no"]): (stat["tx_bytes"], stat["rx_bytes"])
            for reply in replies
            for stat in reply.stats
        }
        deliver = (
            not self._last
            or self.min_delta_bytes <= 0
            or any(
                abs(counters[0] - self._last.get(key, (0, 0))[0])
                >= self.min_delta_bytes
                or abs(counters[1] - self._last.get(key, (0, 0))[1])
                >= self.min_delta_bytes
                for key, counters in current.items()
            )
        )
        if deliver:
            self._last = current
            self.pushes += 1
        return deliver
