"""Monitoring: periodic export of traffic statistics to the control plane.

The poster: statistics are "updated after every event and exported to a
control plane module", with primitives covering "typical network
measurements such as link bandwidth and SDN-enabled ones (i.e., OpenFlow
counters)".  :class:`NetworkMonitor` polls port counters on a fixed
interval, derives per-egress-link rates and utilizations from counter
deltas, and hands each sample to the controller's apps (and any extra
callbacks) — the input reactive policies act on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..openflow.messages import PortStatsRequest
from .channel import ControlChannel

#: A sample key: (switch name, port number) — the egress direction.
PortKey = Tuple[str, int]


class NetworkMonitor:
    """Periodic port-counter polling and utilization estimation.

    Parameters
    ----------
    channel:
        The control channel (stats are read through its port-stats
        replier; per the poster's abstraction the read itself is the
        simulator's state export, so it is synchronous even when the
        message channel has latency).
    interval:
        Polling period in seconds.
    threshold:
        Egress utilization above which a link appears in the sample's
        ``congested`` list.
    keep_history:
        Retain every sample in :attr:`samples` (disable for very long
        runs to bound memory).
    """

    def __init__(
        self,
        channel: ControlChannel,
        interval: float = 1.0,
        threshold: float = 0.9,
        keep_history: bool = True,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.channel = channel
        self.interval = interval
        self.threshold = threshold
        self.keep_history = keep_history
        self._last_counters: Dict[PortKey, Tuple[int, int]] = {}
        self._last_time: Optional[float] = None
        self.samples: List[dict] = []
        self.callbacks: List[Callable[[dict], None]] = []
        self._started = False

    def start(self, first_at: Optional[float] = None) -> None:
        """Begin polling on the channel's kernel."""
        if self._started:
            return
        self._started = True
        self.channel.sim.every(self.interval, self._tick, start=first_at)

    def _tick(self, sim, t: float) -> None:
        sample = self.sample_now(t)
        if self.keep_history:
            self.samples.append(sample)
        controller = self.channel.controller
        if controller is not None and hasattr(controller, "on_monitor_sample"):
            controller.on_monitor_sample(sample)
        for callback in self.callbacks:
            callback(sample)

    def sample_now(self, t: float) -> dict:
        """Take one sample: per-egress-port rate and utilization."""
        tx_bps: Dict[PortKey, float] = {}
        rx_bps: Dict[PortKey, float] = {}
        utilization: Dict[PortKey, float] = {}
        congested: List[PortKey] = []
        dt = None if self._last_time is None else t - self._last_time
        topology = self.channel.topology
        for switch in topology.switches:
            reply = self.channel._port_stats(
                PortStatsRequest(dpid=switch.dpid)
            )
            for stat in reply.stats:
                port_no = stat["port_no"]
                key = (switch.name, port_no)
                counters = (stat["tx_bytes"], stat["rx_bytes"])
                last = self._last_counters.get(key)
                self._last_counters[key] = counters
                if last is None or not dt or dt <= 0:
                    continue
                tx_rate = (counters[0] - last[0]) * 8.0 / dt
                rx_rate = (counters[1] - last[1]) * 8.0 / dt
                tx_bps[key] = tx_rate
                rx_bps[key] = rx_rate
                port = switch.port(port_no)
                if port.link is not None and port.link.capacity_bps > 0:
                    util = tx_rate / port.link.capacity_bps
                    utilization[key] = util
                    if util >= self.threshold:
                        congested.append(key)
        self._last_time = t
        return {
            "time": t,
            "tx_bps": tx_bps,
            "rx_bps": rx_bps,
            "utilization": utilization,
            "congested": congested,
        }

    # ------------------------------------------------------------------
    # Query helpers over the history
    # ------------------------------------------------------------------
    def utilization_series(self, key: PortKey) -> List[Tuple[float, float]]:
        """(time, utilization) points for one egress port."""
        return [
            (s["time"], s["utilization"][key])
            for s in self.samples
            if key in s["utilization"]
        ]

    def max_utilization(self) -> Dict[PortKey, float]:
        """Per-port maximum utilization across the run."""
        out: Dict[PortKey, float] = {}
        for sample in self.samples:
            for key, value in sample["utilization"].items():
                if value > out.get(key, 0.0):
                    out[key] = value
        return out
