"""Monitoring: periodic export of traffic statistics to the control plane.

The poster: statistics are "updated after every event and exported to a
control plane module", with primitives covering "typical network
measurements such as link bandwidth and SDN-enabled ones (i.e., OpenFlow
counters)".  :class:`NetworkMonitor` samples port counters on a fixed
cadence, derives per-egress-link rates and utilizations from counter
deltas, and hands each :class:`~repro.telemetry.MonitorSample` to the
controller's apps (and any extra callbacks) — the input reactive
policies act on.

Two acquisition modes share one derivation path, so they produce
identical samples at the same cadence (asserted by ``tests/diff``):

* ``mode="poll"`` (default) — the monitor reads counters itself through
  the channel's public :meth:`~repro.control.channel.ControlChannel
  .port_stats` every interval.
* ``mode="push"`` — the monitor registers a
  :meth:`~repro.control.channel.ControlChannel.subscribe_counters` feed
  and receives counter samples without polling; ``min_delta_bytes``
  suppresses pushes while counters are quiet.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..telemetry.sample import MonitorSample, PortKey as PortKey  # re-export

MONITOR_MODES = ("poll", "push")


class NetworkMonitor:
    """Port-counter sampling and utilization estimation.

    Parameters
    ----------
    channel:
        The control channel (stats are read through its public port-stats
        API; per the poster's abstraction the read itself is the
        simulator's state export, so it is synchronous even when the
        message channel has latency).
    interval:
        Sampling period in seconds.
    threshold:
        Egress utilization above which a link appears in the sample's
        ``congested`` list.
    keep_history:
        Retain every sample in :attr:`samples` (disable for very long
        runs to bound memory; per-port maxima stay available either way).
    mode:
        ``"poll"`` or ``"push"`` (see module docstring).
    min_delta_bytes:
        Push mode only: suppress a push unless some port counter moved
        at least this much since the last delivered push.
    """

    def __init__(
        self,
        channel,
        interval: float = 1.0,
        threshold: float = 0.9,
        keep_history: bool = True,
        mode: str = "poll",
        min_delta_bytes: float = 0.0,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        if mode not in MONITOR_MODES:
            raise ValueError(f"mode must be one of {MONITOR_MODES}, got {mode!r}")
        self.channel = channel
        self.interval = interval
        self.threshold = threshold
        self.keep_history = keep_history
        self.mode = mode
        self.min_delta_bytes = min_delta_bytes
        self._last_counters: Dict[PortKey, Tuple[int, int]] = {}
        self._last_time: Optional[float] = None
        self.samples: List[MonitorSample] = []
        self.callbacks: List[Callable[[MonitorSample], None]] = []
        self._started = False
        self._active = False
        self._subscription = None
        # Incremental aggregates (kept regardless of history retention).
        self._sample_count = 0
        self._max_util: Dict[PortKey, float] = {}
        self._series: Dict[PortKey, List[Tuple[float, float]]] = {}
        # Mutation sentinels: when callers edit `samples` directly the
        # incremental aggregates can no longer be trusted and the query
        # helpers fall back to a history scan.
        self._recorded = 0
        self._last_sample: Optional[MonitorSample] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, first_at: Optional[float] = None) -> None:
        """Begin sampling on the channel's kernel."""
        if self._started:
            return
        self._started = True
        self._active = True
        if self.mode == "push":
            # The subscription captures the datapath set now, in the same
            # topology order the polled path iterates.
            self._subscription = self.channel.subscribe_counters(
                self._on_push,
                self.interval,
                min_delta_bytes=self.min_delta_bytes,
                start=first_at,
            )
        else:
            self.channel.sim.every(self.interval, self._tick, start=first_at)

    def stop(self) -> None:
        """Stop sampling (takes effect at the next scheduled tick)."""
        self._active = False
        if self._subscription is not None:
            self._subscription.cancel()

    # ------------------------------------------------------------------
    # Acquisition (both modes funnel into _record)
    # ------------------------------------------------------------------
    def _tick(self, sim, t: float) -> None:
        if not self._active:
            raise StopIteration
        self._record(self.sample_now(t))

    def _on_push(self, t: float, replies) -> None:
        if not self._active:
            return
        self._record(self._sample_from_replies(t, replies))

    def sample_now(self, t: float) -> MonitorSample:
        """Take one sample immediately (advances the delta baseline but
        does not record it — recording happens on the sampling cadence)."""
        replies = [
            self.channel.port_stats(switch.dpid)
            for switch in self.channel.topology.switches
        ]
        return self._sample_from_replies(t, replies)

    def _sample_from_replies(self, t: float, replies) -> MonitorSample:
        """Derive rates/utilization from port-stats replies — the single
        derivation both modes share, so poll and push agree bitwise."""
        tx_bps: Dict[PortKey, float] = {}
        rx_bps: Dict[PortKey, float] = {}
        utilization: Dict[PortKey, float] = {}
        congested: List[PortKey] = []
        dt = None if self._last_time is None else t - self._last_time
        topology = self.channel.topology
        for reply in replies:
            switch = topology.switch_by_dpid(reply.dpid)
            for stat in reply.stats:
                port_no = stat["port_no"]
                key = (switch.name, port_no)
                counters = (stat["tx_bytes"], stat["rx_bytes"])
                last = self._last_counters.get(key)
                self._last_counters[key] = counters
                if last is None or not dt or dt <= 0:
                    continue
                tx_rate = (counters[0] - last[0]) * 8.0 / dt
                rx_rate = (counters[1] - last[1]) * 8.0 / dt
                tx_bps[key] = tx_rate
                rx_bps[key] = rx_rate
                port = switch.port(port_no)
                if port.link is not None and port.link.capacity_bps > 0:
                    util = tx_rate / port.link.capacity_bps
                    utilization[key] = util
                    if util >= self.threshold:
                        congested.append(key)
        self._last_time = t
        return MonitorSample(
            time=t,
            tx_bps=tx_bps,
            rx_bps=rx_bps,
            utilization=utilization,
            congested=congested,
        )

    def _record(self, sample: MonitorSample) -> None:
        """History, incremental aggregates, and delivery — shared by both
        modes so their observable effects are identical."""
        self._sample_count += 1
        for key, value in sample.utilization.items():
            if value > self._max_util.get(key, 0.0):
                self._max_util[key] = value
            if self.keep_history:
                self._series.setdefault(key, []).append((sample.time, value))
        if self.keep_history:
            self.samples.append(sample)
            self._recorded += 1
            self._last_sample = sample
        controller = self.channel.controller
        if controller is not None and hasattr(controller, "on_monitor_sample"):
            controller.on_monitor_sample(sample)
        for callback in self.callbacks:
            callback(sample)

    # ------------------------------------------------------------------
    # Query helpers
    # ------------------------------------------------------------------
    def _history_mutated(self) -> bool:
        """True when `samples` no longer matches what _record built (a
        caller appended, removed, or replaced entries)."""
        if not self.keep_history:
            return False
        if len(self.samples) != self._recorded:
            return True
        return bool(self.samples) and self.samples[-1] is not self._last_sample

    @staticmethod
    def _utilization_of(sample) -> Dict[PortKey, float]:
        # History scans tolerate raw-dict samples callers may have
        # spliced in alongside MonitorSample objects.
        if isinstance(sample, MonitorSample):
            return sample.utilization
        return sample["utilization"]

    def utilization_series(self, key: PortKey) -> List[Tuple[float, float]]:
        """(time, utilization) points for one egress port.

        Served from the incrementally maintained per-port series; falls
        back to scanning :attr:`samples` when the history list was
        mutated externally.  (In-place edits of an existing sample's
        dicts are not detected — replace the sample instead.)
        """
        if self._history_mutated():
            return [
                (s.time if isinstance(s, MonitorSample) else s["time"], u[key])
                for s in self.samples
                if key in (u := self._utilization_of(s))
            ]
        return list(self._series.get(key, ()))

    def max_utilization(self) -> Dict[PortKey, float]:
        """Per-port maximum utilization across the run.

        O(ports), not O(samples): maxima are maintained incrementally as
        samples arrive (and survive ``keep_history=False``); the history
        scan only runs as a fallback after external mutation of
        :attr:`samples`.
        """
        if self._history_mutated():
            out: Dict[PortKey, float] = {}
            for sample in self.samples:
                for key, value in self._utilization_of(sample).items():
                    if value > out.get(key, 0.0):
                        out[key] = value
            return out
        return dict(self._max_util)

    def metrics_snapshot(self) -> dict:
        """Monitor aggregates for the metrics registry (picklable bound
        method; see :class:`repro.telemetry.MetricsRegistry`)."""
        out = {
            "mode": self.mode,
            "samples": self._sample_count,
            "max_utilization": self.max_utilization(),
        }
        last = self._last_sample
        if last is not None:
            out["congested_ports"] = len(last.congested)
        return out
