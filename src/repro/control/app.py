"""Controller application base class.

Apps are the "lightweight and modular controller" units of the poster's
policy generator.  Each app translates one policy into OpenFlow rule
updates, reacting to packet-ins, port status changes, flow removals, and
monitor samples.  Apps are ordered; for packet-ins, the first app that
returns a packet-out decision wins (simple sequential composition — see
:mod:`repro.control.policy.composition` for the richer operator).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from ..openflow.action import Instruction
from ..openflow.match import Match
from ..openflow.messages import (
    FlowMod,
    FlowModCommand,
    FlowRemoved,
    GroupMod,
    GroupModCommand,
    MeterMod,
    MeterModCommand,
    PacketIn,
    PortStatus,
)
from ..openflow.group import Bucket, GroupType
from ..openflow.meter import DropBand

if TYPE_CHECKING:  # pragma: no cover
    from .controller import Controller


class ControllerApp:
    """Base class: override the ``on_*`` handlers you need.

    ``cookie`` tags every rule the app installs, so its rules can be
    attributed and bulk-deleted.  Subclasses set ``name``.
    """

    #: Cookie space: apps get cookie = COOKIE_BASE + registration index.
    COOKIE_BASE = 0x48000000  # 'H' for Horse

    def __init__(self, name: str) -> None:
        self.name = name
        self.controller: Optional["Controller"] = None
        self.cookie = 0  # assigned when added to a controller
        #: Table this app installs into (set by the policy composer).
        self.table_id = 0
        self.enabled = True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Install proactive state (called once the channel is attached)."""

    def stop(self) -> None:
        """Remove this app's rules from every switch."""
        for dpid in self.channel.datapath_ids():
            self.send(
                FlowMod(
                    dpid=dpid,
                    command=FlowModCommand.DELETE,
                    table_id=self.table_id,
                    match=Match(),
                    cookie=self.cookie,
                )
            )
        self.enabled = False

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def on_packet_in(self, message: PacketIn) -> Optional[List[int]]:
        """Handle a packet-in; return packet-out ports to claim it."""
        return None

    def on_port_status(self, message: PortStatus) -> None:
        """Handle a port/link state change."""

    def on_flow_removed(self, message: FlowRemoved) -> None:
        """Handle a flow entry removal."""

    def on_monitor_sample(self, sample) -> None:
        """Handle a :class:`~repro.telemetry.MonitorSample` (see
        repro.control.monitor)."""

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def channel(self):
        if self.controller is None or self.controller.channel is None:
            raise RuntimeError(f"app {self.name} is not attached to a channel")
        return self.controller.channel

    @property
    def topology(self):
        return self.channel.topology

    @property
    def sim(self):
        return self.channel.sim

    def send(self, message) -> object:
        """Send a southbound message through the channel."""
        return self.channel.send(message)

    # Rule-building helpers ---------------------------------------------
    def add_flow(
        self,
        dpid: int,
        match: Match,
        instructions: Sequence[Instruction],
        priority: int = 0,
        table_id: Optional[int] = None,
        idle_timeout: float = 0.0,
        hard_timeout: float = 0.0,
        check_overlap: bool = False,
    ) -> None:
        """Install one flow rule stamped with this app's cookie."""
        self.send(
            FlowMod(
                dpid=dpid,
                command=FlowModCommand.ADD,
                table_id=self.table_id if table_id is None else table_id,
                match=match,
                priority=priority,
                instructions=tuple(instructions),
                idle_timeout=idle_timeout,
                hard_timeout=hard_timeout,
                cookie=self.cookie,
                check_overlap=check_overlap,
            )
        )

    def delete_flows(
        self, dpid: int, match: Match, table_id: Optional[int] = None
    ) -> None:
        """Delete this app's rules subsumed by ``match`` on one switch."""
        self.send(
            FlowMod(
                dpid=dpid,
                command=FlowModCommand.DELETE,
                table_id=self.table_id if table_id is None else table_id,
                match=match,
                cookie=self.cookie,
            )
        )

    def add_group(
        self,
        dpid: int,
        group_id: int,
        group_type: GroupType,
        buckets: Sequence[Bucket],
        modify_existing: bool = True,
    ) -> None:
        """Add (or modify, when it exists) a group on one switch."""
        pipeline = self.topology.switch_by_dpid(dpid).pipeline
        command = GroupModCommand.ADD
        if modify_existing and pipeline is not None and group_id in pipeline.groups:
            command = GroupModCommand.MODIFY
        self.send(
            GroupMod(
                dpid=dpid,
                command=command,
                group_id=group_id,
                group_type=group_type,
                buckets=tuple(buckets),
            )
        )

    def add_meter(
        self,
        dpid: int,
        meter_id: int,
        rate_bps: float,
        burst_bits: float = 0.0,
        modify_existing: bool = True,
    ) -> None:
        """Add (or modify) a single-drop-band meter on one switch."""
        pipeline = self.topology.switch_by_dpid(dpid).pipeline
        command = MeterModCommand.ADD
        if modify_existing and pipeline is not None and meter_id in pipeline.meters:
            command = MeterModCommand.MODIFY
        self.send(
            MeterMod(
                dpid=dpid,
                command=command,
                meter_id=meter_id,
                bands=(DropBand(rate_bps=rate_bps, burst_bits=burst_bits),),
            )
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} table={self.table_id}>"
