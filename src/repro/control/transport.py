"""The control-channel transport seam.

A :class:`~repro.control.channel.ControlChannel` moves northbound events
(packet-ins, port status, flow removals) to *some* controller.  How they
get there is the transport's business:

* :class:`InprocTransport` — the poster's abstraction: the controller is
  a Python object in this process and delivery is a method call (zero
  simulated latency) or a scheduled kernel event (``latency_s`` > 0).
* :class:`repro.wire.transport.WireTransport` — the follow-up paper's
  re-added real connections: events are encoded as OpenFlow 1.3 frames
  and shipped over TCP to an external controller, with simulated time
  gated on the wall-clock round trip.

The channel keeps everything that is *channel* semantics — message
counters, pipeline mutation, engine notification — so a transport swap
never changes what a southbound message does, only where northbound
events go and how answers come back.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..openflow.messages import FlowRemoved, PacketIn, PortStatus

if TYPE_CHECKING:  # pragma: no cover
    from .channel import ControlChannel


class ControlTransport:
    """Strategy interface for northbound delivery.

    ``bind`` is called once by the owning channel; the lifecycle hooks
    are no-ops for in-process transports.
    """

    channel: "ControlChannel" = None  # set by bind()

    #: True when the controller lives outside this process: northbound
    #: events must be delivered even though ``channel.controller`` is
    #: None (the channel skips some message construction otherwise).
    external = False

    def bind(self, channel: "ControlChannel") -> None:
        self.channel = channel

    def packet_in(self, message: PacketIn) -> Optional[List[int]]:
        """Deliver a packet-in; return packet-out ports when the answer
        is synchronous, else None."""
        raise NotImplementedError

    def port_status(self, message: PortStatus) -> None:
        raise NotImplementedError

    def flow_removed(self, message: FlowRemoved) -> None:
        raise NotImplementedError

    def start(self) -> None:
        """Bring up external resources (listeners, threads)."""

    def stop(self) -> None:
        """Tear external resources down."""


class InprocTransport(ControlTransport):
    """Direct method-call delivery to an in-process controller.

    This is byte-for-byte the channel's historical behavior: the
    dispatch logic (including the deferred bound-method events that keep
    pending messages picklable) still lives on the channel; the
    transport only routes to it.
    """

    def packet_in(self, message: PacketIn) -> Optional[List[int]]:
        channel = self.channel
        if channel.controller is None:
            return None
        if channel.latency_s == 0.0:
            return channel.controller.on_packet_in(message)
        channel.sim.call_in(channel.latency_s, channel.async_packet_in, message)
        return None

    def port_status(self, message: PortStatus) -> None:
        channel = self.channel
        if channel.controller is None:
            return
        if channel.latency_s == 0.0:
            channel.controller.on_port_status(message)
        else:
            channel.sim.call_in(
                channel.latency_s, channel.async_port_status, message
            )

    def flow_removed(self, message: FlowRemoved) -> None:
        channel = self.channel
        if channel.controller is None:
            return
        if channel.latency_s == 0.0:
            channel.controller.on_flow_removed(message)
        else:
            channel.sim.call_in(
                channel.latency_s, channel.async_flow_removed, message
            )
