"""High-level policy specifications.

The poster's Figure 2 configures the policy generator with entries like::

    "load balancing": "edge->core",
    "application based peering": "e1->e3": "http",
    "rate limiting": "e2->e4": "500 Mbps"

This module defines the typed equivalents of those entries, plus
:func:`parse_policy_config` which accepts the JSON-ish dict form and
:func:`parse_rate` for human-readable rates.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from ...errors import PolicyValidationError

_RATE_RE = re.compile(
    r"^\s*([0-9]+(?:\.[0-9]+)?)\s*([kmgt]?)(?:bps|bit/s|b/s)?\s*$", re.IGNORECASE
)
_RATE_MULTIPLIERS = {"": 1.0, "k": 1e3, "m": 1e6, "g": 1e9, "t": 1e12}


def parse_rate(rate: Union[str, float, int]) -> float:
    """Parse '500 Mbps', '1.5Gbps', or a raw bps number into bps.

    Examples
    --------
    >>> parse_rate("500 Mbps")
    500000000.0
    >>> parse_rate(1000)
    1000.0
    """
    if isinstance(rate, (int, float)):
        value = float(rate)
        if value <= 0:
            raise PolicyValidationError(f"rate must be > 0, got {rate}")
        return value
    match = _RATE_RE.match(rate)
    if not match:
        raise PolicyValidationError(f"cannot parse rate {rate!r}")
    return float(match.group(1)) * _RATE_MULTIPLIERS[match.group(2).lower()]


@dataclass(frozen=True)
class PolicySpec:
    """Base class of all policy specs (``kind`` identifies the type)."""

    @property
    def kind(self) -> str:
        return _KIND_BY_TYPE[type(self)]


@dataclass(frozen=True)
class ForwardingSpec(PolicySpec):
    """Base forwarding: 'learning' (reactive MAC) or 'shortest-path'
    (proactive), matching on MACs or IPs."""

    mode: str = "shortest-path"
    match_on: str = "eth_dst"


@dataclass(frozen=True)
class LoadBalancingSpec(PolicySpec):
    """Multipath load balancing.  ``mode``: ecmp | reactive.  Reactive
    re-weights paths when monitored utilization crosses ``threshold``."""

    mode: str = "ecmp"
    match_on: str = "ip_dst"
    threshold: float = 0.8


@dataclass(frozen=True)
class AppPeeringSpec(PolicySpec):
    """Application-based peering: steer ``app`` traffic src->dst over an
    alternative (or explicit) path."""

    src: str = ""
    dst: str = ""
    app: Union[str, int] = "http"
    path: Optional[Sequence[str]] = None


@dataclass(frozen=True)
class RateLimitingSpec(PolicySpec):
    """Cap src->dst traffic at ``rate_bps`` (the 'e2->e4: 500 Mbps'
    policy).  Empty src or dst means any."""

    src: str = ""
    dst: str = ""
    rate_bps: float = 0.0
    scope: Optional[Sequence[str]] = None


@dataclass(frozen=True)
class BlackholingSpec(PolicySpec):
    """Drop traffic to (direction='dst'), from ('src'), or both for a
    target host name, address, or prefix string."""

    target: str = ""
    direction: str = "dst"
    scope: Union[str, Sequence[str]] = "all"


@dataclass(frozen=True)
class SourceRoutingSpec(PolicySpec):
    """Pin src->dst onto an explicit node path."""

    src: str = ""
    dst: str = ""
    path: Sequence[str] = ()


_KIND_BY_TYPE = {
    ForwardingSpec: "forwarding",
    LoadBalancingSpec: "load_balancing",
    AppPeeringSpec: "application_peering",
    RateLimitingSpec: "rate_limiting",
    BlackholingSpec: "blackholing",
    SourceRoutingSpec: "source_routing",
}


def parse_policy_config(config: dict) -> List[PolicySpec]:
    """Parse the JSON-ish policy configuration of the poster's Figure 2.

    Accepted keys: ``forwarding`` (str or dict), ``load_balancing``
    (dict), ``application_peering`` / ``rate_limiting`` /
    ``blackholing`` / ``source_routing`` (lists of dicts).

    Examples
    --------
    >>> specs = parse_policy_config({
    ...     "forwarding": "shortest-path",
    ...     "rate_limiting": [{"src": "h2", "dst": "h4", "rate": "500 Mbps"}],
    ... })
    >>> [s.kind for s in specs]
    ['forwarding', 'rate_limiting']
    """
    specs: List[PolicySpec] = []
    known = {
        "forwarding",
        "load_balancing",
        "application_peering",
        "rate_limiting",
        "blackholing",
        "source_routing",
    }
    unknown = set(config) - known
    if unknown:
        raise PolicyValidationError(f"unknown policy keys: {sorted(unknown)}")

    if "forwarding" in config:
        value = config["forwarding"]
        if isinstance(value, str):
            specs.append(ForwardingSpec(mode=value))
        else:
            specs.append(ForwardingSpec(**value))
    if "load_balancing" in config:
        value = config["load_balancing"]
        if isinstance(value, str):
            specs.append(LoadBalancingSpec(mode=value))
        else:
            specs.append(LoadBalancingSpec(**value))
    for item in config.get("application_peering", ()):
        specs.append(
            AppPeeringSpec(
                src=item["src"],
                dst=item["dst"],
                app=item.get("app", "http"),
                path=tuple(item["path"]) if "path" in item else None,
            )
        )
    for item in config.get("rate_limiting", ()):
        specs.append(
            RateLimitingSpec(
                src=item.get("src", ""),
                dst=item.get("dst", ""),
                rate_bps=parse_rate(item["rate"]),
                scope=tuple(item["scope"]) if "scope" in item else None,
            )
        )
    for item in config.get("blackholing", ()):
        specs.append(
            BlackholingSpec(
                target=item["target"],
                direction=item.get("direction", "dst"),
                scope=(
                    tuple(item["scope"])
                    if isinstance(item.get("scope"), (list, tuple))
                    else item.get("scope", "all")
                ),
            )
        )
    for item in config.get("source_routing", ()):
        specs.append(
            SourceRoutingSpec(
                src=item["src"], dst=item["dst"], path=tuple(item["path"])
            )
        )
    return specs
