"""Policy generation: specs, validation, composition, and the compiler."""

from .compiler import CompiledPolicy, PolicyGenerator, compile_policies
from .composition import (
    PRIORITY_BANDS,
    CompositionPlan,
    Stage,
    plan_composition,
)
from .spec import (
    AppPeeringSpec,
    BlackholingSpec,
    ForwardingSpec,
    LoadBalancingSpec,
    PolicySpec,
    RateLimitingSpec,
    SourceRoutingSpec,
    parse_policy_config,
    parse_rate,
)
from .validation import (
    Conflict,
    detect_rule_conflicts,
    validate_composition,
    validate_or_raise,
    validate_spec,
)

__all__ = [
    "AppPeeringSpec",
    "BlackholingSpec",
    "CompiledPolicy",
    "CompositionPlan",
    "Conflict",
    "ForwardingSpec",
    "LoadBalancingSpec",
    "PRIORITY_BANDS",
    "PolicyGenerator",
    "PolicySpec",
    "RateLimitingSpec",
    "SourceRoutingSpec",
    "Stage",
    "compile_policies",
    "detect_rule_conflicts",
    "parse_policy_config",
    "parse_rate",
    "plan_composition",
    "validate_composition",
    "validate_or_raise",
    "validate_spec",
]
