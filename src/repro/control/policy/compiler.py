"""The policy generator: compile high-level specs into controller apps.

This is the poster's "Policy Generator" block — "a lightweight and
modular controller that translates high level policies into OpenFlow
control messages".  Given a policy configuration (typed specs or the
Figure-2 style dict), it validates the composition, plans the table
layout, and returns a ready :class:`~repro.control.controller.Controller`
whose apps emit the actual flow-mods when started.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ...errors import PolicyValidationError
from ...net.address import AddressError, IPv4Address, IPv4Network, MacAddress
from ...net.topology import Topology
from ...openflow.match import Match
from ..apps import (
    AppPeeringApp,
    BlackholeApp,
    EcmpLoadBalancerApp,
    L2LearningApp,
    PeeringRule,
    RateLimit,
    RateLimiterApp,
    ReactiveLoadBalancerApp,
    ShortestPathApp,
    SourceRoute,
    SourceRoutingApp,
)
from ..controller import Controller
from .composition import CompositionPlan, plan_composition
from .spec import (
    AppPeeringSpec,
    BlackholingSpec,
    ForwardingSpec,
    LoadBalancingSpec,
    PolicySpec,
    RateLimitingSpec,
    SourceRoutingSpec,
    parse_policy_config,
)
from .validation import Conflict, validate_or_raise


@dataclass
class CompiledPolicy:
    """The compiler's output: a controller, its plan, and any warnings."""

    controller: Controller
    plan: CompositionPlan
    warnings: List[Conflict] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: The (post-subsumption) specs that were compiled; the static
    #: analyzer verifies installed rules against these intents.
    specs: List[PolicySpec] = field(default_factory=list)

    @property
    def num_tables(self) -> int:
        """Tables each switch pipeline must provide."""
        return self.plan.num_tables


class PolicyGenerator:
    """Compile policy specs for a given topology.

    Parameters
    ----------
    topology:
        Used to resolve host names, attachment switches, and paths.
    validate:
        Run spec + composition validation (on by default).

    Examples
    --------
    generator = PolicyGenerator(topology)
    compiled = generator.compile({
        "forwarding": "shortest-path",
        "rate_limiting": [{"src": "h2", "dst": "h4", "rate": "500 Mbps"}],
    })
    channel = ControlChannel(sim, topology, controller=compiled.controller)
    compiled.controller.start()
    """

    def __init__(self, topology: Topology, validate: bool = True) -> None:
        self.topology = topology
        self.validate = validate

    def compile(
        self, policies: Union[dict, Sequence[PolicySpec]]
    ) -> CompiledPolicy:
        """Compile a policy configuration into a controller."""
        if isinstance(policies, dict):
            specs = parse_policy_config(policies)
        else:
            specs = list(policies)
        notes: List[str] = []
        # Load balancing is itself a forwarding policy; an explicit
        # shortest-path base would double-install the same matches.
        has_lb = any(isinstance(s, LoadBalancingSpec) for s in specs)
        if has_lb:
            dropped = [
                s
                for s in specs
                if isinstance(s, ForwardingSpec) and s.mode == "shortest-path"
            ]
            if dropped:
                specs = [s for s in specs if s not in dropped]
                notes.append(
                    "shortest-path forwarding subsumed by load balancing"
                )
        warnings: List[Conflict] = []
        if self.validate:
            warnings = validate_or_raise(specs, self.topology)
        plan = plan_composition(specs)
        controller = Controller(name="policy-generator")
        self._build_apps(specs, plan, controller, notes)
        return CompiledPolicy(
            controller=controller,
            plan=plan,
            warnings=warnings,
            notes=notes,
            specs=list(specs),
        )

    # ------------------------------------------------------------------
    def _build_apps(
        self,
        specs: Sequence[PolicySpec],
        plan: CompositionPlan,
        controller: Controller,
        notes: List[str],
    ) -> None:
        # Collect multi-instance specs into single apps.
        peering = [s for s in specs if isinstance(s, AppPeeringSpec)]
        limits = [s for s in specs if isinstance(s, RateLimitingSpec)]
        holes = [s for s in specs if isinstance(s, BlackholingSpec)]
        routes = [s for s in specs if isinstance(s, SourceRoutingSpec)]
        forwarding = [s for s in specs if isinstance(s, ForwardingSpec)]
        balancing = [s for s in specs if isinstance(s, LoadBalancingSpec)]

        # Order matters for packet-in precedence: specific overrides
        # first, base forwarding last.
        if holes:
            app = BlackholeApp(
                targets=[self._resolve_target(s.target) for s in holes],
                direction=holes[0].direction,
                scope=holes[0].scope,
                priority=plan.priority_for("blackholing"),
            )
            app.table_id = plan.table_for("blackholing")
            controller.add_app(app)
        if limits:
            app = RateLimiterApp(
                limits=[self._compile_limit(s) for s in limits],
                priority=50,
            )
            app.table_id = plan.table_for("rate_limiting")
            app.next_table = plan.forwarding_table
            controller.add_app(app)
        if peering:
            app = AppPeeringApp(
                rules=[
                    PeeringRule(
                        src_host=s.src, dst_host=s.dst, app=s.app, path=s.path
                    )
                    for s in peering
                ],
                priority=plan.priority_for("application_peering"),
            )
            app.table_id = plan.table_for("application_peering")
            controller.add_app(app)
        if routes:
            app = SourceRoutingApp(
                routes=[
                    SourceRoute(src_host=s.src, dst_host=s.dst, path=s.path)
                    for s in routes
                ],
                priority=plan.priority_for("source_routing"),
            )
            app.table_id = plan.table_for("source_routing")
            controller.add_app(app)
        if balancing:
            spec = balancing[0]
            if spec.mode == "reactive":
                lb_app: EcmpLoadBalancerApp = ReactiveLoadBalancerApp(
                    match_on=spec.match_on,
                    priority=plan.priority_for("load_balancing"),
                    threshold=spec.threshold,
                )
            else:
                lb_app = EcmpLoadBalancerApp(
                    match_on=spec.match_on,
                    priority=plan.priority_for("load_balancing"),
                )
            lb_app.table_id = plan.table_for("load_balancing")
            controller.add_app(lb_app)
        elif forwarding:
            spec = forwarding[0]
            if spec.mode == "learning":
                fwd_app: object = L2LearningApp(
                    priority=plan.priority_for("forwarding")
                )
            else:
                fwd_app = ShortestPathApp(
                    match_on=spec.match_on,
                    priority=plan.priority_for("forwarding"),
                )
            fwd_app.table_id = plan.table_for("forwarding")
            controller.add_app(fwd_app)
        else:
            # No forwarding policy at all: default to shortest-path so
            # the fabric actually forwards (noted, not silent).
            fwd_app = ShortestPathApp(priority=plan.priority_for("forwarding"))
            fwd_app.table_id = plan.forwarding_table
            controller.add_app(fwd_app)
            notes.append("no forwarding policy given; defaulted to shortest-path")

    def _resolve_target(self, target: str):
        if target in self.topology:
            return self.topology.host(target).ip
        for parser in (IPv4Network, IPv4Address, MacAddress):
            try:
                return parser(target)
            except AddressError:
                continue
        raise PolicyValidationError(f"cannot resolve target {target!r}")

    def _compile_limit(self, spec: RateLimitingSpec) -> RateLimit:
        fields: Dict[str, object] = {}
        scope: Optional[List[str]] = list(spec.scope) if spec.scope else None
        if spec.src:
            src = self.topology.host(spec.src)
            fields["ip_src"] = src.ip
            if scope is None:
                # Meter at the source's attachment switch: the earliest
                # point the aggregate can be conditioned.
                peer = src.uplink_port.peer
                if peer is not None:
                    scope = [peer.node.name]
        if spec.dst:
            fields["ip_dst"] = self.topology.host(spec.dst).ip
        return RateLimit(
            match=Match(**fields), rate_bps=spec.rate_bps, scope=scope
        )


def compile_policies(
    topology: Topology,
    policies: Union[dict, Sequence[PolicySpec]],
    validate: bool = True,
) -> CompiledPolicy:
    """Module-level convenience wrapper around :class:`PolicyGenerator`."""
    return PolicyGenerator(topology, validate=validate).compile(policies)
