"""Policy composition: staging policies across tables and priorities.

Independent policies must coexist without interference (the poster cites
Monsanto et al.'s composition work).  Horse composes with two
mechanisms:

* **Stages** (sequential composition): traffic-conditioning policies
  (rate limiting) occupy an early table and ``GotoTable`` into the
  forwarding stage, so metering never hides a forwarding decision.
* **Priority bands** (override composition): within the forwarding
  stage, more specific policies outrank the base — blackholing above
  application peering above source routing above base forwarding.

:class:`CompositionPlan` computes the table layout and priority for each
policy kind; the compiler applies it to app instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from .spec import (
            ForwardingSpec,
        PolicySpec,
    RateLimitingSpec,
    )

#: Priority bands within the forwarding stage, highest first.  Gaps let
#: users slot custom apps between bands.
PRIORITY_BANDS: Dict[str, int] = {
    "blackholing": 400,
    "application_peering": 300,
    "source_routing": 200,
    "load_balancing": 100,
    "forwarding": 100,
}

#: Spec kinds that belong to the conditioning (metering) stage.
CONDITIONING_KINDS = ("rate_limiting",)


@dataclass
class Stage:
    """One pipeline table worth of policies."""

    table_id: int
    kinds: Tuple[str, ...]


@dataclass
class CompositionPlan:
    """The table layout + priority assignment for a policy set.

    Attributes
    ----------
    stages:
        Ordered stages; the last stage is the forwarding stage.
    num_tables:
        Tables the switch pipelines must provide.
    """

    stages: List[Stage] = field(default_factory=list)

    @property
    def num_tables(self) -> int:
        return len(self.stages)

    @property
    def forwarding_table(self) -> int:
        return self.stages[-1].table_id

    def table_for(self, kind: str) -> int:
        for stage in self.stages:
            if kind in stage.kinds:
                return stage.table_id
        raise KeyError(f"kind {kind!r} not in composition plan")

    def priority_for(self, kind: str) -> int:
        return PRIORITY_BANDS.get(kind, 100)


def plan_composition(specs: Sequence[PolicySpec]) -> CompositionPlan:
    """Compute the stage layout for a policy set.

    Rate limiting (if present) gets table 0; everything else shares the
    forwarding table.  With no conditioning policies the plan is a
    single table, matching OpenFlow switches with minimal pipelines.

    Examples
    --------
    >>> plan = plan_composition([ForwardingSpec(), RateLimitingSpec(rate_bps=1e6)])
    >>> plan.num_tables
    2
    >>> plan.table_for("rate_limiting"), plan.table_for("forwarding")
    (0, 1)
    """
    kinds = {s.kind for s in specs}
    conditioning = tuple(k for k in CONDITIONING_KINDS if k in kinds)
    forwarding_kinds = tuple(
        k
        for k in (
            "blackholing",
            "application_peering",
            "source_routing",
            "load_balancing",
            "forwarding",
        )
        if k in kinds
    ) or ("forwarding",)
    plan = CompositionPlan()
    table_id = 0
    if conditioning:
        plan.stages.append(Stage(table_id=table_id, kinds=conditioning))
        table_id += 1
    plan.stages.append(Stage(table_id=table_id, kinds=forwarding_kinds))
    return plan
