"""Policy validation: per-spec checks and composition conflicts.

The poster: "The policy generator will only make basic policy validation
of policy composition."  Implemented here as two layers:

* :func:`validate_spec` — field-level checks against a topology
  (hosts exist, rates positive, paths contiguous, apps known).
* :func:`validate_composition` — cross-spec checks (one base forwarding
  policy, blackholes that swallow other policies' traffic, duplicate
  limits), returning structured :class:`Conflict` records.

Rule-level checking (same-priority overlaps, cross-priority shadowing)
lives in :mod:`repro.analysis.rules`; the :func:`detect_rule_conflicts`
kept here is a deprecated shim that delegates to it.  For full
data-plane verification — loops, blackholes, reachability — see
:mod:`repro.analysis`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ...errors import PolicyConflictError, PolicyValidationError
from ...net.address import AddressError, IPv4Address, IPv4Network, MacAddress
from ...net.topology import Topology
from ...openflow.switch import OpenFlowPipeline
from ..apps.app_peering import app_port
from .spec import (
    AppPeeringSpec,
    BlackholingSpec,
    ForwardingSpec,
    LoadBalancingSpec,
    PolicySpec,
    RateLimitingSpec,
    SourceRoutingSpec,
)


@dataclass(frozen=True)
class Conflict:
    """One detected composition conflict."""

    severity: str  # 'error' | 'warning'
    message: str
    specs: tuple

    def __str__(self) -> str:
        return f"[{self.severity}] {self.message}"


def _parse_target(target: str, topology: Optional[Topology]):
    """Resolve a blackhole target string to an address object."""
    if topology is not None and target in topology:
        return topology.host(target).ip
    for parser in (IPv4Network, IPv4Address, MacAddress):
        try:
            return parser(target)
        except AddressError:
            continue
    raise PolicyValidationError(f"cannot resolve blackhole target {target!r}")


def validate_spec(spec: PolicySpec, topology: Optional[Topology] = None) -> None:
    """Raise :class:`PolicyValidationError` on a malformed spec."""
    if isinstance(spec, ForwardingSpec):
        if spec.mode not in ("learning", "shortest-path"):
            raise PolicyValidationError(
                f"forwarding mode must be learning/shortest-path, got {spec.mode!r}"
            )
        if spec.match_on not in ("eth_dst", "ip_dst"):
            raise PolicyValidationError(
                f"forwarding match_on must be eth_dst/ip_dst, got {spec.match_on!r}"
            )
    elif isinstance(spec, LoadBalancingSpec):
        if spec.mode not in ("ecmp", "reactive"):
            raise PolicyValidationError(
                f"load balancing mode must be ecmp/reactive, got {spec.mode!r}"
            )
        if not 0 < spec.threshold <= 1:
            raise PolicyValidationError(
                f"load balancing threshold must be in (0,1], got {spec.threshold}"
            )
    elif isinstance(spec, AppPeeringSpec):
        try:
            app_port(spec.app)
        except Exception as exc:
            raise PolicyValidationError(str(exc)) from None
        _require_hosts(topology, spec.src, spec.dst)
        if spec.path is not None:
            _require_path(topology, spec.path, spec.src, spec.dst)
    elif isinstance(spec, RateLimitingSpec):
        if spec.rate_bps <= 0:
            raise PolicyValidationError(
                f"rate limit must be > 0 bps, got {spec.rate_bps}"
            )
        if spec.src:
            _require_hosts(topology, spec.src)
        if spec.dst:
            _require_hosts(topology, spec.dst)
    elif isinstance(spec, BlackholingSpec):
        if spec.direction not in ("src", "dst", "both"):
            raise PolicyValidationError(
                f"blackhole direction must be src/dst/both, got {spec.direction!r}"
            )
        _parse_target(spec.target, topology)
    elif isinstance(spec, SourceRoutingSpec):
        _require_hosts(topology, spec.src, spec.dst)
        _require_path(topology, spec.path, spec.src, spec.dst)
    else:
        raise PolicyValidationError(f"unknown policy spec type {type(spec).__name__}")


def _require_hosts(topology: Optional[Topology], *names: str) -> None:
    if topology is None:
        return
    for name in names:
        topology.host(name)  # raises NodeNotFoundError/TopologyError


def _require_path(
    topology: Optional[Topology], path: Sequence[str], src: str, dst: str
) -> None:
    if len(path) < 3:
        raise PolicyValidationError(f"path must include a switch: {list(path)}")
    if path[0] != src or path[-1] != dst:
        raise PolicyValidationError(
            f"path {list(path)} does not connect {src} -> {dst}"
        )
    if topology is None:
        return
    for a, b in zip(path, path[1:]):
        if not topology.links_between(a, b):
            raise PolicyValidationError(f"path hop {a} -> {b} has no link")


def validate_composition(
    specs: Sequence[PolicySpec], topology: Optional[Topology] = None
) -> List[Conflict]:
    """Check a policy set for composition conflicts.

    Returns the conflicts found (possibly empty).  Use
    :func:`validate_or_raise` to turn errors into exceptions.
    """
    conflicts: List[Conflict] = []
    forwarding = [
        s for s in specs if isinstance(s, (ForwardingSpec, LoadBalancingSpec))
    ]
    if len([s for s in forwarding if isinstance(s, ForwardingSpec)]) > 1:
        conflicts.append(
            Conflict(
                "error",
                "multiple base forwarding policies",
                tuple(s for s in forwarding if isinstance(s, ForwardingSpec)),
            )
        )
    learning = [
        s for s in specs if isinstance(s, ForwardingSpec) and s.mode == "learning"
    ]
    lb = [s for s in specs if isinstance(s, LoadBalancingSpec)]
    if learning and lb:
        conflicts.append(
            Conflict(
                "error",
                "learning forwarding cannot compose with load balancing "
                "(reactive MAC rules bypass the multipath groups)",
                (learning[0], lb[0]),
            )
        )

    # Blackholes swallowing other policies' traffic.
    blackholes = [s for s in specs if isinstance(s, BlackholingSpec)]
    steering = [
        s for s in specs if isinstance(s, (AppPeeringSpec, SourceRoutingSpec))
    ]
    for hole in blackholes:
        try:
            target = _parse_target(hole.target, topology)
        except PolicyValidationError:
            # Unresolvable targets would previously vanish from the
            # swallow check entirely; surface them so the caller knows
            # this hole was not cross-checked against steering policies.
            conflicts.append(
                Conflict(
                    "warning",
                    f"cannot resolve blackhole target {hole.target!r}; "
                    "skipping composition checks for it",
                    (hole,),
                )
            )
            continue
        for steer in steering:
            if topology is None:
                continue
            victim_names = []
            if hole.direction in ("dst", "both"):
                victim_names.append(steer.dst)
            if hole.direction in ("src", "both"):
                victim_names.append(steer.src)
            for name in victim_names:
                try:
                    host_ip = topology.host(name).ip
                except Exception:
                    continue
                covered = (
                    target.contains(host_ip)
                    if isinstance(target, IPv4Network)
                    else target == host_ip
                )
                if covered:
                    conflicts.append(
                        Conflict(
                            "warning",
                            f"blackhole on {hole.target} swallows traffic "
                            f"steered by {steer.kind} "
                            f"{steer.src}->{steer.dst}",
                            (hole, steer),
                        )
                    )

    # Duplicate rate limits for the same pair: ambiguous intent.
    seen_limits = {}
    for spec in specs:
        if isinstance(spec, RateLimitingSpec):
            key = (spec.src, spec.dst)
            if key in seen_limits and seen_limits[key].rate_bps != spec.rate_bps:
                conflicts.append(
                    Conflict(
                        "error",
                        f"conflicting rate limits for {key}: "
                        f"{seen_limits[key].rate_bps} vs {spec.rate_bps} bps",
                        (seen_limits[key], spec),
                    )
                )
            seen_limits[key] = spec

    # Duplicate source routes for the same pair with different paths.
    seen_routes = {}
    for spec in specs:
        if isinstance(spec, SourceRoutingSpec):
            key = (spec.src, spec.dst)
            if key in seen_routes and tuple(seen_routes[key].path) != tuple(spec.path):
                conflicts.append(
                    Conflict(
                        "error",
                        f"conflicting source routes for {key}",
                        (seen_routes[key], spec),
                    )
                )
            seen_routes[key] = spec
    return conflicts


def validate_or_raise(
    specs: Sequence[PolicySpec], topology: Optional[Topology] = None
) -> List[Conflict]:
    """Validate specs and composition; raise on any error-severity
    conflict, returning surviving warnings."""
    for spec in specs:
        validate_spec(spec, topology)
    conflicts = validate_composition(specs, topology)
    errors = [c for c in conflicts if c.severity == "error"]
    if errors:
        raise PolicyConflictError(
            "; ".join(str(c) for c in errors)
        )
    return conflicts


def detect_rule_conflicts(pipeline: OpenFlowPipeline) -> List[dict]:
    """Deprecated shim: use :func:`repro.analysis.rules.detect_rule_conflicts`.

    The checker moved to the analysis package, where it gained
    cross-priority shadow detection and a priority-bucketed scan in
    place of the old same-priority-only O(n^2) pass.  This wrapper
    preserves the import path and the dict shape for one release.
    """
    import warnings

    from ...analysis.rules import detect_rule_conflicts as _detect

    warnings.warn(
        "repro.control.policy.validation.detect_rule_conflicts is "
        "deprecated; use repro.analysis.rules.detect_rule_conflicts",
        DeprecationWarning,
        stacklevel=2,
    )
    return _detect(pipeline)
