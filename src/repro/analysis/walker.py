"""Read-only symbolic walk of one switch's OpenFlow pipeline.

Mirrors :meth:`repro.openflow.switch.OpenFlowPipeline.process` without
touching any counter (table lookup stats, entry counters, bucket bytes)
and — crucially for verification — without collapsing nondeterminism: a
SELECT group hashes live traffic onto *one* bucket, but the analyzer
must prove every bucket safe, so the walk forks into one execution
state per eligible bucket and returns all terminal states.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from ..openflow.action import (
    Action,
    ApplyActions,
    Drop,
    Flood,
    GotoTable,
    GroupAction,
    MeterInstruction,
    Output,
    PORT_ALL,
    PORT_CONTROLLER,
    PORT_FLOOD,
    PORT_IN_PORT,
    PopVlan,
    PushVlan,
    SetField,
    ToController,
)
from ..openflow.flowtable import FlowEntry, FlowTable
from ..openflow.group import Bucket, Group, GroupType
from ..openflow.headers import HeaderFields
from ..openflow.switch import OpenFlowPipeline

#: Mirror of the pipeline's group-nesting limit.
_MAX_GROUP_DEPTH = 8


@dataclass(frozen=True)
class WalkState:
    """One terminal execution state of a symbolic pipeline walk.

    Attributes
    ----------
    outputs:
        ``(port_number, headers_at_emit)`` pairs, in emission order.
    matched:
        ``(table_id, entry)`` pairs that matched along this state.
    dropped / to_controller:
        Explicit Drop / ToController actions fired.
    miss:
        True when no entry matched at all (OpenFlow 1.3 implicit drop).
    missed_table:
        The table whose lookup found no entry, when the walk ended on a
        miss (set even after earlier tables matched via GotoTable).
    dead_group:
        A fast-failover group had no live bucket (traffic vanishes).
    suppressed:
        At least one Output was dropped by OpenFlow's in-port output
        suppression (the rule tried to send traffic back where it came
        from without naming IN_PORT).  A state with no outputs but
        ``suppressed`` set is a hairpin, not a blackhole.
    """

    outputs: Tuple[Tuple[int, HeaderFields], ...] = ()
    matched: Tuple[Tuple[int, FlowEntry], ...] = ()
    dropped: bool = False
    to_controller: bool = False
    miss: bool = False
    missed_table: Optional[int] = None
    dead_group: bool = False
    suppressed: bool = False

    @property
    def forwards(self) -> bool:
        return bool(self.outputs) and not self.dropped


@dataclass
class _Frame:
    """Mutable in-flight state while walking the tables."""

    headers: HeaderFields
    table_id: Optional[int] = 0
    outputs: List[Tuple[int, HeaderFields]] = field(default_factory=list)
    matched: List[Tuple[int, FlowEntry]] = field(default_factory=list)
    dropped: bool = False
    to_controller: bool = False
    missed_table: Optional[int] = None
    dead_group: bool = False
    suppressed: bool = False

    def fork(self) -> "_Frame":
        return _Frame(
            headers=self.headers,
            table_id=self.table_id,
            outputs=list(self.outputs),
            matched=list(self.matched),
            dropped=self.dropped,
            to_controller=self.to_controller,
            missed_table=self.missed_table,
            dead_group=self.dead_group,
            suppressed=self.suppressed,
        )

    def freeze(self) -> WalkState:
        return WalkState(
            outputs=tuple(self.outputs),
            matched=tuple(self.matched),
            dropped=self.dropped,
            to_controller=self.to_controller,
            miss=not self.matched,
            missed_table=self.missed_table,
            dead_group=self.dead_group,
            suppressed=self.suppressed,
        )


def _lookup(table: FlowTable, headers: HeaderFields, in_port: int) -> Optional[FlowEntry]:
    """Highest-priority matching entry, without counter updates."""
    for entry in table:
        if entry.match.matches(headers, in_port):
            return entry
    return None


def _port_up(pipeline: OpenFlowPipeline, number: int) -> bool:
    port = pipeline.switch.ports.get(number)
    return bool(
        port is not None and port.up and port.connected and port.link is not None and port.link.up
    )


def _flood_ports(pipeline: OpenFlowPipeline, in_port: int) -> List[int]:
    return [
        number
        for number, port in sorted(pipeline.switch.ports.items())
        if number != in_port and port.connected and port.up and port.link is not None and port.link.up
    ]


def _emit(frame: _Frame, port: int, in_port: int, pipeline: OpenFlowPipeline) -> None:
    if port == PORT_IN_PORT:
        frame.outputs.append((in_port, frame.headers))
        return
    if port in (PORT_FLOOD, PORT_ALL):
        for number in _flood_ports(pipeline, in_port):
            frame.outputs.append((number, frame.headers))
        return
    if port == PORT_CONTROLLER:
        frame.to_controller = True
        return
    if port == in_port:
        # The pipeline suppresses output to the ingress port unless the
        # reserved IN_PORT port is named explicitly.
        frame.suppressed = True
        return
    frame.outputs.append((port, frame.headers))


def _eligible_buckets(
    pipeline: OpenFlowPipeline, group: Group
) -> List[Tuple[int, Bucket]]:
    """The bucket set a walk must explore; forks where traffic could."""
    if group.group_type is GroupType.ALL:
        return list(enumerate(group.buckets))
    if group.group_type is GroupType.INDIRECT:
        return [(0, group.buckets[0])]
    if group.group_type is GroupType.SELECT:
        # Any weighted bucket may carry some flow: fork into each.
        return [(i, b) for i, b in enumerate(group.buckets) if b.weight > 0]
    # FAST_FAILOVER: the first live bucket wins deterministically.
    for i, bucket in enumerate(group.buckets):
        if bucket.watch_port is None or _port_up(pipeline, bucket.watch_port):
            return [(i, bucket)]
    return []


def _apply_actions(
    pipeline: OpenFlowPipeline,
    actions: Tuple[Action, ...],
    frames: List[_Frame],
    in_port: int,
    depth: int,
) -> List[_Frame]:
    """Apply an action list to every frame, forking on SELECT groups."""
    if depth > _MAX_GROUP_DEPTH:
        # Mirror the pipeline's nesting guard without raising: a
        # pathological group cycle shows up as vanished traffic.
        for frame in frames:
            frame.dead_group = True
        return frames
    for action in actions:
        if isinstance(action, Output):
            for frame in frames:
                _emit(frame, action.port, in_port, pipeline)
        elif isinstance(action, Flood):
            for frame in frames:
                for number in _flood_ports(pipeline, in_port):
                    frame.outputs.append((number, frame.headers))
        elif isinstance(action, Drop):
            for frame in frames:
                frame.dropped = True
        elif isinstance(action, ToController):
            for frame in frames:
                frame.to_controller = True
        elif isinstance(action, (SetField, PushVlan, PopVlan)):
            for frame in frames:
                frame.headers = action.apply(frame.headers)
        elif isinstance(action, GroupAction):
            if action.group_id not in pipeline.groups:
                for frame in frames:
                    frame.dead_group = True
                continue
            group = pipeline.groups.get(action.group_id)
            next_frames: List[_Frame] = []
            for frame in frames:
                buckets = _eligible_buckets(pipeline, group)
                if not buckets:
                    frame.dead_group = True
                    next_frames.append(frame)
                    continue
                if group.group_type is GroupType.SELECT and len(buckets) > 1:
                    forks = [frame] + [frame.fork() for _ in buckets[1:]]
                    for fork, (_, bucket) in zip(forks, buckets):
                        next_frames.extend(
                            _apply_actions(
                                pipeline, bucket.actions, [fork], in_port, depth + 1
                            )
                        )
                else:
                    # ALL / INDIRECT / FF: buckets run sequentially in
                    # one state, headers threading through, exactly as
                    # the live pipeline executes them.
                    current = [frame]
                    for _, bucket in buckets:
                        current = _apply_actions(
                            pipeline, bucket.actions, current, in_port, depth + 1
                        )
                    next_frames.extend(current)
            frames = next_frames
    return frames


def walk_pipeline(
    pipeline: OpenFlowPipeline, headers: HeaderFields, in_port: int
) -> List[WalkState]:
    """All terminal execution states for one (headers, in_port) input.

    The walk never mutates pipeline state; it is safe to run mid-
    simulation or from tests without perturbing statistics.
    """
    terminal: List[WalkState] = []
    pending: List[_Frame] = [_Frame(headers=headers)]
    while pending:
        frame = pending.pop()
        table_id = frame.table_id
        if table_id is None or table_id >= len(pipeline.tables):
            terminal.append(frame.freeze())
            continue
        entry = _lookup(pipeline.tables[table_id], frame.headers, in_port)
        if entry is None:
            frame.table_id = None
            frame.missed_table = table_id
            terminal.append(frame.freeze())
            continue
        frame.matched.append((table_id, entry))
        next_table: Optional[int] = None
        frames = [frame]
        for instruction in entry.instructions:
            if isinstance(instruction, MeterInstruction):
                continue  # rate conditioning never changes reachability
            if isinstance(instruction, ApplyActions):
                frames = _apply_actions(
                    pipeline, instruction.actions, frames, in_port, depth=0
                )
            elif isinstance(instruction, GotoTable):
                if instruction.table_id > table_id:
                    next_table = instruction.table_id
        for out in frames:
            out.table_id = next_table
            if next_table is None:
                terminal.append(out.freeze())
            else:
                pending.append(out)
    # Explicit drop clears emissions, matching PipelineResult semantics.
    cleaned = []
    for state in terminal:
        if state.dropped and state.outputs:
            cleaned.append(replace(state, outputs=()))
        else:
            cleaned.append(state)
    return cleaned
