"""Per-class forwarding-graph traversal over the whole fabric.

Injects a traffic class at an ingress port and follows every branch the
installed rules can take — across tables (walker), group fan-out, and
links — classifying each terminal branch:

* ``delivered`` — traffic reached a host port.
* ``dropped`` — an explicit Drop action fired (intended blackholing).
* ``controller`` — punted to the controller (reactive forwarding).
* ``loop`` — a (switch, in_port, headers) state repeated along one
  branch: traffic circulates forever.
* ``stuck`` — the class made forward progress (matched at least one
  rule) but then vanished: a table miss mid-path, an output to a
  down/unconnected port, or a dead fast-failover group.  This is the
  blackhole the analyzer reports.
* ``unmatched`` — no rule at the injection switch matched at all; the
  class simply does not occur at this ingress (not a defect).
* ``hairpin`` — the only emissions were suppressed outputs back to the
  ingress port; real traffic cannot arrive the way the injection did
  (an ``ingress="all"`` artifact, not a defect).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from ..net.node import Host, Switch
from ..openflow.headers import HeaderFields
from .classes import TrafficClass
from .walker import walk_pipeline

OUTCOME_DELIVERED = "delivered"
OUTCOME_DROPPED = "dropped"
OUTCOME_CONTROLLER = "controller"
OUTCOME_LOOP = "loop"
OUTCOME_STUCK = "stuck"
OUTCOME_UNMATCHED = "unmatched"
OUTCOME_HAIRPIN = "hairpin"


@dataclass(frozen=True)
class BranchOutcome:
    """The fate of one branch of a class's forwarding graph."""

    kind: str
    path: Tuple[str, ...]
    host: Optional[str] = None
    detail: str = ""


@dataclass(frozen=True)
class ClassTrace:
    """All branch outcomes for one (class, ingress) injection."""

    traffic_class: TrafficClass
    ingress_switch: str
    ingress_port: int
    outcomes: Tuple[BranchOutcome, ...]

    def outcomes_of(self, kind: str) -> List[BranchOutcome]:
        return [o for o in self.outcomes if o.kind == kind]

    @property
    def delivered_hosts(self) -> List[str]:
        return sorted(
            {o.host for o in self.outcomes if o.kind == OUTCOME_DELIVERED and o.host}
        )


_State = Tuple[str, int, HeaderFields]


def trace_class(
    traffic_class: TrafficClass,
    ingress_switch: Switch,
    ingress_port: int,
    max_hops: int,
) -> ClassTrace:
    """Trace one class from one ingress through the forwarding graph."""
    outcomes: List[BranchOutcome] = []
    _walk(
        ingress_switch,
        ingress_port,
        traffic_class.headers,
        frozenset(),
        (ingress_switch.name,),
        outcomes,
        max_hops,
    )
    return ClassTrace(
        traffic_class=traffic_class,
        ingress_switch=ingress_switch.name,
        ingress_port=ingress_port,
        outcomes=tuple(outcomes),
    )


def _walk(
    switch: Switch,
    in_port: int,
    headers: HeaderFields,
    visited: FrozenSet[_State],
    path: Tuple[str, ...],
    outcomes: List[BranchOutcome],
    max_hops: int,
) -> None:
    state: _State = (switch.name, in_port, headers)
    if state in visited:
        outcomes.append(
            BranchOutcome(
                kind=OUTCOME_LOOP,
                path=path,
                detail=f"state repeats at {switch.name}:{in_port}",
            )
        )
        return
    if len(path) > max_hops:
        outcomes.append(
            BranchOutcome(
                kind=OUTCOME_LOOP,
                path=path,
                detail=f"exceeded {max_hops} hops (unbounded walk)",
            )
        )
        return
    if switch.pipeline is None:
        outcomes.append(
            BranchOutcome(
                kind=OUTCOME_STUCK, path=path, detail=f"{switch.name} has no pipeline"
            )
        )
        return
    visited = visited | {state}
    progressed = len(path) > 1
    for walk_state in walk_pipeline(switch.pipeline, headers, in_port):
        if walk_state.dropped:
            outcomes.append(BranchOutcome(kind=OUTCOME_DROPPED, path=path))
            continue
        if not walk_state.outputs:
            if walk_state.to_controller:
                outcomes.append(BranchOutcome(kind=OUTCOME_CONTROLLER, path=path))
            elif walk_state.miss and not progressed:
                outcomes.append(
                    BranchOutcome(
                        kind=OUTCOME_UNMATCHED,
                        path=path,
                        detail=f"no rule matches at ingress {switch.name}",
                    )
                )
            elif walk_state.dead_group:
                outcomes.append(
                    BranchOutcome(
                        kind=OUTCOME_STUCK,
                        path=path,
                        detail=f"group on {switch.name} has no live bucket",
                    )
                )
            elif walk_state.missed_table is not None:
                outcomes.append(
                    BranchOutcome(
                        kind=OUTCOME_STUCK,
                        path=path,
                        detail=(
                            f"table {walk_state.missed_table} miss on "
                            f"{switch.name} (implicit drop)"
                        ),
                    )
                )
            elif walk_state.suppressed:
                # Every emission was OpenFlow's in-port suppression: the
                # rule pointed traffic back where it came from.  A real
                # packet cannot arrive here heading that way, so this is
                # a hairpin artifact of the injection, not a blackhole.
                outcomes.append(
                    BranchOutcome(
                        kind=OUTCOME_HAIRPIN,
                        path=path,
                        detail=(
                            f"{switch.name} forwards the class back out "
                            "its ingress port (suppressed hairpin)"
                        ),
                    )
                )
            else:
                outcomes.append(
                    BranchOutcome(
                        kind=OUTCOME_STUCK,
                        path=path,
                        detail=(
                            f"rules matched on {switch.name} but emitted no "
                            "output (empty action set)"
                        ),
                    )
                )
            continue
        for out_number, out_headers in walk_state.outputs:
            port = switch.ports.get(out_number)
            if port is None or not port.connected or port.link is None:
                outcomes.append(
                    BranchOutcome(
                        kind=OUTCOME_STUCK,
                        path=path,
                        detail=(
                            f"output to {switch.name}:{out_number}, which has "
                            "no attached link"
                        ),
                    )
                )
                continue
            if not port.up or not port.link.up:
                outcomes.append(
                    BranchOutcome(
                        kind=OUTCOME_STUCK,
                        path=path,
                        detail=(
                            f"output to {switch.name}:{out_number}, whose link "
                            "is down"
                        ),
                    )
                )
                continue
            peer = port.peer
            if peer is None:  # pragma: no cover - connected implies a peer
                continue
            if isinstance(peer.node, Host):
                outcomes.append(
                    BranchOutcome(
                        kind=OUTCOME_DELIVERED,
                        path=path + (peer.node.name,),
                        host=peer.node.name,
                    )
                )
                continue
            if isinstance(peer.node, Switch):
                _walk(
                    peer.node,
                    peer.number,
                    out_headers,
                    visited,
                    path + (peer.node.name,),
                    outcomes,
                    max_hops,
                )
