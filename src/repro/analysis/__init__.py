"""Data-plane static analysis for Horse.

A scaled-down Header Space Analysis / VeriFlow layer over the installed
OpenFlow state: derive traffic equivalence classes from the union of
installed matches, symbolically walk each class through flow tables,
group buckets, and links, and report loops, blackholes, shadowed/dead
rules, and reachability violations against declared policy intents.

Entry points:

* :func:`analyze_network` — programmatic one-call API.
* ``repro analyze scenario.json`` — CLI subcommand.
* :meth:`repro.control.controller.Controller.verify` — post-compile
  invariant hook.
"""

from .analyzer import (
    DataPlaneAnalyzer,
    INGRESS_ALL,
    INGRESS_EDGE,
    analyze_network,
)
from .classes import TrafficClass, derive_traffic_classes, witness_for
from .findings import (
    AnalysisReport,
    Finding,
    KIND_BLACKHOLE,
    KIND_COMPOSITION,
    KIND_LOOP,
    KIND_PATH_DEVIATION,
    KIND_REACHABILITY,
    KIND_REDUNDANT_RULE,
    KIND_RULE_CONFLICT,
    KIND_SHADOWED_RULE,
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
)
from .graph import BranchOutcome, ClassTrace, trace_class
from .rules import detect_rule_conflicts, find_table_findings
from .walker import WalkState, walk_pipeline

__all__ = [
    "AnalysisReport",
    "BranchOutcome",
    "ClassTrace",
    "DataPlaneAnalyzer",
    "Finding",
    "INGRESS_ALL",
    "INGRESS_EDGE",
    "KIND_BLACKHOLE",
    "KIND_COMPOSITION",
    "KIND_LOOP",
    "KIND_PATH_DEVIATION",
    "KIND_REACHABILITY",
    "KIND_REDUNDANT_RULE",
    "KIND_RULE_CONFLICT",
    "KIND_SHADOWED_RULE",
    "SEVERITY_ERROR",
    "SEVERITY_INFO",
    "SEVERITY_WARNING",
    "TrafficClass",
    "WalkState",
    "analyze_network",
    "derive_traffic_classes",
    "detect_rule_conflicts",
    "find_table_findings",
    "trace_class",
    "walk_pipeline",
    "witness_for",
]
