"""The data-plane static analyzer: forwarding-graph verification.

Ties the pieces together, VeriFlow-style but scaled to Horse's match
model:

1. derive witness traffic classes from the union of installed matches
   (:mod:`repro.analysis.classes`);
2. symbolically walk each class from every plausible ingress through
   tables, groups, and links (:mod:`repro.analysis.graph`), reporting
   **loops** and **blackholes**;
3. scan every flow table for **shadowed**, **redundant**, and
   **conflicting** rules (:mod:`repro.analysis.rules`);
4. check declared policy intents — source routes and pinned peering
   paths — against what the rules actually realize (**reachability**
   and **path deviation** findings).

Use :func:`analyze_network` for the one-call API; the ``repro analyze``
CLI subcommand and :meth:`repro.control.controller.Controller.verify`
are thin wrappers over it.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import HorseError
from ..net.node import Host, Switch
from ..net.topology import Topology
from ..openflow.headers import EthType, HeaderFields, IpProto
from .classes import TrafficClass, class_for_headers, derive_traffic_classes
from .findings import (
    AnalysisReport,
    Finding,
    KIND_BLACKHOLE,
    KIND_LOOP,
    KIND_PATH_DEVIATION,
    KIND_REACHABILITY,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
)
from .graph import (
    OUTCOME_DELIVERED,
    OUTCOME_LOOP,
    OUTCOME_STUCK,
    ClassTrace,
    trace_class,
)
from .rules import find_table_findings

#: Ingress selection modes for class injection.
INGRESS_EDGE = "edge"
INGRESS_ALL = "all"


class DataPlaneAnalyzer:
    """Static analyzer over a topology's installed forwarding state.

    Parameters
    ----------
    topology:
        The network whose switch pipelines are inspected (read-only).
    specs:
        Optional declared policy intents (``PolicySpec`` instances);
        source routes and pinned peering paths are verified against the
        rules actually installed.
    ingress:
        ``"edge"`` (default) injects classes only at host-facing switch
        ports — the places traffic genuinely enters the fabric;
        ``"all"`` injects at every connected switch port, which is
        stricter but can flag transit-only states real traffic never
        reaches.
    max_hops:
        Walk-depth backstop; defaults to ``4 * switches + 8``.
    """

    def __init__(
        self,
        topology: Topology,
        specs: Optional[Sequence[object]] = None,
        ingress: str = INGRESS_EDGE,
        max_hops: Optional[int] = None,
    ) -> None:
        if ingress not in (INGRESS_EDGE, INGRESS_ALL):
            raise ValueError(f"ingress must be 'edge' or 'all', got {ingress!r}")
        self.topology = topology
        self.specs = list(specs) if specs is not None else []
        self.ingress = ingress
        self.max_hops = (
            max_hops
            if max_hops is not None
            else 4 * max(1, len(topology.switches)) + 8
        )

    # ------------------------------------------------------------------
    # Injection points
    # ------------------------------------------------------------------
    def edge_ports(self) -> List[Tuple[Switch, int]]:
        """(switch, port-number) pairs where hosts attach."""
        return self.topology.edge_ports()

    def all_ports(self) -> List[Tuple[Switch, int]]:
        points: List[Tuple[Switch, int]] = []
        for switch in self.topology.switches:
            for number, port in sorted(switch.ports.items()):
                if port.connected:
                    points.append((switch, number))
        return points

    def _attachment(self, host_name: str) -> Optional[Tuple[Switch, int]]:
        """The switch-side port where a host plugs into the fabric."""
        try:
            return self.topology.attachment(host_name)
        except HorseError:
            return None

    def injection_points(
        self, traffic_class: TrafficClass
    ) -> List[Tuple[Switch, int]]:
        """Where a class can plausibly enter the fabric.

        A class whose witness source address belongs to a known host is
        injected only at that host's attachment port — traffic "from
        h1" cannot appear at another edge.  Classes with no resolvable
        origin are injected at every selected ingress port, except the
        destination host's own attachment: traffic *to* a host never
        enters the fabric at that host's port (and OpenFlow's in-port
        output suppression would misread the hairpin as a blackhole).
        """
        points: List[Tuple[Switch, int]] = []
        if traffic_class.origin_hosts:
            for name in traffic_class.origin_hosts:
                attachment = self._attachment(name)
                if attachment is not None:
                    points.append(attachment)
        if not points:
            candidates = (
                self.all_ports() if self.ingress == INGRESS_ALL else self.edge_ports()
            )
            points = [
                (switch, number)
                for switch, number in candidates
                if not self._is_destination_port(switch, number, traffic_class)
            ]
        return points

    def _is_destination_port(
        self, switch: Switch, number: int, traffic_class: TrafficClass
    ) -> bool:
        """True when the port attaches the class's own destination host."""
        port = switch.ports.get(number)
        peer = port.peer if port is not None else None
        if peer is None or not isinstance(peer.node, Host):
            return False
        host = peer.node
        headers = traffic_class.headers
        if headers.ip_dst is not None and host.ip == headers.ip_dst:
            return True
        return headers.eth_dst is not None and host.mac == headers.eth_dst

    # ------------------------------------------------------------------
    # Analysis passes
    # ------------------------------------------------------------------
    def analyze(self) -> AnalysisReport:
        """Run every pass and return the aggregated report."""
        report = AnalysisReport(
            switches_analyzed=len(self.topology.switches),
        )
        report.extend(self._table_pass())
        classes = derive_traffic_classes(self.topology)
        report.classes_analyzed = len(classes)
        report.extend(self._graph_pass(classes, report))
        report.extend(self._intent_pass())
        return report

    def _table_pass(self) -> List[Finding]:
        findings: List[Finding] = []
        for switch in self.topology.switches:
            if switch.pipeline is not None:
                findings.extend(find_table_findings(switch.pipeline))
        return findings

    def _graph_pass(
        self, classes: Iterable[TrafficClass], report: AnalysisReport
    ) -> List[Finding]:
        findings: List[Finding] = []
        seen: Set[Tuple[str, str, Tuple[str, ...], str]] = set()
        for traffic_class in classes:
            for switch, port in self.injection_points(traffic_class):
                report.injections += 1
                trace = trace_class(traffic_class, switch, port, self.max_hops)
                findings.extend(self._trace_findings(trace, seen))
        return findings

    def _trace_findings(
        self,
        trace: ClassTrace,
        seen: Set[Tuple[str, str, Tuple[str, ...], str]],
    ) -> List[Finding]:
        findings: List[Finding] = []
        description = trace.traffic_class.description
        for outcome in trace.outcomes:
            if outcome.kind == OUTCOME_LOOP:
                key = (KIND_LOOP, description, outcome.path, outcome.detail)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(
                    Finding(
                        kind=KIND_LOOP,
                        severity=SEVERITY_ERROR,
                        message=(
                            f"class [{description}] loops: {outcome.detail}"
                        ),
                        switch=trace.ingress_switch,
                        path=outcome.path,
                        traffic_class=description,
                    )
                )
            elif outcome.kind == OUTCOME_STUCK:
                key = (KIND_BLACKHOLE, description, outcome.path, outcome.detail)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(
                    Finding(
                        kind=KIND_BLACKHOLE,
                        severity=SEVERITY_ERROR,
                        message=(
                            f"class [{description}] blackholes: "
                            f"{outcome.detail} (no egress, no explicit drop)"
                        ),
                        switch=outcome.path[-1] if outcome.path else None,
                        path=outcome.path,
                        traffic_class=description,
                    )
                )
        return findings

    # ------------------------------------------------------------------
    # Intent verification
    # ------------------------------------------------------------------
    def _intent_pass(self) -> List[Finding]:
        # Imported lazily: the control package is a consumer of this
        # module (Controller.verify), so module-level imports would be
        # circular-import bait.
        from ..control.policy.spec import AppPeeringSpec, SourceRoutingSpec

        findings: List[Finding] = []
        for spec in self.specs:
            if isinstance(spec, SourceRoutingSpec):
                headers = self._pair_headers(spec.src, spec.dst)
                if headers is None:
                    continue
                findings.extend(
                    self._check_path_intent(
                        kind="source route",
                        src=spec.src,
                        dst=spec.dst,
                        declared_path=tuple(spec.path),
                        headers=headers,
                    )
                )
            elif isinstance(spec, AppPeeringSpec) and spec.path is not None:
                headers = self._peering_headers(spec.src, spec.dst, spec.app)
                if headers is None:
                    continue
                findings.extend(
                    self._check_path_intent(
                        kind=f"{spec.app} peering path",
                        src=spec.src,
                        dst=spec.dst,
                        declared_path=tuple(spec.path),
                        headers=headers,
                    )
                )
        return findings

    def _pair_headers(self, src: str, dst: str) -> Optional[HeaderFields]:
        try:
            src_host = self.topology.host(src)
            dst_host = self.topology.host(dst)
        except HorseError:
            return None
        # Carry both L2 and L3 addresses so the witness matches rules
        # regardless of whether forwarding keys on eth_dst or ip_dst.
        return HeaderFields(
            eth_src=src_host.mac,
            eth_dst=dst_host.mac,
            ip_src=src_host.ip,
            ip_dst=dst_host.ip,
        )

    def _peering_headers(
        self, src: str, dst: str, app: object
    ) -> Optional[HeaderFields]:
        from ..control.apps.app_peering import app_port

        base = self._pair_headers(src, dst)
        if base is None:
            return None
        try:
            port = app_port(app)
        except HorseError:
            return None
        return base.with_fields(
            eth_type=EthType.IPV4, ip_proto=IpProto.TCP, tp_dst=port
        )

    def _check_path_intent(
        self,
        kind: str,
        src: str,
        dst: str,
        declared_path: Tuple[str, ...],
        headers: HeaderFields,
    ) -> List[Finding]:
        attachment = self._attachment(src)
        if attachment is None:
            return []
        switch, port = attachment
        traffic_class = class_for_headers(
            self.topology, headers, description=f"{kind} {src}->{dst}"
        )
        trace = trace_class(traffic_class, switch, port, self.max_hops)
        delivered = [
            o
            for o in trace.outcomes
            if o.kind == OUTCOME_DELIVERED and o.host == dst
        ]
        if not delivered:
            reasons = sorted(
                {o.detail for o in trace.outcomes if o.detail}
            ) or ["traffic never reaches the destination"]
            return [
                Finding(
                    kind=KIND_REACHABILITY,
                    severity=SEVERITY_ERROR,
                    message=(
                        f"{kind} {src}->{dst} is not realized by the "
                        f"installed rules: {'; '.join(reasons)}"
                    ),
                    switch=switch.name,
                    path=declared_path,
                    traffic_class=traffic_class.description,
                )
            ]
        # Declared path includes the end hosts; the trace path is
        # switch names starting at the ingress switch plus the host.
        expected = tuple(declared_path[1:-1])
        actual_paths = {o.path[:-1] for o in delivered}
        if expected and all(path != expected for path in actual_paths):
            shown = "; ".join(sorted(" -> ".join(p) for p in actual_paths))
            return [
                Finding(
                    kind=KIND_PATH_DEVIATION,
                    severity=SEVERITY_WARNING,
                    message=(
                        f"{kind} {src}->{dst} declared via "
                        f"{' -> '.join(expected)} but traffic takes {shown}"
                    ),
                    switch=switch.name,
                    path=declared_path,
                    traffic_class=traffic_class.description,
                )
            ]
        return []


def analyze_network(
    topology: Topology,
    specs: Optional[Sequence[object]] = None,
    ingress: str = INGRESS_EDGE,
    max_hops: Optional[int] = None,
) -> AnalysisReport:
    """Analyze a topology's installed forwarding state in one call."""
    return DataPlaneAnalyzer(
        topology, specs=specs, ingress=ingress, max_hops=max_hops
    ).analyze()
