"""Rule-level table analysis: shadowing, redundancy, and conflicts.

Three defect shapes per flow table:

* **Shadowed rule** — a higher-priority entry's match subsumes a
  lower-priority entry's match and their instructions differ: the lower
  entry can never fire, yet reads as if it changes behavior.
* **Redundant rule** — same subsumption but with identical
  instructions: dead weight, behavior-preserving.
* **Same-priority conflict** — two entries at one priority overlap with
  diverging instructions: which one wins depends on insertion order,
  the "inconsistencies might occur even assuming completely independent
  policies" case the Horse poster warns about.

The scan buckets entries by priority so same-priority overlap checks
stay inside one bucket and cross-priority subsumption only compares a
bucket against strictly-higher buckets — replacing the old flat
O(n²)-over-the-whole-table pairwise pass from
``repro.control.policy.validation``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Tuple

from ..openflow.flowtable import FlowEntry, FlowTable
from ..openflow.switch import OpenFlowPipeline
from .findings import (
    Finding,
    KIND_REDUNDANT_RULE,
    KIND_RULE_CONFLICT,
    KIND_SHADOWED_RULE,
    SEVERITY_INFO,
    SEVERITY_WARNING,
)


def _priority_buckets(table: FlowTable) -> "OrderedDict[int, List[FlowEntry]]":
    """Entries grouped by priority, highest priority first.

    ``table.entries`` is already sorted by descending priority, so one
    linear pass builds the buckets in order.
    """
    buckets: "OrderedDict[int, List[FlowEntry]]" = OrderedDict()
    for entry in table.entries:
        buckets.setdefault(entry.priority, []).append(entry)
    return buckets


def iter_table_anomalies(
    table: FlowTable,
) -> List[Tuple[str, FlowEntry, FlowEntry]]:
    """Raw (kind, blocking_entry, blocked_entry) anomalies in one table.

    Kinds: ``overlap`` (same priority, diverging instructions),
    ``shadow`` (higher subsumes lower, diverging instructions),
    ``redundant`` (higher subsumes lower, identical instructions).
    """
    anomalies: List[Tuple[str, FlowEntry, FlowEntry]] = []
    buckets = _priority_buckets(table)
    higher: List[FlowEntry] = []
    for entries in buckets.values():
        # Same-priority overlaps within the bucket.
        for i, a in enumerate(entries):
            for b in entries[i + 1 :]:
                if a.instructions != b.instructions and a.match.overlaps(b.match):
                    anomalies.append(("overlap", a, b))
        # Cross-priority shadowing against every strictly-higher bucket.
        for entry in entries:
            for above in higher:
                if above.match.subsumes(entry.match):
                    kind = (
                        "redundant"
                        if above.instructions == entry.instructions
                        else "shadow"
                    )
                    anomalies.append((kind, above, entry))
                    break  # first subsumer is enough to kill the entry
        higher.extend(entries)
    return anomalies


def detect_rule_conflicts(pipeline: OpenFlowPipeline) -> List[Dict[str, object]]:
    """Conflicting entries in a switch pipeline, as records.

    Finds same-priority overlapping entries with diverging instructions
    (``kind="overlap"``, the historical behavior) and cross-priority
    shadowing where a higher-priority entry subsumes a lower one with
    different instructions (``kind="shadow"``).  Fully-redundant
    shadowing (identical instructions) is not a conflict and is left to
    :func:`find_table_findings`.
    """
    findings: List[Dict[str, object]] = []
    for table in pipeline.tables:
        for kind, a, b in iter_table_anomalies(table):
            if kind == "redundant":
                continue
            record: Dict[str, object] = {
                "kind": kind,
                "switch": pipeline.switch.name,
                "table_id": table.table_id,
                "priority": a.priority,
                "match_a": a.match,
                "match_b": b.match,
            }
            if kind == "shadow":
                record["shadowed_priority"] = b.priority
            findings.append(record)
    return findings


def find_table_findings(pipeline: OpenFlowPipeline) -> List[Finding]:
    """Typed findings for every rule-level anomaly in a pipeline."""
    findings: List[Finding] = []
    name = pipeline.switch.name
    for table in pipeline.tables:
        for kind, a, b in iter_table_anomalies(table):
            if kind == "overlap":
                findings.append(
                    Finding(
                        kind=KIND_RULE_CONFLICT,
                        severity=SEVERITY_WARNING,
                        message=(
                            f"priority-{a.priority} entries overlap with "
                            f"diverging instructions: {a.match.describe()} vs "
                            f"{b.match.describe()} (winner depends on "
                            "insertion order)"
                        ),
                        switch=name,
                        table_id=table.table_id,
                    )
                )
            elif kind == "shadow":
                findings.append(
                    Finding(
                        kind=KIND_SHADOWED_RULE,
                        severity=SEVERITY_WARNING,
                        message=(
                            f"priority-{b.priority} entry "
                            f"[{b.match.describe()}] can never match: "
                            f"priority-{a.priority} entry "
                            f"[{a.match.describe()}] subsumes it with "
                            "different instructions"
                        ),
                        switch=name,
                        table_id=table.table_id,
                    )
                )
            else:  # redundant
                findings.append(
                    Finding(
                        kind=KIND_REDUNDANT_RULE,
                        severity=SEVERITY_INFO,
                        message=(
                            f"priority-{b.priority} entry "
                            f"[{b.match.describe()}] is redundant: "
                            f"priority-{a.priority} entry with identical "
                            "instructions subsumes it"
                        ),
                        switch=name,
                        table_id=table.table_id,
                    )
                )
    return findings
