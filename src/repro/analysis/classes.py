"""Traffic equivalence classes derived from installed matches.

Full Header Space Analysis tracks arbitrary wildcard-bit regions; Horse's
match model is far narrower (exact fields plus IPv4 prefixes), so the
analyzer scales the idea down: every distinct :class:`Match` installed
anywhere in the network contributes one *witness* header tuple — a
concrete representative of the traffic class that the match carves out.
Two matches whose witnesses coincide collapse into one class, so the
walk explores each distinct forwarding behavior once instead of once
per rule.

Witnesses keep a field unset when the generating match wildcards it;
:class:`~repro.openflow.match.Match` treats an unset header field as
"not present", so a witness only triggers rules at least as coarse as
its generating match — exactly the per-class behavior the walk needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..net.address import IPv4Address, IPv4Network
from ..net.topology import Topology
from ..openflow.headers import HeaderFields
from ..openflow.match import IpMatch, Match


@dataclass(frozen=True)
class TrafficClass:
    """One equivalence class of traffic, represented by a witness.

    Attributes
    ----------
    headers:
        The concrete witness header tuple.
    description:
        Human-readable rendering of the generating match.
    origin_hosts:
        Host names whose addresses equal the witness source fields.
        Non-empty origins restrict ingress injection to those hosts'
        attachment ports (traffic "from h1" can only enter at h1);
        empty means the class may enter at any edge port.
    """

    headers: HeaderFields
    description: str
    origin_hosts: Tuple[str, ...] = ()


def representative_ip(pattern: IpMatch) -> IPv4Address:
    """A concrete address inside an exact-or-prefix IP pattern."""
    if isinstance(pattern, IPv4Network):
        base = int(pattern.network)
        if pattern.prefix_len >= 31:
            return IPv4Address(base)
        # Skip the network address so the witness looks like host traffic.
        return IPv4Address(base + 1)
    return pattern


def witness_for(match: Match) -> HeaderFields:
    """Concretize a match into one header tuple inside its class."""
    return HeaderFields(
        eth_src=match.eth_src,
        eth_dst=match.eth_dst,
        eth_type=match.eth_type,
        vlan_vid=match.vlan_vid,
        ip_src=representative_ip(match.ip_src) if match.ip_src is not None else None,
        ip_dst=representative_ip(match.ip_dst) if match.ip_dst is not None else None,
        ip_proto=match.ip_proto,
        tp_src=match.tp_src,
        tp_dst=match.tp_dst,
    )


def _origins(topology: Topology, headers: HeaderFields) -> Tuple[str, ...]:
    names = []
    for host in topology.hosts:
        if headers.ip_src is not None and host.ip == headers.ip_src:
            names.append(host.name)
        elif headers.eth_src is not None and host.mac == headers.eth_src:
            names.append(host.name)
    return tuple(sorted(set(names)))


def derive_traffic_classes(topology: Topology) -> List[TrafficClass]:
    """The witness classes for the union of installed matches.

    Deterministic: classes are sorted by their witness rendering, and
    duplicate witnesses (matches installed on many switches, or equal
    matches from different rules) collapse into one class.
    """
    by_witness: Dict[HeaderFields, TrafficClass] = {}
    for switch in topology.switches:
        pipeline = switch.pipeline
        if pipeline is None:
            continue
        for table in pipeline.tables:
            for entry in table.entries:
                if entry.match.is_wildcard_all:
                    # The all-wildcard class is every packet at once; a
                    # table-miss-style rule defines the default behavior
                    # other classes already exercise, and a witness with
                    # no fields set matches nothing more specific.
                    continue
                headers = witness_for(entry.match)
                if headers in by_witness:
                    continue
                by_witness[headers] = TrafficClass(
                    headers=headers,
                    description=entry.match.describe(),
                    origin_hosts=_origins(topology, headers),
                )
    return sorted(by_witness.values(), key=lambda c: c.headers.describe())


def class_for_headers(
    topology: Topology, headers: HeaderFields, description: Optional[str] = None
) -> TrafficClass:
    """Wrap explicit headers (e.g. an intent witness) as a class."""
    return TrafficClass(
        headers=headers,
        description=description or headers.describe(),
        origin_hosts=_origins(topology, headers),
    )
