"""Typed findings produced by the data-plane static analyzer.

A :class:`Finding` is one verified defect (or observation) about the
installed forwarding state: a loop, a blackhole, a shadowed rule, a
same-priority conflict, or a policy intent the rules fail to realize.
:class:`AnalysisReport` aggregates findings with severity accounting and
renders the human/JSON reports the ``repro analyze`` subcommand prints.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Severity levels, most severe first.
SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITY_INFO = "info"

_SEVERITY_ORDER = {SEVERITY_ERROR: 0, SEVERITY_WARNING: 1, SEVERITY_INFO: 2}

#: SARIF 2.1.0 result levels for each severity.
SEVERITY_TO_SARIF = {
    SEVERITY_ERROR: "error",
    SEVERITY_WARNING: "warning",
    SEVERITY_INFO: "note",
}

#: SARIF version pinned by the shared reporters.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def severity_rank(severity: str) -> int:
    """Sort key: 0 = error, 1 = warning, 2 = info, 3 = unknown."""
    return _SEVERITY_ORDER.get(severity, 3)


def fingerprint_of(rule: str, location: Dict[str, object], message: str) -> str:
    """Stable 16-hex-digit identity of one finding.

    The fingerprint keys baselines and CI report merging: it is a pure
    function of the rule id, the location envelope (file/line or
    switch/table), and the message — independent of discovery order.
    """
    parts = [rule, message]
    for key in sorted(location):
        parts.append(f"{key}={location[key]}")
    digest = hashlib.sha256("\x1f".join(parts).encode()).hexdigest()
    return digest[:16]


def envelope(
    rule: str,
    severity: str,
    message: str,
    location: Dict[str, object],
) -> Dict[str, object]:
    """The JSON envelope shared by ``repro analyze`` and ``repro lint``.

    Every finding either tool emits renders to this shape, so CI can
    concatenate the two reports into one stream keyed by fingerprint.
    """
    return {
        "rule": rule,
        "severity": severity,
        "message": message,
        "location": dict(location),
        "fingerprint": fingerprint_of(rule, location, message),
    }


def sarif_document(
    envelopes: List[Dict[str, object]],
    rules: List[Dict[str, str]],
    tool_name: str,
) -> Dict[str, object]:
    """Render finding envelopes as a single-run SARIF 2.1.0 document.

    ``rules`` lists the rule metadata to embed in the tool driver:
    dicts with ``id``, ``name``, and ``description`` keys.  Only rules
    given there are embedded; results may reference others.
    """
    results = []
    for record in envelopes:
        location = record.get("location") or {}
        physical: Dict[str, object] = {}
        if "file" in location:
            region: Dict[str, object] = {}
            if "line" in location:
                region["startLine"] = location["line"]
            if "column" in location:
                region["startColumn"] = location["column"]
            physical = {
                "artifactLocation": {"uri": str(location["file"])},
            }
            if region:
                physical["region"] = region
        else:
            # Data-plane findings locate in the network, not a file; the
            # logical location carries the switch/table coordinates.
            physical = {
                "artifactLocation": {
                    "uri": str(location.get("switch", "network"))
                },
            }
        results.append(
            {
                "ruleId": record["rule"],
                "level": SEVERITY_TO_SARIF.get(
                    str(record["severity"]), "warning"
                ),
                "message": {"text": record["message"]},
                "locations": [{"physicalLocation": physical}],
                "partialFingerprints": {
                    "reproFingerprint/v1": record["fingerprint"],
                },
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": (
                            "https://github.com/repro/horse"
                        ),
                        "rules": [
                            {
                                "id": rule["id"],
                                "name": rule.get("name", rule["id"]),
                                "shortDescription": {
                                    "text": rule.get("description", "")
                                },
                            }
                            for rule in rules
                        ],
                    }
                },
                "results": results,
            }
        ],
    }

#: Finding kinds emitted by the analyzer.
KIND_LOOP = "loop"
KIND_BLACKHOLE = "blackhole"
KIND_SHADOWED_RULE = "shadowed_rule"
KIND_REDUNDANT_RULE = "redundant_rule"
KIND_RULE_CONFLICT = "rule_conflict"
KIND_REACHABILITY = "reachability"
KIND_PATH_DEVIATION = "path_deviation"
KIND_COMPOSITION = "composition"


@dataclass(frozen=True)
class Finding:
    """One static-analysis finding.

    Attributes
    ----------
    kind:
        One of the ``KIND_*`` constants (loop, blackhole, ...).
    severity:
        ``error`` (forwarding is broken), ``warning`` (suspicious or
        dead state), or ``info`` (benign observation).
    message:
        Human-readable one-line description.
    switch:
        Switch where the defect manifests (when localizable).
    table_id:
        Flow table involved (rule-level findings).
    path:
        Switch-name walk relevant to the finding (loops, blackholes,
        intent checks).
    traffic_class:
        ``describe()`` rendering of the witness header tuple that
        exhibits the behavior (graph-level findings).
    """

    kind: str
    severity: str
    message: str
    switch: Optional[str] = None
    table_id: Optional[int] = None
    path: Tuple[str, ...] = ()
    traffic_class: Optional[str] = None

    @property
    def rule(self) -> str:
        """Stable rule id: data-plane findings are ``DP-<KIND>``."""
        return "DP-" + self.kind.upper().replace("_", "-")

    def location(self) -> Dict[str, object]:
        """Location part of the shared finding envelope."""
        loc: Dict[str, object] = {}
        if self.switch is not None:
            loc["switch"] = self.switch
        if self.table_id is not None:
            loc["table_id"] = self.table_id
        if self.path:
            loc["path"] = " -> ".join(self.path)
        return loc

    @property
    def fingerprint(self) -> str:
        return fingerprint_of(self.rule, self.location(), self.message)

    def to_envelope(self) -> Dict[str, object]:
        """Render to the envelope shared with ``repro lint``."""
        return envelope(self.rule, self.severity, self.message, self.location())

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable rendering."""
        record: Dict[str, object] = {
            "kind": self.kind,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }
        if self.switch is not None:
            record["switch"] = self.switch
        if self.table_id is not None:
            record["table_id"] = self.table_id
        if self.path:
            record["path"] = list(self.path)
        if self.traffic_class is not None:
            record["traffic_class"] = self.traffic_class
        return record

    def __str__(self) -> str:
        location = f" [{self.switch}]" if self.switch else ""
        return f"{self.severity.upper()} {self.kind}{location}: {self.message}"


@dataclass
class AnalysisReport:
    """The full result of one analyzer run."""

    findings: List[Finding] = field(default_factory=list)
    classes_analyzed: int = 0
    switches_analyzed: int = 0
    injections: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_WARNING]

    @property
    def infos(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_INFO]

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was produced."""
        return not self.errors

    def by_kind(self, kind: str) -> List[Finding]:
        return [f for f in self.findings if f.kind == kind]

    def sorted_findings(self) -> List[Finding]:
        """Findings ordered by severity, then kind, then location."""
        return sorted(
            self.findings,
            key=lambda f: (
                _SEVERITY_ORDER.get(f.severity, 3),
                f.kind,
                f.switch or "",
                f.message,
            ),
        )

    def extend(self, findings: List[Finding]) -> None:
        self.findings.extend(findings)

    def exit_code(self, strict: bool = False) -> int:
        """Process exit code: 1 on errors (or warnings when strict)."""
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "classes_analyzed": self.classes_analyzed,
            "switches_analyzed": self.switches_analyzed,
            "injections": self.injections,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
            "findings": [f.to_dict() for f in self.sorted_findings()],
        }

    def to_sarif(self) -> Dict[str, object]:
        """SARIF 2.1.0 rendering (same run shape as ``repro lint``)."""
        findings = self.sorted_findings()
        seen: Dict[str, Dict[str, str]] = {}
        for finding in findings:
            seen.setdefault(
                finding.rule,
                {
                    "id": finding.rule,
                    "name": finding.kind,
                    "description": (
                        f"data-plane {finding.kind.replace('_', ' ')} finding"
                    ),
                },
            )
        return sarif_document(
            [f.to_envelope() for f in findings],
            [seen[key] for key in sorted(seen)],
            tool_name="repro-analyze",
        )

    def summary_text(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"analyzed {self.classes_analyzed} traffic classes over "
            f"{self.switches_analyzed} switches "
            f"({self.injections} ingress injections)"
        ]
        if not self.findings:
            lines.append("no findings: forwarding state verified clean")
            return "\n".join(lines)
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} info"
        )
        for finding in self.sorted_findings():
            lines.append(f"  {finding}")
            if finding.path:
                lines.append(f"      path: {' -> '.join(finding.path)}")
        return "\n".join(lines)
