"""Engine events: the "temporally ordered set of inputs for the topology".

Flow arrivals/completions, link failures/recoveries, and coalesced
re-route sweeps.  Event priorities order same-instant processing: link
state changes apply before flow arrivals, and re-route sweeps run last
so they see every rule installed at that instant.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim.event import Event

if TYPE_CHECKING:  # pragma: no cover
    from .engine import FlowLevelEngine
    from .flow import Flow

#: Event priorities (lower fires first at equal times).
PRIO_LINK = -10
PRIO_ARRIVAL = 0
PRIO_COMPLETION = 5
PRIO_REROUTE = 10


class FlowArrival(Event):
    """A new flow starts offering traffic."""

    __slots__ = ("engine", "flow")

    def __init__(self, time: float, engine: "FlowLevelEngine", flow: "Flow") -> None:
        super().__init__(time, priority=PRIO_ARRIVAL)
        self.engine = engine
        self.flow = flow

    def fire(self, sim) -> None:
        self.engine.on_arrival(self.flow)


class FlowCompletion(Event):
    """A volume flow drained its last byte (projected; re-scheduled when
    rates change)."""

    __slots__ = ("engine", "flow")

    def __init__(self, time: float, engine: "FlowLevelEngine", flow: "Flow") -> None:
        super().__init__(time, priority=PRIO_COMPLETION)
        self.engine = engine
        self.flow = flow

    def fire(self, sim) -> None:
        self.engine.on_completion(self.flow)


class FlowEnd(Event):
    """A continuous flow reaches its configured duration."""

    __slots__ = ("engine", "flow")

    def __init__(self, time: float, engine: "FlowLevelEngine", flow: "Flow") -> None:
        super().__init__(time, priority=PRIO_COMPLETION)
        self.engine = engine
        self.flow = flow

    def fire(self, sim) -> None:
        self.engine.on_end(self.flow)


class LinkFailure(Event):
    """An injected link failure (poster: "link failure" input event)."""

    __slots__ = ("engine", "node_a", "node_b")

    def __init__(
        self, time: float, engine: "FlowLevelEngine", node_a: str, node_b: str
    ) -> None:
        super().__init__(time, priority=PRIO_LINK)
        self.engine = engine
        self.node_a = node_a
        self.node_b = node_b

    def fire(self, sim) -> None:
        self.engine.on_link_state(self.node_a, self.node_b, up=False)


class LinkRecovery(Event):
    """An injected link recovery."""

    __slots__ = ("engine", "node_a", "node_b")

    def __init__(
        self, time: float, engine: "FlowLevelEngine", node_a: str, node_b: str
    ) -> None:
        super().__init__(time, priority=PRIO_LINK)
        self.engine = engine
        self.node_a = node_a
        self.node_b = node_b

    def fire(self, sim) -> None:
        self.engine.on_link_state(self.node_a, self.node_b, up=True)


class RerouteSweep(Event):
    """Coalesced re-route of flows affected by rule/link changes."""

    __slots__ = ("engine",)

    def __init__(self, time: float, engine: "FlowLevelEngine") -> None:
        super().__init__(time, priority=PRIO_REROUTE)
        self.engine = engine

    def fire(self, sim) -> None:
        self.engine.on_reroute_sweep()
