"""Flow-level data-plane engine (Horse's core abstraction)."""

from .engine import FlowLevelEngine
from .fairshare import FlowDemand, IncrementalSolver, affected_component, solve
from .flow import Flow, FlowRoute, FlowState, Terminal

__all__ = [
    "Flow",
    "FlowDemand",
    "FlowLevelEngine",
    "FlowRoute",
    "FlowState",
    "IncrementalSolver",
    "Terminal",
    "affected_component",
    "solve",
]
