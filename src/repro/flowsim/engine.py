"""The flow-level data-plane engine — Horse's core contribution.

Instead of moving packets, the engine advances a fluid model between
*flow events* (arrivals, completions, link failures, rule changes):

1. **Accrue** — charge a flow's current rate for the elapsed interval
   into flow/entry/port/meter counters.  Accrual is *lazy per flow*: a
   flow is charged only when its rate is about to change, when it
   finishes, or when statistics are read ("traffic statistics and the
   state of the topology are updated after every event" — the poster's
   contract is preserved observationally while costing O(changed) per
   event instead of O(active)).
2. **Apply** the event — route a new flow through the OpenFlow
   pipelines, retire a finished one, flip a link, or re-walk flows whose
   rules changed.
3. **Re-solve** max-min fair rates (vectorized progressive filling) and
   reproject completion times for flows whose rate moved.

Routing walks the real switch pipelines (tables, groups, meters), so
controller-installed rules — not simulator shortcuts — decide paths;
``ToController`` punts raise packet-ins on the attached control plane,
closing the control loop the poster's architecture shows.

Two hot-path accelerators keep per-event cost proportional to what the
event touched rather than to the whole network:

* **Incremental re-solving** (default).  The engine feeds flow/link
  updates into a persistent :class:`~repro.flowsim.fairshare
  .IncrementalSolver`, which maintains the link-sharing component index
  and re-runs the max-min kernel only on components an event touched.
  ``solver="full"`` re-solves everything through the *same* kernel, so
  both modes produce bitwise-identical rate vectors (asserted by
  ``tests/diff``); ``solver="vector"`` keeps the flat slot-array solve
  as a reference implementation.
* **Route caching.**  Flows whose headers are equivalent under the
  installed rules (same projection onto every matched field) reuse a
  cached pipeline walk.  Cache entries record the version of every
  pipeline they consulted plus a link epoch, so a flow-mod/group-mod/
  port-status invalidates exactly the affected header classes.
"""

from __future__ import annotations

import dataclasses
import logging
import time as _time
from collections import deque
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..errors import SimulationError, TopologyError
from ..net.link import LinkDirection
from ..net.node import Host, Switch
from ..net.topology import Topology
from ..openflow.headers import HeaderFields
from ..openflow.messages import (
    PacketIn,
    PacketInReason,
    PortStatus,
    PortStatusReason,
)
from ..openflow.switch import OpenFlowPipeline, PipelineResult
from ..sim.kernel import Simulator
from .events import (
    FlowArrival,
    FlowCompletion,
    FlowEnd,
    LinkFailure,
    LinkRecovery,
    RerouteSweep,
)
from .fairshare import FlowDemand, IncrementalSolver, solve, solve_arrays
from .flow import Flow, FlowRoute, FlowState, Terminal

logger = logging.getLogger(__name__)

#: Rank used to keep the most meaningful terminal across flood branches.
_TERMINAL_RANK = {
    Terminal.DELIVERED: 5,
    Terminal.BLACKHOLED: 4,
    Terminal.METER_BLOCKED: 3,
    Terminal.NO_ROUTE: 2,
    Terminal.LOOPED: 1,
    Terminal.NO_MATCH: 0,
}

#: Below this many concurrent flows the scalar solver is faster than
#: paying NumPy array-construction overhead.
_VECTOR_THRESHOLD = 48

#: Rate changes smaller than this (bps) don't trigger re-accrual.
_RATE_EPS = 1e-6

#: Valid values for the ``solver`` engine parameter.
SOLVER_MODES = ("incremental", "full", "vector")

#: Header fields a route-cache key may project onto.
_HEADER_FIELD_NAMES = tuple(
    f.name for f in dataclasses.fields(HeaderFields)
)

#: Route-cache entries are dropped wholesale beyond this many classes.
_ROUTE_CACHE_MAX = 4096


class FlowLevelEngine:
    """Drives flows through OpenFlow pipelines on a shared kernel.

    Parameters
    ----------
    sim:
        The shared discrete-event kernel.
    topology:
        The network; every switch must have a pipeline attached before
        flows arrive (see :func:`repro.openflow.switch.attach_pipeline`).
    control:
        Optional control-plane channel.  Needs ``deliver_packet_in(msg)``
        returning an optional list of output port numbers (packet-out),
        ``deliver_port_status(msg)``, and
        ``deliver_flow_removed_entry(...)``.
    max_hops:
        Per-branch hop guard against forwarding loops.
    incremental:
        Deprecated alias: ``True`` forces ``solver="incremental"``,
        ``False`` forces ``solver="full"``.  Prefer ``solver``.
    mean_packet_bytes:
        Fluid-to-packet conversion factor for packet counters.
    solver:
        Rate-solver strategy.  ``"incremental"`` (default) re-solves
        only the link-sharing components an event touched;  ``"full"``
        re-solves every component through the same kernel (reference
        mode — bitwise-identical rates, no reuse);  ``"vector"`` keeps
        the flat slot-array solve over all active flows.
    route_cache:
        Reuse pipeline walks across flows whose headers are equivalent
        under the installed rules (invalidated by table versions and
        link state changes).
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        control: Optional[object] = None,
        max_hops: int = 64,
        incremental: Optional[bool] = None,
        mean_packet_bytes: int = 1000,
        solver: Optional[str] = None,
        route_cache: bool = True,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.control = control
        self.max_hops = max_hops
        self.mean_packet_bytes = mean_packet_bytes
        if solver is None:
            if incremental is None:
                solver = "incremental"
            else:
                solver = "incremental" if incremental else "full"
        if solver not in SOLVER_MODES:
            raise SimulationError(
                f"solver must be one of {SOLVER_MODES}, got {solver!r}"
            )
        self.solver_mode = solver
        self.flows: Dict[int, Flow] = {}
        self.active: Dict[int, Flow] = {}
        self._completions: Dict[int, FlowCompletion] = {}
        self._solver = IncrementalSolver() if solver != "vector" else None
        #: Back-compat alias (ablation E6 reads ``last_scope`` here).
        self._incremental = self._solver
        # Routing cache: header-class key -> (route, pipeline version
        # deps, link epoch).  None when disabled.
        self._route_cache: Optional[Dict[Tuple, Tuple[FlowRoute, Tuple, int]]] = (
            {} if route_cache else None
        )
        self._link_epoch = 0
        # Cache-key projection: which header fields the installed rules
        # reference, memoised on the global pipeline version sum.
        self._key_fields: Optional[Tuple[str, ...]] = None
        self._key_fields_version = -1
        # Pipelines consulted by the walk in progress: dpid -> version
        # at first lookup (used to build cache deps and to refuse
        # caching walks that raced a rule change).
        self._walk_dpids: Dict[int, int] = {}
        self._dirty_dpids: Set[int] = set()
        self._reroute_pending = False
        self._in_walk = False
        # Asynchronous packet-outs: (flow_id, dpid, in_port) -> ports.
        # Consumed once by the next walk, emulating the buffered packet a
        # real switch would release on PacketOut.
        self._packet_out_hints: Dict[Tuple[int, int, int], List[int]] = {}
        # Per-flow lazy accrual timestamps.
        self._accrued: Dict[int, float] = {}
        # Link-direction registry for the vectorized solver.
        self._dir_index: Dict[LinkDirection, int] = {}
        self._dir_list: List[LinkDirection] = []
        self._dir_caps = np.zeros(64)
        # External demands (hybrid foreground coupling): opaque key ->
        # registered direction indices / last solved rate, plus the
        # per-direction share of ``allocated_bps`` owed to externals so
        # ``background_load`` can report engine-owned load alone.
        self._external_links: Dict[Hashable, List[int]] = {}
        self._external_rates: Dict[Hashable, float] = {}
        self._external_on_dir: Dict[int, float] = {}
        # Probe walks are observational: no packet-ins, no controller.
        self._probing = False
        # Per-flow cached solver inputs (rebuilt on route changes).
        self._flow_links: Dict[int, List[int]] = {}
        self._flow_eff_demand: Dict[int, float] = {}
        # Slot-based persistent solver arrays: each active flow owns a
        # slot in demand/weight/rate arrays plus an incidence segment in
        # the append-only (flow, link) pair arrays.  Dead segments are
        # re-pointed at reserved slot 0 (demand 0, frozen instantly) and
        # reclaimed by periodic compaction, so per-event work is
        # O(changed flows) + vectorized O(nnz).
        self._slot_of: Dict[int, int] = {}
        self._slot_flow: List[Optional[Flow]] = [None]  # slot 0 reserved
        self._free_slots: List[int] = []
        self._arr_demand = np.zeros(64)
        self._arr_weight = np.ones(64)
        self._arr_rate = np.zeros(64)
        self._inc_flow = np.zeros(256, dtype=np.intp)
        self._inc_link = np.zeros(256, dtype=np.intp)
        self._inc_len = 0
        self._inc_dead = 0
        self._seg_of: Dict[int, Tuple[int, int]] = {}
        #: Observers: callables ``(event_name, flow)`` for 'arrival',
        #: 'delivered', 'undelivered', 'completed', 'ended', 'rerouted'.
        self.observers: List[Callable[[str, Flow], None]] = []
        # Telemetry (off by default; see repro.telemetry).  The bus is
        # held privately and exposed through the ``trace_bus`` property
        # so assignment also reaches the owned solver.
        self._trace_bus = None
        #: Per-phase profiler or None; the engine charges "solve" and
        #: "route" (both inside the kernel's inclusive "dispatch").
        self.profiler = None
        # Aggregate statistics.
        self.stats = {
            "arrivals": 0,
            "delivered": 0,
            "undelivered": 0,
            "completed": 0,
            "ended": 0,
            "reroutes": 0,
            "packet_ins": 0,
            "rate_solves": 0,
            "route_cache_hits": 0,
            "route_cache_misses": 0,
        }

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    @property
    def trace_bus(self):
        """Structured trace sink (or None); assignment propagates to the
        owned incremental solver so no caller has to reach inside."""
        return self._trace_bus

    @trace_bus.setter
    def trace_bus(self, bus) -> None:
        self._trace_bus = bus
        if self._solver is not None:
            self._solver.trace_bus = bus

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(self, flow: Flow) -> Flow:
        """Schedule a flow to start at ``flow.start_time``."""
        if flow.flow_id in self.flows:
            raise SimulationError(f"flow {flow.flow_id} submitted twice")
        if flow.start_time < self.sim.now:
            raise SimulationError(
                f"flow {flow.flow_id} starts at {flow.start_time} "
                f"before now={self.sim.now}"
            )
        self.flows[flow.flow_id] = flow
        self.sim.schedule(FlowArrival(flow.start_time, self, flow))
        return flow

    def submit_all(self, flows: Iterable[Flow]) -> List[Flow]:
        """Schedule a batch of flows (a traffic-matrix worth of events)."""
        return [self.submit(f) for f in flows]

    def stop_flow(self, flow: Flow) -> None:
        """Terminate a continuous flow immediately."""
        if flow.state is FlowState.ACTIVE or flow.state is FlowState.BLOCKED:
            self.on_end(flow)

    def fail_link_at(self, time: float, a: str, b: str) -> None:
        """Schedule a link failure input event."""
        self.sim.schedule(LinkFailure(time, self, a, b))

    def restore_link_at(self, time: float, a: str, b: str) -> None:
        """Schedule a link recovery input event."""
        self.sim.schedule(LinkRecovery(time, self, a, b))

    def notify_rules_changed(self, dpid: int) -> None:
        """Called by the control channel after southbound state changes.

        Coalesces into one re-route sweep at the current instant; flows
        mid-walk handle rule changes inline instead.
        """
        self._dirty_dpids.add(dpid)
        if self._in_walk or self._reroute_pending:
            return
        self._reroute_pending = True
        self.sim.schedule(RerouteSweep(self.sim.now, self))

    def apply_packet_out(self, message, ports: List[int]) -> None:
        """Called by the channel when an asynchronous packet-out arrives:
        record the forwarding hint and wake blocked flows."""
        if message.flow_id is None:
            return
        self._packet_out_hints[
            (message.flow_id, message.dpid, message.in_port)
        ] = list(ports)
        self.notify_rules_changed(message.dpid)

    def enable_entry_expiry(self, interval: float = 1.0) -> None:
        """Periodically expire timed-out flow entries, emitting
        FlowRemoved messages to the control plane."""
        self.sim.every(interval, self._expire_tick)

    def sync_statistics(self, now: Optional[float] = None) -> None:
        """Bring every counter up to ``now`` (monitoring/stats reads)."""
        t = self.sim.now if now is None else now
        for flow in self.active.values():
            self._accrue_flow(flow, t)

    def finish(self) -> None:
        """Accrue statistics up to the current instant (call after run)."""
        self.sync_statistics()

    # ------------------------------------------------------------------
    # External demands (hybrid foreground coupling)
    # ------------------------------------------------------------------
    def set_external_demand(
        self,
        key: Hashable,
        demand_bps: float,
        directions: Iterable[LinkDirection],
        pinned: bool = False,
        weight: float = 1.0,
    ) -> None:
        """Register (or update) a demand that competes for bandwidth but
        is not a flow this engine moves — e.g. a packet-level foreground
        flow in the hybrid engine.  ``pinned`` demands are granted off
        the top before max-min filling (inelastic traffic); unpinned
        ones share fairly with engine flows.  The solved rate is
        readable via :meth:`external_rate` after :meth:`recompute_rates`.
        """
        if self._solver is None:
            raise SimulationError(
                'external demands require an indexed solver '
                '(solver="vector" is unsupported)'
            )
        indices = [
            self._register_direction(d) for d in directions if d.up
        ]
        self._external_links[key] = indices
        self._solver.upsert(
            FlowDemand(key, demand_bps, indices, weight=weight, pinned=pinned)
        )

    def clear_external_demand(self, key: Hashable) -> None:
        """Drop a previously registered external demand."""
        if self._external_links.pop(key, None) is None:
            return
        self._external_rates.pop(key, None)
        if self._solver is not None:
            self._solver.remove(key)

    def external_rate(self, key: Hashable) -> float:
        """Last solved rate for an external demand (bps; 0.0 unknown)."""
        return self._external_rates.get(key, 0.0)

    def recompute_rates(self) -> None:
        """Re-solve rates now (public hook: callers batching external-
        demand updates invoke this once afterwards)."""
        self._recompute(set())

    def background_load(self, direction: LinkDirection) -> float:
        """This engine's own allocated load on a direction (bps),
        excluding external-demand contributions — the residual-capacity
        input for hybrid packet queues."""
        index = self._dir_index.get(direction)
        if index is None:
            return 0.0
        load = direction.allocated_bps - self._external_on_dir.get(index, 0.0)
        return max(0.0, load)

    def probe_route(self, flow: Flow) -> FlowRoute:
        """Walk a flow through the current pipelines without side
        effects: no packet-ins are raised, no state is mutated.  Used by
        the hybrid engine to discover which links a packet-level
        foreground flow crosses."""
        self._probing = True
        try:
            return self._walk(flow)
        finally:
            self._probing = False

    @property
    def active_flows(self) -> List[Flow]:
        return list(self.active.values())

    def summary(self) -> dict:
        """Aggregate outcome statistics (copies the counters)."""
        out = dict(self.stats)
        out["active"] = len(self.active)
        out["total_flows"] = len(self.flows)
        out["bytes_sent"] = sum(f.bytes_sent for f in self.flows.values())
        out["bytes_delivered"] = sum(f.bytes_delivered for f in self.flows.values())
        out["bytes_dropped"] = sum(f.bytes_dropped for f in self.flows.values())
        return out

    def engine_stats(self) -> dict:
        """Engine/solver internals for run diagnostics.

        Deterministic for a given workload (no wall-clock content), so
        it is safe to include in byte-compared JSON reports.
        """
        out = {
            "engine": "flow",
            "solver_mode": self.solver_mode,
            "route_cache_enabled": self._route_cache is not None,
            "route_cache_hits": self.stats["route_cache_hits"],
            "route_cache_misses": self.stats["route_cache_misses"],
            "rate_solves": self.stats["rate_solves"],
            "reroutes": self.stats["reroutes"],
            "packet_ins": self.stats["packet_ins"],
        }
        if self._solver is not None:
            out["solver"] = dict(self._solver.stats)
        if self.profiler is not None:
            # Wall-clock content: only present when profiling was
            # explicitly enabled, so default reports stay deterministic.
            out["profile"] = self.profiler.snapshot()
        return out

    # ------------------------------------------------------------------
    # Accrual: lazy fluid statistics
    # ------------------------------------------------------------------
    def _accrue_flow(self, flow: Flow, now: float) -> None:
        """Charge a flow's traffic since its last accrual at the current
        rate into flow, port, entry, group, and meter counters."""
        last = self._accrued.get(flow.flow_id)
        if last is None or now <= last:
            return
        dt = now - last
        self._accrued[flow.flow_id] = now
        route = flow.route
        if route is None:
            return
        rate = flow.rate_bps
        sent = rate * dt / 8.0
        if sent > 0:
            flow.bytes_sent += sent
            if route.delivered:
                flow.bytes_delivered += sent
            sent_int = int(sent)
            packets = max(1, int(sent / self.mean_packet_bytes)) if sent >= 1 else 0
            for direction in route.directions:
                direction.src_port.tx_bytes += sent_int
                direction.src_port.tx_packets += packets
                direction.dst_port.rx_bytes += sent_int
                direction.dst_port.rx_packets += packets
            for entry in route.entries:
                entry.account(sent_int, packets, now=now)
            for group, index in route.group_hits:
                group.account(index, sent_int)
        if not flow.elastic and flow.demand_bps > rate:
            flow.bytes_dropped += (flow.demand_bps - rate) * dt / 8.0
        for dpid, meter_id in route.meter_ids:
            pipeline = self._pipeline_by_dpid(dpid)
            if pipeline is not None and meter_id in pipeline.meters:
                offered = flow.demand_bps if not flow.elastic else rate
                pipeline.meters.get(meter_id).account_fluid(offered, dt)

    def _pipeline_by_dpid(self, dpid: int) -> Optional[OpenFlowPipeline]:
        try:
            return self.topology.switch_by_dpid(dpid).pipeline
        except TopologyError:
            return None

    # ------------------------------------------------------------------
    # Event handlers (public: events.py and the fault injector
    # drive the engine through these)
    # ------------------------------------------------------------------
    def on_arrival(self, flow: Flow) -> None:
        now = self.sim.now
        self.stats["arrivals"] += 1
        self._accrued[flow.flow_id] = now
        self._route(flow)
        if flow.duration_s is not None:
            self.sim.schedule(FlowEnd(now + flow.duration_s, self, flow))
        self._notify("arrival", flow)
        self._recompute({flow.flow_id})

    def on_completion(self, flow: Flow) -> None:
        now = self.sim.now
        if flow.state is not FlowState.ACTIVE or flow.size_bytes is None:
            return
        self._accrue_flow(flow, now)
        remaining = flow.remaining_bytes
        if remaining is not None and remaining > 1e-3:
            # Rates changed since this event was scheduled; reschedule.
            self._schedule_completion(flow)
            return
        flow.bytes_sent = float(flow.size_bytes)
        flow.state = FlowState.COMPLETED
        flow.end_time = now
        self._retire(flow)
        self.stats["completed"] += 1
        self._notify("completed", flow)
        self._recompute({flow.flow_id})

    def on_end(self, flow: Flow) -> None:
        if flow.finished:
            return
        self._accrue_flow(flow, self.sim.now)
        flow.state = FlowState.ENDED
        flow.end_time = self.sim.now
        self._retire(flow)
        self._cancel_completion(flow)
        self.stats["ended"] += 1
        self._notify("ended", flow)
        self._recompute({flow.flow_id})

    def _retire(self, flow: Flow) -> None:
        self.active.pop(flow.flow_id, None)
        self._completions.pop(flow.flow_id, None)
        self._accrued.pop(flow.flow_id, None)
        self._flow_links.pop(flow.flow_id, None)
        self._flow_eff_demand.pop(flow.flow_id, None)
        if self._solver is not None:
            self._solver.remove(flow.flow_id)
        slot = self._slot_of.pop(flow.flow_id, None)
        if slot is not None:
            self._kill_segment(flow.flow_id)
            self._slot_flow[slot] = None
            self._arr_demand[slot] = 0.0
            self._arr_weight[slot] = 1.0
            self._arr_rate[slot] = 0.0
            self._free_slots.append(slot)

    def on_link_state(self, a: str, b: str, up: bool) -> None:
        if up:
            link = self.topology.restore_link(a, b)
        else:
            link = self.topology.fail_link(a, b)
        # Any cached route may cross the flipped link (coarse but safe).
        self._link_epoch += 1
        # Registered capacities can drift (e.g. a degraded link model);
        # refresh them and mark changed links dirty for the solver.
        for index, direction in enumerate(self._dir_list):
            capacity = direction.capacity_bps
            if self._dir_caps[index] != capacity:
                self._dir_caps[index] = capacity
                if self._solver is not None:
                    self._solver.touch_link(index)
        # Tell the controller about both switch endpoints.
        for port in (link.port_a, link.port_b):
            node = port.node
            if isinstance(node, Switch) and self.control is not None:
                self.control.deliver_port_status(
                    PortStatus(
                        dpid=node.dpid,
                        port_no=port.number,
                        reason=PortStatusReason.MODIFY,
                        link_up=up,
                    )
                )
        # Re-route every flow crossing the link (down) or every
        # non-delivered flow (up: a better path may exist now).
        affected: Set[int] = set()
        for flow in self.active.values():
            route = flow.route
            if route is None:
                continue
            if not up and any(d.link is link for d in route.directions):
                affected.add(flow.flow_id)
            elif up and not route.delivered:
                affected.add(flow.flow_id)
        self._reroute_flows(affected)
        self._recompute(affected)

    def on_reroute_sweep(self) -> None:
        self._reroute_pending = False
        dirty = self._dirty_dpids
        self._dirty_dpids = set()
        affected: Set[int] = set()
        for flow in self.active.values():
            route = flow.route
            if route is None or flow.state is FlowState.BLOCKED:
                affected.add(flow.flow_id)
            elif not route.delivered:
                affected.add(flow.flow_id)
            elif any(hop[0] in dirty for hop in route.switch_hops):
                affected.add(flow.flow_id)
        changed = self._reroute_flows(affected)
        if changed:
            self._recompute(changed)

    def _expire_tick(self, sim: Simulator, t: float) -> None:
        any_removed = False
        for switch in self.topology.switches:
            pipeline = switch.pipeline
            if pipeline is None:
                continue
            for table_id, entry, reason in pipeline.expire(t):
                any_removed = True
                if self.control is not None:
                    self.control.deliver_flow_removed_entry(
                        switch.dpid, table_id, entry, reason, now=t
                    )
        if any_removed:
            # Routes relying on expired rules must be recomputed.
            for flow in self.active.values():
                if flow.route is not None:
                    self._dirty_dpids.update(h[0] for h in flow.route.switch_hops)
            self.notify_rules_changed(-1)

    # ------------------------------------------------------------------
    # Routing: walking the pipelines
    # ------------------------------------------------------------------
    def _route(self, flow: Flow) -> None:
        """(Re)walk a flow through the data plane and update its state."""
        profiler = self.profiler
        if profiler is None:
            self._route_inner(flow)
            return
        _t0 = _time.perf_counter()  # repro: noqa[DET001] - profiler timing; never feeds sim state
        try:
            self._route_inner(flow)
        finally:
            profiler.add("route", _time.perf_counter() - _t0)  # repro: noqa[DET001] - profiler timing; never feeds sim state

    def _route_inner(self, flow: Flow) -> None:
        # Charge traffic at the old rate/route before it changes.
        self._accrue_flow(flow, self.sim.now)
        route: Optional[FlowRoute] = None
        cache_key: Optional[Tuple] = None
        if self._route_cache is not None and not self._flow_hinted(flow):
            cache_key = self._route_cache_key(flow)
            route = self._route_cache_lookup(cache_key)
        if route is None:
            packet_ins_before = self.stats["packet_ins"]
            route = self._walk(flow)
            if cache_key is not None:
                self._route_cache_store(cache_key, route, packet_ins_before)
        flow.route = route
        self._cache_solver_inputs(flow)
        previously_counted = flow.state in (FlowState.ACTIVE, FlowState.BLOCKED)
        if route.delivered:
            flow.state = FlowState.ACTIVE
            if not previously_counted:
                self.stats["delivered"] += 1
            self._notify("delivered", flow)
        elif route.punted and not route.delivered:
            # Waiting for the control plane (asynchronous packet-in).
            flow.state = FlowState.BLOCKED
        else:
            # Traffic still leaves the source and burns links up to the
            # drop point, so the flow stays ACTIVE but undelivered.
            flow.state = FlowState.ACTIVE
            if not previously_counted:
                self.stats["undelivered"] += 1
            self._notify("undelivered", flow)
        self.active[flow.flow_id] = flow
        self._sync_solver(flow)

    def _sync_solver(self, flow: Flow) -> None:
        """Push a flow's (possibly changed) solver inputs into the
        persistent incremental index.  Blocked flows carry no traffic
        and leave the solver entirely."""
        if self._solver is None:
            return
        if flow.state is FlowState.BLOCKED:
            self._solver.remove(flow.flow_id)
            self._set_rate(flow, 0.0)
            return
        self._solver.upsert(
            FlowDemand(
                flow.flow_id,
                self._flow_eff_demand[flow.flow_id],
                self._flow_links[flow.flow_id],
                weight=flow.weight,
            )
        )

    # ------------------------------------------------------------------
    # Route cache: header-equivalence-class keyed pipeline walks
    # ------------------------------------------------------------------
    def _flow_hinted(self, flow: Flow) -> bool:
        """True when a pending packet-out hint targets this flow (the
        walk must run to consume the buffered packet)."""
        if not self._packet_out_hints:
            return False
        return any(key[0] == flow.flow_id for key in self._packet_out_hints)

    def _route_cache_key(self, flow: Flow) -> Tuple:
        """(src, dst, header projection) identifying flows the installed
        rules cannot distinguish.  Projects the headers onto the fields
        any installed match references; falls back to the full header
        tuple while SELECT/ALL groups exist (their bucket choice hashes
        every field)."""
        fields = self._match_referenced_fields()
        headers = flow.headers
        if fields is not None:
            headers = HeaderFields(
                **{name: getattr(headers, name) for name in fields}
            )
        return (flow.src, flow.dst, headers)

    def _match_referenced_fields(self) -> Optional[Tuple[str, ...]]:
        """Header fields referenced by any installed match, memoised on
        the global pipeline version sum; None means "use full headers"
        (a group's hash may consult any field)."""
        total = 0
        pipelines = []
        for switch in self.topology.switches:
            pipeline = switch.pipeline
            if pipeline is not None:
                pipelines.append(pipeline)
                total += pipeline.version
        if total == self._key_fields_version:
            return self._key_fields
        referenced: Set[str] = set()
        full_headers = False
        for pipeline in pipelines:
            if len(pipeline.groups):
                full_headers = True
                break
            for table in pipeline.tables:
                for entry in table:
                    match = entry.match
                    for name in _HEADER_FIELD_NAMES:
                        if getattr(match, name) is not None:
                            referenced.add(name)
        self._key_fields_version = total
        self._key_fields = None if full_headers else tuple(sorted(referenced))
        return self._key_fields

    def _route_cache_lookup(self, key: Tuple) -> Optional[FlowRoute]:
        cache = self._route_cache
        assert cache is not None
        entry = cache.get(key)
        if entry is not None:
            route, deps, epoch = entry
            if epoch == self._link_epoch and all(
                (pipeline := self._pipeline_by_dpid(dpid)) is not None
                and pipeline.version == version
                for dpid, version in deps
            ):
                self.stats["route_cache_hits"] += 1
                if self._trace_bus is not None:
                    self._trace_bus.emit("engine.route_cache", hit=True)
                return self._clone_route(route)
            del cache[key]
        self.stats["route_cache_misses"] += 1
        if self._trace_bus is not None:
            self._trace_bus.emit("engine.route_cache", hit=False)
        return None

    def _route_cache_store(
        self, key: Tuple, route: FlowRoute, packet_ins_before: int
    ) -> None:
        """Cache a completed walk unless it depended on transient state:
        a punt awaiting the controller, a packet-in raised mid-walk, or
        a rule set that changed underneath the walk."""
        if route.punted or self.stats["packet_ins"] != packet_ins_before:
            return
        for dpid, version in self._walk_dpids.items():
            pipeline = self._pipeline_by_dpid(dpid)
            if pipeline is None or pipeline.version != version:
                return
        cache = self._route_cache
        assert cache is not None
        if len(cache) >= _ROUTE_CACHE_MAX:
            cache.clear()
        cache[key] = (
            self._clone_route(route),
            tuple(self._walk_dpids.items()),
            self._link_epoch,
        )

    @staticmethod
    def _clone_route(route: FlowRoute) -> FlowRoute:
        """Copy a route's list containers; the FlowEntry/LinkDirection/
        Group objects stay shared so accounting lands on the real
        counters, exactly as a fresh walk matching the same rules."""
        return FlowRoute(
            directions=list(route.directions),
            switch_hops=list(route.switch_hops),
            terminal=route.terminal,
            meter_ids=list(route.meter_ids),
            punted=route.punted,
            entries=list(route.entries),
            group_hits=list(route.group_hits),
        )

    def _cache_solver_inputs(self, flow: Flow) -> None:
        """Rebuild the flow's link-index list, effective demand, and its
        slot in the persistent solver arrays."""
        route = flow.route
        if route is None:
            self._flow_links[flow.flow_id] = []
            self._flow_eff_demand[flow.flow_id] = 0.0
            if self._solver is None:
                self._write_slot(flow, 0.0, [])
            return
        indices: List[int] = []
        for direction in route.directions:
            if not direction.up:
                continue
            indices.append(self._register_direction(direction))
        self._flow_links[flow.flow_id] = indices
        demand = self._effective_demand(flow)
        self._flow_eff_demand[flow.flow_id] = demand
        if self._solver is None:
            self._write_slot(flow, demand, indices)

    def _register_direction(self, direction: LinkDirection) -> int:
        """Index a link direction for the solver, recording capacity."""
        index = self._dir_index.get(direction)
        if index is None:
            index = len(self._dir_list)
            self._dir_index[direction] = index
            self._dir_list.append(direction)
            if index >= self._dir_caps.size:
                grown = np.zeros(self._dir_caps.size * 2)
                grown[: self._dir_caps.size] = self._dir_caps
                self._dir_caps = grown
            self._dir_caps[index] = direction.capacity_bps
        return index

    # ------------------------------------------------------------------
    # Slot array maintenance
    # ------------------------------------------------------------------
    def _write_slot(self, flow: Flow, demand: float, links: List[int]) -> None:
        slot = self._slot_of.get(flow.flow_id)
        if slot is None:
            if self._free_slots:
                slot = self._free_slots.pop()
            else:
                slot = len(self._slot_flow)
                self._slot_flow.append(None)
                if slot >= self._arr_demand.size:
                    self._grow_slot_arrays()
            self._slot_of[flow.flow_id] = slot
        self._slot_flow[slot] = flow
        self._arr_demand[slot] = demand
        self._arr_weight[slot] = flow.weight
        self._arr_rate[slot] = flow.rate_bps
        self._kill_segment(flow.flow_id)
        if links:
            self._append_segment(flow.flow_id, slot, links)

    def _grow_slot_arrays(self) -> None:
        size = self._arr_demand.size * 2
        for name in ("_arr_demand", "_arr_weight", "_arr_rate"):
            old_arr = getattr(self, name)
            grown = np.zeros(size) if name != "_arr_weight" else np.ones(size)
            grown[: old_arr.size] = old_arr
            setattr(self, name, grown)

    def _append_segment(self, flow_id: int, slot: int, links: List[int]) -> None:
        length = len(links)
        while self._inc_len + length > self._inc_flow.size:
            for name in ("_inc_flow", "_inc_link"):
                old_arr = getattr(self, name)
                grown = np.zeros(old_arr.size * 2, dtype=np.intp)
                grown[: old_arr.size] = old_arr
                setattr(self, name, grown)
        start = self._inc_len
        self._inc_flow[start : start + length] = slot
        self._inc_link[start : start + length] = links
        self._inc_len += length
        self._seg_of[flow_id] = (start, length)

    def _kill_segment(self, flow_id: int) -> None:
        segment = self._seg_of.pop(flow_id, None)
        if segment is None:
            return
        start, length = segment
        # Re-point at the reserved dead slot; compaction reclaims later.
        self._inc_flow[start : start + length] = 0
        self._inc_dead += length
        if self._inc_dead > max(4096, self._inc_len - self._inc_dead):
            self._compact_segments()

    def _compact_segments(self) -> None:
        """Rebuild the incidence arrays from live flows only."""
        flow_parts: List[np.ndarray] = []
        link_parts: List[np.ndarray] = []
        new_segments: Dict[int, Tuple[int, int]] = {}
        cursor = 0
        for flow_id, (start, length) in self._seg_of.items():
            flow_parts.append(self._inc_flow[start : start + length].copy())
            link_parts.append(self._inc_link[start : start + length].copy())
            new_segments[flow_id] = (cursor, length)
            cursor += length
        size = max(256, 2 * cursor)
        self._inc_flow = np.zeros(size, dtype=np.intp)
        self._inc_link = np.zeros(size, dtype=np.intp)
        if flow_parts:
            self._inc_flow[:cursor] = np.concatenate(flow_parts)
            self._inc_link[:cursor] = np.concatenate(link_parts)
        self._inc_len = cursor
        self._inc_dead = 0
        self._seg_of = new_segments

    def _reroute_flows(self, flow_ids: Set[int]) -> Set[int]:
        """Re-walk the given flows; returns ids whose route changed."""
        changed: Set[int] = set()
        # Sorted: the re-walk order decides observer-event order and
        # route-cache population, which must not borrow set hashing.
        for flow_id in sorted(flow_ids):
            flow = self.active.get(flow_id)
            if flow is None:
                continue
            old_key = self._route_key(flow.route)
            self._route(flow)
            if self._route_key(flow.route) != old_key:
                flow.reroutes += 1
                self.stats["reroutes"] += 1
                changed.add(flow_id)
                self._notify("rerouted", flow)
        return changed

    @staticmethod
    def _route_key(route: Optional[FlowRoute]) -> Tuple:
        if route is None:
            return ()
        return (
            route.terminal,
            tuple(d.key for d in route.directions),
        )

    def _walk(self, flow: Flow) -> FlowRoute:
        """Push the flow's headers through pipelines from its source."""
        self._in_walk = True
        self._walk_dpids = {}
        try:
            return self._walk_inner(flow)
        finally:
            self._in_walk = False

    def _walk_inner(self, flow: Flow) -> FlowRoute:
        route = FlowRoute()
        src = self.topology.host(flow.src)
        uplink = src.uplink_port
        if not (uplink.up and uplink.link and uplink.link.up):
            route.terminal = Terminal.NO_ROUTE
            return route
        first_dir = uplink.link.direction_from(uplink)
        peer = uplink.peer
        assert peer is not None
        route.directions.append(first_dir)
        # Branch queue: (node, in_port_number, headers, depth)
        queue = deque([(peer.node, peer.number, flow.headers, 0)])
        visited: Set[Tuple[str, int, int]] = set()
        best = Terminal.NO_MATCH

        def consider(terminal: Terminal) -> None:
            nonlocal best
            if _TERMINAL_RANK[terminal] > _TERMINAL_RANK[best]:
                best = terminal

        while queue:
            node, in_port, headers, depth = queue.popleft()
            if isinstance(node, Host):
                if node.name == flow.dst:
                    consider(Terminal.DELIVERED)
                # Frames reaching other hosts are discarded silently.
                continue
            if not isinstance(node, Switch) or node.pipeline is None:
                consider(Terminal.NO_ROUTE)
                continue
            if depth >= self.max_hops:
                consider(Terminal.LOOPED)
                continue
            state_key = (node.name, in_port, hash(headers))
            if state_key in visited:
                consider(Terminal.LOOPED)
                continue
            visited.add(state_key)
            self._walk_dpids.setdefault(node.dpid, node.pipeline.version)
            result = node.pipeline.process(headers, in_port)
            route.entries.extend(result.matched_entries)
            route.group_hits.extend(result.group_hits)
            for meter_id in result.meter_ids:
                route.meter_ids.append((node.dpid, meter_id))
            out_ports = list(result.out_ports)
            if result.to_controller or result.miss and self._punts_on_miss(node):
                extra = self._raise_packet_in(node, in_port, headers, flow, result)
                if extra is None:
                    extra = self._packet_out_hints.pop(
                        (flow.flow_id, node.dpid, in_port), None
                    )
                if extra is None:
                    route.punted = True
                else:
                    # Controller answered synchronously: re-process once
                    # (rules may be installed now) or use its packet-out.
                    retry = node.pipeline.process(headers, in_port)
                    if retry.matched_entries and not retry.to_controller:
                        route.entries.extend(retry.matched_entries)
                        route.group_hits.extend(retry.group_hits)
                        for meter_id in retry.meter_ids:
                            route.meter_ids.append((node.dpid, meter_id))
                        result = retry
                        out_ports = list(retry.out_ports)
                        headers_after = retry.headers or headers
                    else:
                        out_ports = self._expand_reserved(node, in_port, extra)
                        headers_after = headers
                    if result.dropped:
                        consider(Terminal.BLACKHOLED)
                        continue
                    route.switch_hops.append((node.dpid, in_port, tuple(out_ports)))
                    self._fan_out(
                        node,
                        in_port,
                        out_ports,
                        headers_after,
                        depth,
                        route,
                        queue,
                        consider,
                    )
                    continue
            if result.dropped:
                consider(Terminal.BLACKHOLED)
                continue
            if result.miss:
                consider(Terminal.NO_MATCH)
                continue
            headers_after = result.headers or headers
            route.switch_hops.append((node.dpid, in_port, tuple(out_ports)))
            self._fan_out(
                node, in_port, out_ports, headers_after, depth, route, queue, consider
            )
        route.terminal = best
        return route

    def _fan_out(
        self,
        node: Switch,
        in_port: int,
        out_ports: List[int],
        headers: HeaderFields,
        depth: int,
        route: FlowRoute,
        queue,
        consider: Callable[[Terminal], None],
    ) -> None:
        forwarded = False
        for number in out_ports:
            port = node.ports.get(number)
            if port is None or not port.connected or not port.up or not port.link.up:
                consider(Terminal.NO_ROUTE)
                continue
            direction = port.link.direction_from(port)
            if direction not in route.directions:
                route.directions.append(direction)
            peer = port.peer
            assert peer is not None
            queue.append((peer.node, peer.number, headers, depth + 1))
            forwarded = True
        if not forwarded and not out_ports:
            consider(Terminal.NO_MATCH)

    @staticmethod
    def _expand_reserved(node: Switch, in_port: int, ports: List[int]) -> List[int]:
        """Expand reserved port numbers (FLOOD) in a packet-out list."""
        from ..openflow.action import PORT_FLOOD

        expanded: List[int] = []
        for number in ports:
            if number == PORT_FLOOD:
                expanded.extend(node.pipeline.flood_ports(in_port))
            else:
                expanded.append(number)
        return expanded

    def _punts_on_miss(self, switch: Switch) -> bool:
        """Whether a table miss should raise a packet-in.

        OpenFlow 1.3 drops on miss by default; controllers opt in by
        installing explicit table-miss entries with ToController, which
        the pipeline reports via ``to_controller``, so this returns
        False.  Kept as a hook for OF 1.0-style semantics.
        """
        return False

    def _raise_packet_in(
        self,
        switch: Switch,
        in_port: int,
        headers: HeaderFields,
        flow: Flow,
        result: PipelineResult,
    ) -> Optional[List[int]]:
        """Send a packet-in; returns controller packet-out ports when the
        channel is synchronous, or None when asynchronous/absent."""
        if self._probing:
            # Probe walks (see probe_route) must not reach the control
            # plane or perturb counters.
            return None
        self.stats["packet_ins"] += 1
        if self.control is None:
            return None
        message = PacketIn(
            dpid=switch.dpid,
            in_port=in_port,
            reason=(PacketInReason.NO_MATCH if result.miss else PacketInReason.ACTION),
            headers=headers,
            rate_bps=flow.demand_bps,
            size_bytes=flow.size_bytes or 0,
            flow_id=flow.flow_id,
        )
        return self.control.deliver_packet_in(message)

    # ------------------------------------------------------------------
    # Rate computation
    # ------------------------------------------------------------------
    def _effective_demand(self, flow: Flow) -> float:
        demand = flow.demand_bps
        route = flow.route
        if route is None:
            return 0.0
        for dpid, meter_id in route.meter_ids:
            pipeline = self._pipeline_by_dpid(dpid)
            if pipeline is not None and meter_id in pipeline.meters:
                demand = min(demand, pipeline.meters.get(meter_id).rate_bps)
        return demand

    def _recompute(self, changed: Set[int]) -> None:
        """Re-solve max-min rates and reproject completions."""
        profiler = self.profiler
        if profiler is None:
            self._recompute_inner(changed)
            return
        _t0 = _time.perf_counter()  # repro: noqa[DET001] - profiler timing; never feeds sim state
        try:
            self._recompute_inner(changed)
        finally:
            profiler.add("solve", _time.perf_counter() - _t0)  # repro: noqa[DET001] - profiler timing; never feeds sim state

    def _recompute_inner(self, changed: Set[int]) -> None:
        self.stats["rate_solves"] += 1
        now = self.sim.now
        if self._solver is not None:
            self._recompute_indexed(now)
            return
        solvable: List[Flow] = []
        for flow in self.active.values():
            if flow.route is None or flow.state is FlowState.BLOCKED:
                if flow.rate_bps > 0:
                    self._accrue_flow(flow, now)
                self._set_rate(flow, 0.0)
                slot = self._slot_of.get(flow.flow_id)
                if slot is not None:
                    self._arr_demand[slot] = 0.0
            else:
                solvable.append(flow)
        if len(solvable) < _VECTOR_THRESHOLD:
            self._recompute_scalar(solvable, now)
        else:
            self._recompute_vector(now)

    def _recompute_indexed(self, now: float) -> None:
        """Re-solve through the persistent component index.

        ``solver="incremental"`` re-runs the kernel only on components
        an event touched; ``solver="full"`` re-runs it on every
        component.  Either way the kernel sees each component's flows in
        the same (insertion) order, so the rate vectors are bitwise
        identical — incremental mode just skips the redundant work.
        """
        solver = self._solver
        assert solver is not None
        updates = solver.resolve(
            self._dir_caps, full=self.solver_mode == "full"
        )
        dir_list = self._dir_list
        external_on_dir = self._external_on_dir
        # Per-direction totals: only links in re-solved components can
        # have moved; zero them and re-add the fresh contributions.
        for index in solver.last_touched_links:
            dir_list[index].allocated_bps = 0.0
            external_on_dir.pop(index, None)
        flow_links = self._flow_links
        external_links = self._external_links
        for flow_id, rate in updates.items():
            flow = self.active.get(flow_id)
            if flow is None:
                links = external_links.get(flow_id)
                if links is None:  # pragma: no cover - defensive
                    continue
                self._external_rates[flow_id] = rate
                for index in links:
                    dir_list[index].allocated_bps += rate
                    external_on_dir[index] = external_on_dir.get(index, 0.0) + rate
                continue
            self._apply_rate(flow, rate, now)
            for index in flow_links.get(flow_id, ()):
                dir_list[index].allocated_bps += rate

    def _set_rate(self, flow: Flow, rate: float) -> None:
        flow.rate_bps = rate
        slot = self._slot_of.get(flow.flow_id)
        if slot is not None:
            self._arr_rate[slot] = rate

    def _apply_rate(self, flow: Flow, rate: float, now: float) -> None:
        """Set a flow's rate, accruing at the old rate first."""
        if abs(rate - flow.rate_bps) > _RATE_EPS:
            self._accrue_flow(flow, now)
            self._set_rate(flow, rate)
            self._schedule_completion(flow)
        elif flow.flow_id not in self._completions:
            self._schedule_completion(flow)

    def _recompute_scalar(self, flows: List[Flow], now: float) -> None:
        demands: List[FlowDemand] = []
        capacities: Dict[int, float] = {}
        for flow in flows:
            links = self._flow_links[flow.flow_id]
            for index in links:
                capacities[index] = self._dir_list[index].capacity_bps
            demands.append(
                FlowDemand(
                    flow.flow_id,
                    self._flow_eff_demand[flow.flow_id],
                    links,
                    weight=flow.weight,
                )
            )
        alloc = solve(demands, capacities)
        for direction in self._dir_list:
            direction.allocated_bps = 0.0
        for flow in flows:
            rate = alloc.get(flow.flow_id, 0.0)
            self._apply_rate(flow, rate, now)
            for index in self._flow_links[flow.flow_id]:
                self._dir_list[index].allocated_bps += rate

    def _recompute_vector(self, now: float) -> None:
        """Vectorized re-solve over the persistent slot arrays.

        Dead slots (retired flows, blocked flows) carry zero demand and
        freeze instantly in the solver, so the arrays never need eager
        cleanup; compaction bounds the stale-segment overhead.
        """
        num_slots = len(self._slot_flow)
        num_links = len(self._dir_list)
        demand = self._arr_demand[:num_slots]
        weights = self._arr_weight[:num_slots]
        flow_of = self._inc_flow[: self._inc_len]
        link_of = self._inc_link[: self._inc_len]
        capacity = self._dir_caps[:num_links]
        alloc = solve_arrays(demand, capacity, flow_of, link_of, weight=weights)
        # Per-direction totals in one pass.
        totals = np.bincount(link_of, weights=alloc[flow_of], minlength=num_links)
        for index, direction in enumerate(self._dir_list):
            direction.allocated_bps = float(totals[index])
        old_rates = self._arr_rate[:num_slots]
        moved = np.nonzero(np.abs(alloc - old_rates) > _RATE_EPS)[0]
        slot_flow = self._slot_flow
        for slot in moved:
            flow = slot_flow[slot]
            if flow is None:  # pragma: no cover - dead slots stay at 0
                continue
            self._accrue_flow(flow, now)
            rate = float(alloc[slot])
            flow.rate_bps = rate
            self._arr_rate[slot] = rate
            self._schedule_completion(flow)

    def _schedule_completion(self, flow: Flow) -> None:
        """(Re)project the completion event for a volume flow.

        The churn-heavy fast path: an existing projection is moved with
        ``Simulator.reschedule`` (one push; an unchanged completion
        time schedules nothing at all) instead of cancel-and-push, so
        reroute storms cannot fill the heap faster than compaction
        drains it.
        """
        if flow.size_bytes is None or flow.state is not FlowState.ACTIVE:
            return
        # Projection needs fresh byte counters (no-op when already fresh).
        self._accrue_flow(flow, self.sim.now)
        when = flow.projected_completion(self.sim.now)
        if when is None:
            self._cancel_completion(flow)
            return
        when = max(when, self.sim.now)
        existing = self._completions.get(flow.flow_id)
        if existing is not None and not existing.cancelled:
            self._completions[flow.flow_id] = self.sim.reschedule(existing, when)
            return
        event = FlowCompletion(when, self, flow)
        self._completions[flow.flow_id] = event
        self.sim.schedule(event)

    def _cancel_completion(self, flow: Flow) -> None:
        event = self._completions.pop(flow.flow_id, None)
        if event is not None:
            self.sim.cancel(event)

    def _notify(self, name: str, flow: Flow) -> None:
        if self._trace_bus is not None:
            self._trace_bus.emit(
                f"flow.{name}",
                flow=flow.flow_id,
                src=flow.src,
                dst=flow.dst,
                rate_bps=flow.rate_bps,
            )
        for observer in self.observers:
            observer(name, flow)
