"""Flow objects — the unit of traffic in Horse.

The poster: "a data flow is an aggregate of packets with equal values of
the header fields, but with different traffic rates."  A :class:`Flow`
couples such a header tuple with an offered rate (``demand_bps``) and
either a finite volume (``size_bytes``; the flow completes when the
volume drains) or a duration (continuous flows).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

from ..net.link import LinkDirection
from ..openflow.headers import HeaderFields

_FLOW_IDS = itertools.count(1)


def reset_flow_ids() -> None:
    """Rewind the process-global flow-id counter to its import-time
    state (sweep workers isolate jobs this way)."""
    global _FLOW_IDS
    _FLOW_IDS = itertools.count(1)


def advance_flow_ids(minimum: int) -> None:
    """Ensure future flow ids are > ``minimum`` (checkpoint restore
    advances past the snapshot's watermark)."""
    global _FLOW_IDS
    _FLOW_IDS = itertools.count(max(next(_FLOW_IDS), minimum + 1))


class FlowState(Enum):
    """Lifecycle of a flow inside the flow-level engine."""

    PENDING = "pending"  # created, start event not fired yet
    ACTIVE = "active"  # routed; transmitting (delivered or not)
    BLOCKED = "blocked"  # no usable rules; waiting for the control plane
    COMPLETED = "completed"  # finite volume fully drained
    ENDED = "ended"  # continuous flow reached its end time


class Terminal(Enum):
    """How far a routed flow got through the data plane."""

    DELIVERED = "delivered"  # reached its destination host
    BLACKHOLED = "blackholed"  # explicit Drop action (policy)
    NO_MATCH = "no_match"  # table miss with no controller punt
    LOOPED = "looped"  # hop-count guard fired
    NO_ROUTE = "no_route"  # dead port / down link on the rule path
    METER_BLOCKED = "meter_blocked"  # meter rate is zero-effective


@dataclass
class FlowRoute:
    """The data-plane walk taken by a flow (possibly branched by flood).

    Attributes
    ----------
    directions:
        Every link direction the aggregate crosses, access links included.
        Flood branches all contribute; the max-min solver constrains the
        flow by each of them (a replicated aggregate loads every branch).
    switch_hops:
        (dpid, in_port, out_ports) per pipeline traversal, for debugging
        and rule-count accounting.
    terminal:
        The most favourable outcome across branches (delivery wins).
    meter_ids:
        (dpid, meter_id) pairs traversed, used to clamp the flow's demand.
    """

    directions: List[LinkDirection] = field(default_factory=list)
    switch_hops: List[Tuple[int, int, Tuple[int, ...]]] = field(default_factory=list)
    terminal: Terminal = Terminal.NO_MATCH
    meter_ids: List[Tuple[int, int]] = field(default_factory=list)
    punted: bool = False  # a ToController fired somewhere along the walk
    #: FlowEntry objects matched along the walk (for counter accrual).
    entries: list = field(default_factory=list)
    #: (Group, bucket_index) pairs taken (for bucket counter accrual).
    group_hits: list = field(default_factory=list)

    @property
    def delivered(self) -> bool:
        return self.terminal is Terminal.DELIVERED

    @property
    def hop_count(self) -> int:
        return len(self.switch_hops)


@dataclass
class Flow:
    """One traffic aggregate.

    Exactly one of ``size_bytes`` (finite volume) or ``duration_s``
    (continuous for a period; None means until stopped) describes the
    flow's extent.

    Examples
    --------
    >>> from repro.openflow.headers import tcp_flow
    >>> from repro.net import IPv4Address
    >>> hdr = tcp_flow(IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"), 1000, 80)
    >>> f = Flow(headers=hdr, src="h1", dst="h2", demand_bps=1e6, size_bytes=125000)
    >>> f.remaining_bytes
    125000.0
    """

    headers: HeaderFields
    src: str
    dst: str
    demand_bps: float
    size_bytes: Optional[int] = None
    duration_s: Optional[float] = None
    start_time: float = 0.0
    #: Elastic flows (TCP-like) send at their allocated rate; inelastic
    #: flows (UDP-like) keep offering ``demand_bps`` and the excess over
    #: the allocation is accounted as dropped.
    elastic: bool = True
    #: Fairness weight for weighted max-min sharing (QoS classes): under
    #: contention a weight-2 flow gets twice the rate of a weight-1 flow
    #: on the same bottleneck.
    weight: float = 1.0
    flow_id: int = field(default_factory=lambda: next(_FLOW_IDS))

    # --- engine-managed state ---
    state: FlowState = FlowState.PENDING
    route: Optional[FlowRoute] = None
    rate_bps: float = 0.0  # current max-min allocation
    bytes_sent: float = 0.0
    bytes_delivered: float = 0.0
    bytes_dropped: float = 0.0
    end_time: Optional[float] = None  # completion/end timestamp
    reroutes: int = 0

    def __post_init__(self) -> None:
        if self.demand_bps <= 0:
            raise ValueError(f"flow demand must be > 0, got {self.demand_bps}")
        if self.size_bytes is not None and self.size_bytes <= 0:
            raise ValueError(f"flow size must be > 0, got {self.size_bytes}")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ValueError(f"flow duration must be > 0, got {self.duration_s}")
        if self.size_bytes is not None and self.duration_s is not None:
            raise ValueError("a flow is either volume-based or duration-based")
        if self.weight <= 0:
            raise ValueError(f"flow weight must be > 0, got {self.weight}")

    @property
    def remaining_bytes(self) -> Optional[float]:
        """Bytes left to send for volume flows, None for continuous."""
        if self.size_bytes is None:
            return None
        return max(0.0, self.size_bytes - self.bytes_sent)

    @property
    def finished(self) -> bool:
        return self.state in (FlowState.COMPLETED, FlowState.ENDED)

    @property
    def transmitting(self) -> bool:
        """True while the flow offers traffic to the network."""
        return self.state is FlowState.ACTIVE

    @property
    def delivered(self) -> bool:
        return bool(self.route and self.route.delivered)

    @property
    def flow_completion_time(self) -> Optional[float]:
        """FCT for finished volume flows, else None."""
        if self.state is FlowState.COMPLETED and self.end_time is not None:
            return self.end_time - self.start_time
        return None

    def projected_completion(self, now: float) -> Optional[float]:
        """When the remaining volume drains at the current rate, or None
        (continuous flow / zero rate)."""
        remaining = self.remaining_bytes
        if remaining is None:
            return None
        if remaining == 0:
            return now
        if self.rate_bps <= 0:
            return None
        return now + remaining * 8.0 / self.rate_bps

    def __repr__(self) -> str:
        extent = (
            f"size={self.size_bytes}B"
            if self.size_bytes is not None
            else f"dur={self.duration_s}s"
        )
        return (
            f"<Flow {self.flow_id} {self.src}->{self.dst} "
            f"demand={self.demand_bps / 1e6:.3g}Mbps {extent} {self.state.value}>"
        )
