"""Max-min fair bandwidth allocation (progressive filling).

Given a set of flows, each with a demand cap and the set of link
directions it crosses, compute the max-min fair rate vector: rates rise
together until a link saturates or a flow hits its demand; saturated
flows freeze; repeat.  This is the fluid model that lets Horse advance
in flow events instead of packet events.

The module is organized around one *canonical component kernel*:

* :func:`solve_component` — solve one link-sharing connected component
  (scalar progressive filling for small components, the vectorized
  kernel for large ones; the choice depends only on component size, so
  it is deterministic).
* :func:`solve` — full solve: partition the flows into link-sharing
  components and run the kernel on each.  Components are independent
  under max-min fairness, so this is exact.
* :class:`IncrementalSolver` — stateful solver that maintains the
  component partition across flow arrivals/departures/re-routes and
  re-runs the kernel only on *dirty* components, reusing cached rates
  for untouched ones.

Because full and incremental solves run the **same kernel on the same
per-component inputs in the same order**, their results are bitwise
identical — the property the differential suite (``tests/diff``)
asserts.  :func:`solve_arrays` exposes the raw vectorized kernel.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Hashable, Iterable, List, Mapping, Sequence, Set, Tuple

import numpy as np

#: Rates below this (bps) are treated as zero when testing saturation.
EPSILON_BPS = 1e-6

#: Relative slack for saturation/demand tests.  Absolute 1e-6 bps alone
#: misbehaves at 100G-scale capacities, where float64 rounding after a
#: few subtractions already exceeds it; tolerances therefore scale with
#: the quantity compared: ``max(EPSILON_BPS, RELATIVE_EPSILON * x)``.
RELATIVE_EPSILON = 1e-9

#: Components at or above this many flows use the vectorized kernel.
VECTOR_COMPONENT_THRESHOLD = 48


def saturation_eps(capacity: float) -> float:
    """Slack below which a link budget counts as exhausted."""
    return max(EPSILON_BPS, RELATIVE_EPSILON * capacity)


def demand_eps(demand: float) -> float:
    """Slack within which an allocation counts as demand-satisfied."""
    return max(EPSILON_BPS, RELATIVE_EPSILON * demand)


class FlowDemand:
    """Solver-facing view of one flow: an id, a demand, its links, and a
    fairness weight.

    ``links`` are hashable keys with a ``capacity`` mapping supplied to
    the solver, so the solver stays decoupled from topology objects.
    ``weight`` scales the flow's share under contention (weighted
    max-min: the "water level" rises per unit weight).

    ``pinned`` flows are granted their full demand *off the top* before
    progressive filling: their draw is subtracted from the link budgets
    and only the remainder is shared max-min among the elastic flows.
    This models inelastic traffic (e.g. packet-level CBR foreground in
    the hybrid engine) that does not back off under contention.
    """

    __slots__ = ("flow_id", "demand_bps", "links", "weight", "pinned")

    def __init__(
        self,
        flow_id: Hashable,
        demand_bps: float,
        links: Sequence[Hashable],
        weight: float = 1.0,
        pinned: bool = False,
    ) -> None:
        if demand_bps < 0:
            raise ValueError(f"demand must be >= 0, got {demand_bps}")
        if weight <= 0:
            raise ValueError(f"weight must be > 0, got {weight}")
        self.flow_id = flow_id
        self.demand_bps = float(demand_bps)
        self.weight = float(weight)
        self.pinned = bool(pinned)
        # A flood-replicated flow may cross the same direction once only;
        # de-duplicate while preserving order for determinism.
        seen: Set[Hashable] = set()
        unique: List[Hashable] = []
        for link in links:
            if link not in seen:
                seen.add(link)
                unique.append(link)
        self.links = tuple(unique)

    def is_free(self) -> bool:
        """True when the flow is granted its demand outright (no links
        that could congest, or effectively zero demand)."""
        return not self.links or self.demand_bps <= EPSILON_BPS

    def same_inputs(self, other: "FlowDemand") -> bool:
        """True when the solver inputs are identical (rates can't move)."""
        return (
            self.demand_bps == other.demand_bps
            and self.weight == other.weight
            and self.pinned == other.pinned
            and self.links == other.links
        )

    def __repr__(self) -> str:
        return (
            f"<FlowDemand {self.flow_id} demand={self.demand_bps:.3g} "
            f"links={len(self.links)}>"
        )


def _partition(flows: Sequence[FlowDemand]) -> List[List[FlowDemand]]:
    """Split constrained flows into link-sharing connected components.

    Flow order is preserved within each component and components are
    ordered by their first flow, so the result is a pure function of the
    input sequence.
    """
    parent: Dict[Hashable, Hashable] = {}

    def find(link: Hashable) -> Hashable:
        root = link
        while parent[root] != root:
            root = parent[root]
        while parent[link] != root:  # path compression
            parent[link], link = root, parent[link]
        return root

    for flow in flows:
        for link in flow.links:
            parent.setdefault(link, link)
        first = find(flow.links[0])
        for link in flow.links[1:]:
            parent[find(link)] = first
    groups: Dict[Hashable, List[FlowDemand]] = {}
    order: List[Hashable] = []
    for flow in flows:
        root = find(flow.links[0])
        bucket = groups.get(root)
        if bucket is None:
            bucket = groups[root] = []
            order.append(root)
        bucket.append(flow)
    return [groups[root] for root in order]


def _solve_component_scalar(
    flows: Sequence[FlowDemand], capacities: Mapping[Hashable, float]
) -> Dict[Hashable, float]:
    """Weighted progressive filling over one component (scalar kernel).

    Deterministic: all floating-point accumulation orders follow the
    input flow order, so identical inputs give identical bits.
    """
    alloc: Dict[Hashable, float] = {}
    active: List[FlowDemand] = []
    pinned_flows: List[FlowDemand] = []
    for flow in flows:
        if flow.is_free():
            alloc[flow.flow_id] = flow.demand_bps
        elif flow.pinned:
            # Pinned flows take their demand off the top; the elastic
            # flows below share whatever budget remains.
            alloc[flow.flow_id] = flow.demand_bps
            pinned_flows.append(flow)
        else:
            alloc[flow.flow_id] = 0.0
            active.append(flow)
    if not active:
        return alloc

    available: Dict[Hashable, float] = {}
    sat_slack: Dict[Hashable, float] = {}
    members: Dict[Hashable, List[int]] = {}
    for index, flow in enumerate(active):
        for link in flow.links:
            if link not in available:
                try:
                    available[link] = float(capacities[link])
                except (KeyError, IndexError):
                    raise KeyError(f"no capacity given for link {link!r}") from None
                sat_slack[link] = saturation_eps(available[link])
                members[link] = []
            members[link].append(index)

    if pinned_flows:
        # Accumulate the pinned draw per link, then subtract once with a
        # floor at zero — the same accumulation order and arithmetic as
        # the vectorized kernel, keeping the two paths bitwise-identical.
        pinned_draw: Dict[Hashable, float] = {}
        for flow in pinned_flows:
            for link in flow.links:
                if link in available:
                    pinned_draw[link] = pinned_draw.get(link, 0.0) + flow.demand_bps
        for link, draw in pinned_draw.items():
            available[link] = max(0.0, available[link] - draw)

    frozen = [False] * len(active)
    remaining = len(active)
    # Weighted progressive filling: the "water level" rises per unit
    # weight; each iteration freezes at least one flow, so the loop runs
    # at most len(active) times.
    while remaining:
        # Largest per-unit-weight level rise that saturates a link or a
        # demand.  Member weights are summed in ascending flow order.
        level = float("inf")
        link_weight: Dict[Hashable, float] = {}
        for link, indices in members.items():
            weight_sum = 0.0
            for index in indices:
                if not frozen[index]:
                    weight_sum += active[index].weight
            if weight_sum > 0.0:
                link_weight[link] = weight_sum
                level = min(level, available[link] / weight_sum)
        for index, flow in enumerate(active):
            if not frozen[index]:
                level = min(
                    level,
                    (flow.demand_bps - alloc[flow.flow_id]) / flow.weight,
                )
        if level == float("inf"):  # pragma: no cover - defensive
            break
        level = max(level, 0.0)
        # Raise all unfrozen flows by weight x level; draw down budgets.
        if level > 0:
            for link, weight_sum in link_weight.items():
                available[link] -= level * weight_sum
            for index, flow in enumerate(active):
                if not frozen[index]:
                    alloc[flow.flow_id] += level * flow.weight
        # Freeze demand-satisfied flows and flows on saturated links.
        newly_frozen: List[int] = []
        for index, flow in enumerate(active):
            if frozen[index]:
                continue
            if alloc[flow.flow_id] >= flow.demand_bps - demand_eps(flow.demand_bps):
                newly_frozen.append(index)
                continue
            if any(available[link] <= sat_slack[link] for link in flow.links):
                newly_frozen.append(index)
        if not newly_frozen:  # pragma: no cover - numeric safety valve
            break
        for index in newly_frozen:
            frozen[index] = True
            remaining -= 1
    return alloc


def _solve_component_arrays(
    flows: Sequence[FlowDemand], capacities: Mapping[Hashable, float]
) -> Dict[Hashable, float]:
    """Run the vectorized kernel on one component.

    Array layout (flow order, link first-appearance order) is a pure
    function of the input sequence, keeping results deterministic.
    """
    link_index: Dict[Hashable, int] = {}
    link_list: List[Hashable] = []
    flow_of: List[int] = []
    link_of: List[int] = []
    demand = np.empty(len(flows))
    weight = np.empty(len(flows))
    pinned = np.zeros(len(flows), dtype=bool)
    for i, flow in enumerate(flows):
        demand[i] = flow.demand_bps
        weight[i] = flow.weight
        pinned[i] = flow.pinned
        for link in flow.links:
            j = link_index.get(link)
            if j is None:
                j = len(link_list)
                link_index[link] = j
                link_list.append(link)
            flow_of.append(i)
            link_of.append(j)
    try:
        caps = np.array([float(capacities[link]) for link in link_list])
    except (KeyError, IndexError):
        missing = [link for link in link_list if not _has_capacity(capacities, link)]
        raise KeyError(f"no capacity given for link {missing[0]!r}") from None
    alloc = solve_arrays(
        demand,
        caps,
        np.asarray(flow_of, dtype=np.intp),
        np.asarray(link_of, dtype=np.intp),
        weight=weight,
        pinned=pinned if pinned.any() else None,
    )
    return {flow.flow_id: float(alloc[i]) for i, flow in enumerate(flows)}


def _has_capacity(capacities: Mapping[Hashable, float], link: Hashable) -> bool:
    try:
        capacities[link]
        return True
    except (KeyError, IndexError):
        return False


def solve_component(
    flows: Sequence[FlowDemand], capacities: Mapping[Hashable, float]
) -> Dict[Hashable, float]:
    """Canonical kernel for one link-sharing component.

    Small components use the scalar filling loop (lower constant cost);
    large ones the vectorized kernel.  The switch depends only on
    ``len(flows)``, so full and incremental solves of the same component
    take the same path and return bitwise-identical rates.
    """
    if len(flows) >= VECTOR_COMPONENT_THRESHOLD:
        return _solve_component_arrays(flows, capacities)
    return _solve_component_scalar(flows, capacities)


def solve(
    flows: Iterable[FlowDemand], capacities: Mapping[Hashable, float]
) -> Dict[Hashable, float]:
    """Compute max-min fair rates (full solve).

    Parameters
    ----------
    flows:
        The competing flows.  Flows with no links are granted their full
        demand (they traverse nothing that can be congested).
    capacities:
        Capacity in bps for every link key referenced by the flows.

    Returns
    -------
    dict
        flow_id -> allocated rate (bps).

    Examples
    --------
    >>> a = FlowDemand("a", 10.0, ["l"])
    >>> b = FlowDemand("b", 10.0, ["l"])
    >>> solve([a, b], {"l": 10.0})
    {'a': 5.0, 'b': 5.0}
    """
    alloc: Dict[Hashable, float] = {}
    constrained: List[FlowDemand] = []
    for flow in flows:
        if flow.is_free():
            alloc[flow.flow_id] = flow.demand_bps
        else:
            constrained.append(flow)
    for component in _partition(constrained):
        alloc.update(solve_component(component, capacities))
    return alloc


def solve_arrays(
    demand: np.ndarray,
    link_capacity: np.ndarray,
    flow_of: np.ndarray,
    link_of: np.ndarray,
    weight: np.ndarray = None,
    pinned: np.ndarray = None,
) -> np.ndarray:
    """Vectorized progressive filling over a flow-link incidence list.

    Parameters
    ----------
    demand:
        Demand cap per flow, shape (F,).
    link_capacity:
        Capacity per link, shape (L,).
    flow_of / link_of:
        Parallel arrays of the incidence pairs: entry k says flow
        ``flow_of[k]`` crosses link ``link_of[k]``.
    pinned:
        Optional boolean mask, shape (F,).  Pinned flows receive their
        demand outright; their draw is removed from the link budgets
        (floored at zero) before progressive filling starts.

    Returns
    -------
    np.ndarray
        Max-min fair allocation per flow, shape (F,).  Exactly matches
        :func:`solve` (property-tested) but runs each filling iteration
        as O(nnz) NumPy work, which is what lets the flow-level engine
        carry tens of thousands of concurrent flows.
    """
    num_flows = int(demand.size)
    num_links = int(link_capacity.size)
    alloc = np.zeros(num_flows)
    if num_flows == 0:
        return alloc
    if weight is None:
        weight = np.ones(num_flows)
    frozen = np.zeros(num_flows, dtype=bool)
    capacity = link_capacity.astype(float)
    avail = capacity.copy()
    # Saturation/demand thresholds: relative to the magnitudes compared,
    # so float64 rounding on multi-gigabit links still registers.
    sat_eps = np.maximum(EPSILON_BPS, RELATIVE_EPSILON * capacity)
    dem_eps = np.maximum(EPSILON_BPS, RELATIVE_EPSILON * demand)
    has_link = np.zeros(num_flows, dtype=bool)
    if flow_of.size:
        has_link[flow_of] = True
    # Link-free (and zero-demand) flows are granted their demand outright.
    free = ~has_link | (demand <= EPSILON_BPS)
    alloc[free] = demand[free]
    frozen[free] = True
    if pinned is not None:
        # Free flows never draw budget even when marked pinned (matches
        # the scalar kernel, where is_free() takes precedence).
        pinned = pinned & ~free
    if pinned is not None and pinned.any():
        alloc[pinned] = demand[pinned]
        frozen[pinned] = True
        if flow_of.size:
            pin_draw = np.bincount(
                link_of,
                weights=np.where(pinned[flow_of], demand[flow_of], 0.0),
                minlength=num_links,
            )
            avail -= pin_draw
            np.clip(avail, 0.0, None, out=avail)
    # Each iteration either saturates a link or freezes every flow whose
    # remaining headroom is below the current fair increment (in bulk),
    # so iterations are bounded by links + demand "plateaus", not flows.
    max_iter = num_flows + num_links + 8
    for _ in range(max_iter):
        if frozen.all():
            break
        active_pairs = ~frozen[flow_of]
        weight_sums = np.bincount(
            link_of,
            weights=np.where(active_pairs, weight[flow_of], 0.0),
            minlength=num_links,
        )
        used = weight_sums > 0
        if not used.any():
            # Remaining flows only cross saturated-and-released links?
            # They are unconstrained now: grant the rest of their demand.
            alloc[~frozen] = demand[~frozen]
            break
        # Per-unit-weight water-level rise (weighted max-min).
        level = float((avail[used] / weight_sums[used]).min())
        level = max(level, 0.0)
        # Demand-capped filling: each flow rises by min(w*level, headroom).
        flow_inc = np.minimum(level * weight, demand - alloc)
        np.clip(flow_inc, 0.0, None, out=flow_inc)
        flow_inc[frozen] = 0.0
        pair_inc = flow_inc[flow_of]
        draw = np.bincount(
            link_of, weights=np.where(active_pairs, pair_inc, 0.0),
            minlength=num_links,
        )
        avail -= draw
        alloc += flow_inc
        saturated = used & (avail <= sat_eps)
        flow_hit = np.zeros(num_flows, dtype=bool)
        hit_pairs = active_pairs & saturated[link_of]
        if hit_pairs.any():
            flow_hit[flow_of[hit_pairs]] = True
        demand_done = ~frozen & (alloc >= demand - dem_eps)
        newly = (flow_hit & ~frozen) | demand_done
        if not newly.any():
            if level <= EPSILON_BPS:  # pragma: no cover - safety valve
                break
            continue
        frozen |= newly
    return alloc


def affected_component(
    flows: Sequence[FlowDemand], seeds: Iterable[Hashable]
) -> Set[Hashable]:
    """Flow ids transitively sharing links with any seed flow id.

    This is the re-solve scope used by :class:`IncrementalSolver`: flows
    outside the component share no link with anything inside it, so
    their max-min rates cannot change.
    """
    by_id = {f.flow_id: f for f in flows}
    link_members: Dict[Hashable, List[Hashable]] = defaultdict(list)
    for flow in flows:
        for link in flow.links:
            link_members[link].append(flow.flow_id)
    visited: Set[Hashable] = set()
    stack = [s for s in seeds if s in by_id]
    while stack:
        flow_id = stack.pop()
        if flow_id in visited:
            continue
        visited.add(flow_id)
        for link in by_id[flow_id].links:
            for other in link_members[link]:
                if other not in visited:
                    stack.append(other)
    return visited


class IncrementalSolver:
    """Stateful solver re-running the kernel only on dirty components.

    The solver owns a persistent index: a union-find over link keys plus
    a member set per component root, maintained by :meth:`upsert` /
    :meth:`remove` in O(links) per call.  :meth:`resolve` gathers the
    components touched since the last resolve, runs
    :func:`solve_component` on each (member flows ordered by insertion
    sequence), and returns the re-solved rates; untouched components
    keep their cached — and still bitwise-exact — rates.

    Departures never split components eagerly (exact dynamic
    connectivity is costlier than it is worth); stale over-merges are
    *conservative* — they only enlarge the re-solve scope, never change
    the result — and a periodic rebuild re-tightens the partition.
    """

    #: Rebuild the partition after this many removals (at least).
    _REBUILD_MIN = 64

    def __init__(self) -> None:
        self._flows: Dict[Hashable, FlowDemand] = {}
        self._seq: Dict[Hashable, int] = {}
        self._next_seq = 0
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        #: component root link -> ids of member flows.
        self._members: Dict[Hashable, Set[Hashable]] = {}
        self._free: Set[Hashable] = set()
        self._alloc: Dict[Hashable, float] = {}
        self._dirty_flows: Set[Hashable] = set()
        self._dirty_links: Set[Hashable] = set()
        self._removals = 0
        #: Number of flows actually re-solved by the last resolve.
        self.last_scope = 0
        #: Links whose total allocation may have changed in the last
        #: resolve (callers maintaining per-link totals reset these).
        self.last_touched_links: Set[Hashable] = set()
        self.stats = {
            "resolves": 0,
            "component_solves": 0,
            "flows_resolved": 0,
            "rebuilds": 0,
        }
        #: Structured trace sink (:class:`repro.telemetry.TraceBus`) or
        #: None; emission sites check ``is not None``.
        self.trace_bus = None

    # ------------------------------------------------------------------
    # Union-find over links
    # ------------------------------------------------------------------
    def _find(self, link: Hashable) -> Hashable:
        parent = self._parent
        root = link
        while parent[root] != root:
            root = parent[root]
        while parent[link] != root:
            parent[link], link = root, parent[link]
        return root

    def _link_root(self, link: Hashable) -> Hashable:
        if link not in self._parent:
            self._parent[link] = link
            self._rank[link] = 0
            self._members[link] = set()
        return self._find(link)

    def _union(self, a: Hashable, b: Hashable) -> Hashable:
        if a == b:
            return a
        if self._rank[a] < self._rank[b]:
            a, b = b, a
        self._parent[b] = a
        if self._rank[a] == self._rank[b]:
            self._rank[a] += 1
        # Merge member sets small-into-large onto the surviving root.
        members_a = self._members.pop(a, None) or set()
        members_b = self._members.pop(b, None) or set()
        if len(members_a) < len(members_b):
            members_a, members_b = members_b, members_a
        members_a.update(members_b)
        self._members[a] = members_a
        return a

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def upsert(self, flow: FlowDemand) -> None:
        """Register a new/changed flow.  A no-op when the solver inputs
        are identical to the registered ones (rates cannot move)."""
        flow_id = flow.flow_id
        old = self._flows.get(flow_id)
        if old is not None and old.same_inputs(flow):
            self._flows[flow_id] = flow
            return
        if old is not None:
            self._detach(flow_id, old)
        self._flows[flow_id] = flow
        if flow_id not in self._seq:
            self._seq[flow_id] = self._next_seq
            self._next_seq += 1
        self._dirty_flows.add(flow_id)
        if flow.is_free():
            self._free.add(flow_id)
        else:
            root = self._link_root(flow.links[0])
            for link in flow.links[1:]:
                root = self._union(root, self._link_root(link))
            self._members[root].add(flow_id)

    def remove(self, flow_id: Hashable) -> None:
        """Drop a departed flow; its old component is marked dirty."""
        flow = self._flows.pop(flow_id, None)
        self._dirty_flows.discard(flow_id)
        if flow is None:
            return
        self._seq.pop(flow_id, None)
        self._alloc.pop(flow_id, None)
        self._detach(flow_id, flow)

    def _detach(self, flow_id: Hashable, flow: FlowDemand) -> None:
        if flow.is_free():
            self._free.discard(flow_id)
            return
        root = self._find(flow.links[0])
        self._members[root].discard(flow_id)
        self._dirty_links.update(flow.links)
        self._removals += 1

    def touch_link(self, link: Hashable) -> None:
        """Mark a link dirty (e.g. its capacity changed)."""
        self._dirty_links.add(link)

    def reset(self) -> None:
        bus = self.trace_bus
        self.__init__()
        self.trace_bus = bus

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve(
        self, capacities: Mapping[Hashable, float], full: bool = False
    ) -> Dict[Hashable, float]:
        """Re-solve dirty components; returns flow_id -> rate for every
        re-solved flow.  With ``full=True`` every component is re-solved
        from scratch (the reference mode the differential suite compares
        against — identical results, no cache reuse).
        """
        self.stats["resolves"] += 1
        if full:
            self._rebuild()
        elif self._removals > max(self._REBUILD_MIN, len(self._flows) // 2):
            self._rebuild()
        touched: Set[Hashable] = set()
        result: Dict[Hashable, float] = {}
        roots: Set[Hashable] = set()
        if full:
            roots.update(self._members)
            # Insertion order keeps the result dict (and therefore the
            # order rates are applied in) independent of set hashing.
            for flow_id in sorted(self._free, key=self._seq.__getitem__):
                result[flow_id] = self._flows[flow_id].demand_bps
            touched.update(self._dirty_links)
        else:
            # Only populates sets (order-insensitive); link keys are
            # opaque hashables with no portable sort order.
            for link in self._dirty_links:  # repro: noqa[DET003] - fills sets only; order cannot leak
                touched.add(link)
                if link in self._parent:
                    roots.add(self._find(link))
            dirty_order = sorted(
                self._dirty_flows, key=lambda i: self._seq.get(i, -1)
            )
            for flow_id in dirty_order:
                flow = self._flows.get(flow_id)
                if flow is None:
                    continue
                if flow.is_free():
                    result[flow_id] = flow.demand_bps
                else:
                    roots.add(self._find(flow.links[0]))
        # Deterministic component order (oldest member first); the order
        # does not affect values, only reporting.
        seq = self._seq
        ordered = sorted(
            (min(seq[i] for i in self._members[root]), root)
            for root in roots
            if self._members.get(root)
        )
        for _, root in ordered:
            component = sorted(
                (self._flows[i] for i in self._members[root]),
                key=lambda f: seq[f.flow_id],
            )
            for flow in component:
                touched.update(flow.links)
            # Removals can leave stale merges behind (the union-find only
            # splits on rebuild), so a root's members may really be several
            # disconnected components.  Re-partition before solving: each
            # true component must go through the kernel alone, or the
            # result would not be bitwise-identical to a full solve.
            for part in _partition(component):
                result.update(solve_component(part, capacities))
                self.stats["component_solves"] += 1
        self._alloc.update(result)
        self._dirty_flows.clear()
        self._dirty_links.clear()
        self.last_scope = len(result)
        self.last_touched_links = touched
        self.stats["flows_resolved"] += len(result)
        if self.trace_bus is not None:
            # Components not in `ordered` kept their cached rates — the
            # incremental solver's cache hits.
            self.trace_bus.emit(
                "solver.resolve",
                full=full,
                components_solved=len(ordered),
                components_cached=max(0, len(self._members) - len(ordered)),
                flows=len(result),
            )
        return result

    def _rebuild(self) -> None:
        """Re-partition from the live flows (splits stale over-merges)."""
        self._parent.clear()
        self._rank.clear()
        self._members.clear()
        for flow_id, flow in self._flows.items():
            if flow.is_free():
                continue
            root = self._link_root(flow.links[0])
            for link in flow.links[1:]:
                root = self._union(root, self._link_root(link))
            self._members[root].add(flow_id)
        self._removals = 0
        self.stats["rebuilds"] += 1

    # ------------------------------------------------------------------
    # Introspection / compatibility
    # ------------------------------------------------------------------
    @property
    def alloc(self) -> Dict[Hashable, float]:
        """The full cached allocation (flow_id -> rate)."""
        return dict(self._alloc)

    def flow_count(self) -> int:
        return len(self._flows)

    def update(
        self,
        flows: Sequence[FlowDemand],
        capacities: Mapping[Hashable, float],
        changed: Iterable[Hashable],
    ) -> Dict[Hashable, float]:
        """Batch-style API: take the full current flow set plus the ids
        that changed (arrived, departed, or re-routed) and return the new
        full allocation.  Results match :func:`solve` exactly on every
        component containing a changed flow; untouched components keep
        their cached (equally exact) rates.
        """
        current = {f.flow_id: f for f in flows}
        for flow_id in [i for i in self._flows if i not in current]:
            self.remove(flow_id)
        for flow_id in changed:
            flow = current.get(flow_id)
            if flow is None:
                self.remove(flow_id)
            else:
                self.upsert(flow)
        self.resolve(capacities)
        return {flow_id: self._alloc.get(flow_id, 0.0) for flow_id in current}
