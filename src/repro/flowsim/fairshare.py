"""Max-min fair bandwidth allocation (progressive filling).

Given a set of flows, each with a demand cap and the set of link
directions it crosses, compute the max-min fair rate vector: rates rise
together until a link saturates or a flow hits its demand; saturated
flows freeze; repeat.  This is the fluid model that lets Horse advance
in flow events instead of packet events.

Two solvers are provided:

* :func:`solve` — full re-solve over all flows (the default).
* :class:`IncrementalSolver` — re-solves only the connected component of
  flows sharing links with a changed flow (ablation E6).  Because
  max-min allocations of disjoint components are independent, the result
  is identical to the full solve.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Hashable, Iterable, List, Mapping, Sequence, Set, Tuple

import numpy as np

#: Rates below this (bps) are treated as zero when testing saturation.
EPSILON_BPS = 1e-6


class FlowDemand:
    """Solver-facing view of one flow: an id, a demand, its links, and a
    fairness weight.

    ``links`` are hashable keys with a ``capacity`` mapping supplied to
    the solver, so the solver stays decoupled from topology objects.
    ``weight`` scales the flow's share under contention (weighted
    max-min: the "water level" rises per unit weight).
    """

    __slots__ = ("flow_id", "demand_bps", "links", "weight")

    def __init__(
        self,
        flow_id: Hashable,
        demand_bps: float,
        links: Sequence[Hashable],
        weight: float = 1.0,
    ) -> None:
        if demand_bps < 0:
            raise ValueError(f"demand must be >= 0, got {demand_bps}")
        if weight <= 0:
            raise ValueError(f"weight must be > 0, got {weight}")
        self.flow_id = flow_id
        self.demand_bps = float(demand_bps)
        self.weight = float(weight)
        # A flood-replicated flow may cross the same direction once only;
        # de-duplicate while preserving order for determinism.
        seen: Set[Hashable] = set()
        unique: List[Hashable] = []
        for link in links:
            if link not in seen:
                seen.add(link)
                unique.append(link)
        self.links = tuple(unique)

    def __repr__(self) -> str:
        return (
            f"<FlowDemand {self.flow_id} demand={self.demand_bps:.3g} "
            f"links={len(self.links)}>"
        )


def solve(
    flows: Iterable[FlowDemand], capacities: Mapping[Hashable, float]
) -> Dict[Hashable, float]:
    """Compute max-min fair rates.

    Parameters
    ----------
    flows:
        The competing flows.  Flows with no links are granted their full
        demand (they traverse nothing that can be congested).
    capacities:
        Capacity in bps for every link key referenced by the flows.

    Returns
    -------
    dict
        flow_id -> allocated rate (bps).

    Examples
    --------
    >>> a = FlowDemand("a", 10.0, ["l"])
    >>> b = FlowDemand("b", 10.0, ["l"])
    >>> solve([a, b], {"l": 10.0})
    {'a': 5.0, 'b': 5.0}
    """
    flow_list = list(flows)
    alloc: Dict[Hashable, float] = {}
    active: List[FlowDemand] = []
    for flow in flow_list:
        if not flow.links or flow.demand_bps <= EPSILON_BPS:
            alloc[flow.flow_id] = flow.demand_bps
        else:
            alloc[flow.flow_id] = 0.0
            active.append(flow)
    if not active:
        return alloc

    available: Dict[Hashable, float] = {}
    flows_on_link: Dict[Hashable, Set[int]] = defaultdict(set)
    for index, flow in enumerate(active):
        for link in flow.links:
            if link not in available:
                try:
                    available[link] = float(capacities[link])
                except KeyError:
                    raise KeyError(f"no capacity given for link {link!r}") from None
            flows_on_link[link].add(index)

    frozen = [False] * len(active)
    remaining = len(active)
    # Weighted progressive filling: the "water level" rises per unit
    # weight; each iteration freezes at least one flow, so the loop runs
    # at most len(active) times.
    while remaining:
        # Largest per-unit-weight level rise that saturates a link or a
        # demand.
        level = float("inf")
        for link, members in flows_on_link.items():
            weight_sum = sum(active[i].weight for i in members)
            if weight_sum > 0:
                level = min(level, available[link] / weight_sum)
        for index, flow in enumerate(active):
            if not frozen[index]:
                level = min(
                    level,
                    (flow.demand_bps - alloc[flow.flow_id]) / flow.weight,
                )
        if level == float("inf"):  # pragma: no cover - defensive
            break
        level = max(level, 0.0)
        # Raise all unfrozen flows by weight x level; draw down budgets.
        if level > 0:
            for link, members in flows_on_link.items():
                available[link] -= level * sum(active[i].weight for i in members)
            for index, flow in enumerate(active):
                if not frozen[index]:
                    alloc[flow.flow_id] += level * flow.weight
        # Freeze demand-satisfied flows and flows on saturated links.
        newly_frozen: List[int] = []
        for index, flow in enumerate(active):
            if frozen[index]:
                continue
            if alloc[flow.flow_id] >= flow.demand_bps - EPSILON_BPS:
                newly_frozen.append(index)
                continue
            if any(available[link] <= EPSILON_BPS for link in flow.links):
                newly_frozen.append(index)
        if not newly_frozen:  # pragma: no cover - numeric safety valve
            break
        for index in newly_frozen:
            frozen[index] = True
            remaining -= 1
            for link in active[index].links:
                flows_on_link[link].discard(index)
    return alloc


def solve_arrays(
    demand: np.ndarray,
    link_capacity: np.ndarray,
    flow_of: np.ndarray,
    link_of: np.ndarray,
    weight: np.ndarray = None,
) -> np.ndarray:
    """Vectorized progressive filling over a flow-link incidence list.

    Parameters
    ----------
    demand:
        Demand cap per flow, shape (F,).
    link_capacity:
        Capacity per link, shape (L,).
    flow_of / link_of:
        Parallel arrays of the incidence pairs: entry k says flow
        ``flow_of[k]`` crosses link ``link_of[k]``.

    Returns
    -------
    np.ndarray
        Max-min fair allocation per flow, shape (F,).  Exactly matches
        :func:`solve` (property-tested) but runs each filling iteration
        as O(nnz) NumPy work, which is what lets the flow-level engine
        carry tens of thousands of concurrent flows.
    """
    num_flows = int(demand.size)
    num_links = int(link_capacity.size)
    alloc = np.zeros(num_flows)
    if num_flows == 0:
        return alloc
    if weight is None:
        weight = np.ones(num_flows)
    frozen = np.zeros(num_flows, dtype=bool)
    capacity = link_capacity.astype(float)
    avail = capacity.copy()
    # Saturation threshold: relative to capacity so float64 rounding on
    # multi-gigabit links still registers as "full".
    sat_eps = np.maximum(EPSILON_BPS, 1e-9 * capacity)
    has_link = np.zeros(num_flows, dtype=bool)
    if flow_of.size:
        has_link[flow_of] = True
    # Link-free (and zero-demand) flows are granted their demand outright.
    free = ~has_link | (demand <= EPSILON_BPS)
    alloc[free] = demand[free]
    frozen[free] = True
    # Each iteration either saturates a link or freezes every flow whose
    # remaining headroom is below the current fair increment (in bulk),
    # so iterations are bounded by links + demand "plateaus", not flows.
    max_iter = num_flows + num_links + 8
    for _ in range(max_iter):
        if frozen.all():
            break
        active_pairs = ~frozen[flow_of]
        weight_sums = np.bincount(
            link_of,
            weights=np.where(active_pairs, weight[flow_of], 0.0),
            minlength=num_links,
        )
        used = weight_sums > 0
        if not used.any():
            # Remaining flows only cross saturated-and-released links?
            # They are unconstrained now: grant the rest of their demand.
            alloc[~frozen] = demand[~frozen]
            break
        # Per-unit-weight water-level rise (weighted max-min).
        level = float((avail[used] / weight_sums[used]).min())
        level = max(level, 0.0)
        # Demand-capped filling: each flow rises by min(w*level, headroom).
        flow_inc = np.minimum(level * weight, demand - alloc)
        np.clip(flow_inc, 0.0, None, out=flow_inc)
        flow_inc[frozen] = 0.0
        pair_inc = flow_inc[flow_of]
        draw = np.bincount(
            link_of, weights=np.where(active_pairs, pair_inc, 0.0),
            minlength=num_links,
        )
        avail -= draw
        alloc += flow_inc
        saturated = used & (avail <= sat_eps)
        flow_hit = np.zeros(num_flows, dtype=bool)
        hit_pairs = active_pairs & saturated[link_of]
        if hit_pairs.any():
            flow_hit[flow_of[hit_pairs]] = True
        demand_done = ~frozen & (alloc >= demand - EPSILON_BPS)
        newly = (flow_hit & ~frozen) | demand_done
        if not newly.any():
            if level <= EPSILON_BPS:  # pragma: no cover - safety valve
                break
            continue
        frozen |= newly
    return alloc


def affected_component(
    flows: Sequence[FlowDemand], seeds: Iterable[Hashable]
) -> Set[Hashable]:
    """Flow ids transitively sharing links with any seed flow id.

    This is the re-solve scope used by :class:`IncrementalSolver`: flows
    outside the component share no link with anything inside it, so
    their max-min rates cannot change.
    """
    by_id = {f.flow_id: f for f in flows}
    link_members: Dict[Hashable, List[Hashable]] = defaultdict(list)
    for flow in flows:
        for link in flow.links:
            link_members[link].append(flow.flow_id)
    visited: Set[Hashable] = set()
    stack = [s for s in seeds if s in by_id]
    while stack:
        flow_id = stack.pop()
        if flow_id in visited:
            continue
        visited.add(flow_id)
        for link in by_id[flow_id].links:
            for other in link_members[link]:
                if other not in visited:
                    stack.append(other)
    return visited


class IncrementalSolver:
    """Stateful solver that re-solves only the affected component.

    Keeps the last allocation; :meth:`update` takes the full current flow
    set plus the ids that changed (arrived, departed, or re-routed) and
    returns the new full allocation.  Results match :func:`solve` exactly
    (asserted property-tested), but touch fewer flows when traffic is
    spatially clustered — the trade quantified by ablation E6.
    """

    def __init__(self) -> None:
        self._alloc: Dict[Hashable, float] = {}
        self._last_links: Dict[Hashable, Tuple[Hashable, ...]] = {}
        #: Number of flows actually re-solved by the last update.
        self.last_scope = 0

    def update(
        self,
        flows: Sequence[FlowDemand],
        capacities: Mapping[Hashable, float],
        changed: Iterable[Hashable],
    ) -> Dict[Hashable, float]:
        current_ids = {f.flow_id for f in flows}
        # Seeds: changed flows plus any flow sharing a link the changed
        # flows used to cross (covers departures and re-routes, whose old
        # path may free capacity for flows not on the new path).
        seeds: Set[Hashable] = set(changed) & current_ids
        old_links: Set[Hashable] = set()
        for flow_id in changed:
            if flow_id in self._last_links:
                old_links.update(self._last_links[flow_id])
        if old_links:
            for flow in flows:
                if any(l in old_links for l in flow.links):
                    seeds.add(flow.flow_id)
        component = affected_component(flows, seeds)
        scope = [f for f in flows if f.flow_id in component]
        # Any flow that shares a link with the component must also be
        # re-solved — but by construction the component is closed under
        # link sharing, so `scope` is complete.
        partial = solve(scope, capacities)
        # Merge with untouched allocations; drop departed flows.
        merged: Dict[Hashable, float] = {}
        for flow in flows:
            if flow.flow_id in partial:
                merged[flow.flow_id] = partial[flow.flow_id]
            else:
                merged[flow.flow_id] = self._alloc.get(flow.flow_id, 0.0)
        self._alloc = merged
        self._last_links = {f.flow_id: f.links for f in flows}
        self.last_scope = len(scope)
        return dict(merged)

    def reset(self) -> None:
        self._alloc.clear()
        self._last_links.clear()
        self.last_scope = 0
