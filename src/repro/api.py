"""The stable public API of the Horse reproduction.

``repro.api`` is the supported integration surface: everything listed
in ``__all__`` here follows compatibility rules (deprecate first,
remove later), and ``tools/check_api_surface.py`` snapshots the names
and signatures so CI catches accidental breaks before users do.
Internal subpackage layout may change between releases; imports from
this module keep working.

Typical use::

    from repro.api import Scenario

    result = Scenario.from_file("experiment.json").run()

or, assembling programmatically::

    from repro.api import Horse, HorseConfig, TelemetryConfig, fat_tree

    horse = Horse(fat_tree(4), policies={...},
                  config=HorseConfig(telemetry=TelemetryConfig(profile=True)))
"""

from __future__ import annotations

from .core import Horse, RunResult
from .core.config import (
    CheckpointConfig,
    HorseConfig,
    HybridConfig,
    KernelConfig,
    ShardConfig,
    TelemetryConfig,
    WireConfig,
)
from .errors import (
    CheckpointError,
    ExperimentError,
    HorseError,
    SimulationError,
    SweepError,
    TopologyError,
    TrafficError,
)
from .flowsim import Flow, FlowLevelEngine, FlowState
from .net import Host, IPv4Address, IPv4Network, MacAddress, Switch, Topology
from .net.generators import fat_tree, leaf_spine, linear, pods, single_switch
from .runtime.scenario import (
    build_config,
    build_horse,
    build_topology,
    build_traffic,
    run_scenario,
)
from .runtime.schema import (
    SCHEMA_VERSION,
    Scenario,
    ensure_v1,
    migrate_scenario,
    validate_scenario,
)
from .runtime.sweep import SweepSpec, run_sweep
from .shard import MIN_QUANTUM_S, ShardPlan, partition_topology, run_sharded
from .sim import Simulator
from .telemetry import TraceBus
from .traffic import FlowGenerator, TrafficMatrix

__all__ = [
    # Simulation facade
    "Horse",
    "RunResult",
    "Simulator",
    # Configuration
    "HorseConfig",
    "HybridConfig",
    "WireConfig",
    "TelemetryConfig",
    "CheckpointConfig",
    "ShardConfig",
    "KernelConfig",
    # Scenario documents
    "SCHEMA_VERSION",
    "Scenario",
    "build_config",
    "build_horse",
    "build_topology",
    "build_traffic",
    "ensure_v1",
    "migrate_scenario",
    "run_scenario",
    "validate_scenario",
    # Sharded parallel runtime
    "MIN_QUANTUM_S",
    "ShardPlan",
    "partition_topology",
    "run_sharded",
    # Sweeps
    "SweepSpec",
    "run_sweep",
    # Network model
    "Host",
    "Switch",
    "Topology",
    "IPv4Address",
    "IPv4Network",
    "MacAddress",
    "fat_tree",
    "leaf_spine",
    "linear",
    "pods",
    "single_switch",
    # Flows and traffic
    "Flow",
    "FlowState",
    "FlowLevelEngine",
    "FlowGenerator",
    "TrafficMatrix",
    # Telemetry
    "TraceBus",
    # Errors
    "HorseError",
    "CheckpointError",
    "ExperimentError",
    "SimulationError",
    "SweepError",
    "TopologyError",
    "TrafficError",
]
