"""The discrete-event simulation kernel.

:class:`Simulator` owns the clock and the pending-event set.  All
subsystems — the flow-level engine, the packet-level baseline, the
controller's monitoring loops — schedule events on one shared kernel, so a
single temporal order spans data and control planes, exactly the coupling
the Horse poster calls out ("traffic statistics and the state of the
topology are updated after every event and exported to a control plane
module").
"""

from __future__ import annotations

import itertools
import logging
import time as _time
from typing import Any, Callable, Iterable, List, Optional

from ..errors import SchedulingError
from .event import CallbackEvent, Event, PeriodicEvent
from .queue import EventQueue, HeapEventQueue

logger = logging.getLogger(__name__)


class Simulator:
    """Discrete-event simulator with a deterministic event order.

    Parameters
    ----------
    queue:
        Pending-event set implementation; defaults to the binary heap.
        The sorted-list variant exists for the E6 ablation.
    trace:
        When true, every fired event is logged at DEBUG level and counted
        per event type (see :attr:`fired_by_type`).

    Examples
    --------
    >>> sim = Simulator()
    >>> hits = []
    >>> _ = sim.call_at(1.5, lambda s: hits.append(s.now))
    >>> _ = sim.run()
    >>> hits
    [1.5]
    """

    def __init__(self, queue: Optional[EventQueue] = None, trace: bool = False) -> None:
        self._queue: EventQueue = queue if queue is not None else HeapEventQueue()
        self._live_pending = 0  # non-daemon events still queued
        self._now = 0.0
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self.trace = trace
        #: Total number of events fired so far (skipped cancellations excluded).
        self.fired_count = 0
        #: Per-event-type fire counts, populated when ``trace`` is enabled.
        self.fired_by_type: dict = {}
        #: Structured trace sink (:class:`repro.telemetry.TraceBus`) or
        #: None; every emission site checks ``is not None``, so the
        #: disabled path costs one attribute read.
        self.trace_bus = None
        #: Per-phase profiler (:class:`repro.telemetry.PhaseProfiler`) or
        #: None.  The kernel charges the inclusive "dispatch" phase.
        self.profiler = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def stats_snapshot(self) -> dict:
        """Kernel counters (picklable metrics source for
        :class:`repro.telemetry.MetricsRegistry`)."""
        return {
            "now": self._now,
            "fired_events": self.fired_count,
            "pending_events": len(self._queue),
        }

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, event: Event) -> Event:
        """Insert an event into the pending set.

        The event's sequence number is re-stamped so that insertion order
        breaks time/priority ties deterministically.
        """
        if event.time < self._now:
            raise SchedulingError(
                f"cannot schedule event at t={event.time} before now={self._now}"
            )
        event.seq = next(self._seq)
        if not event.daemon:
            self._live_pending += 1
        self._queue.push(event)
        return event

    def call_at(
        self, time: float, callback: Callable[..., None], *args: Any, **kwargs: Any
    ) -> CallbackEvent:
        """Schedule ``callback(sim, *args, **kwargs)`` at absolute ``time``."""
        event = CallbackEvent(time, callback, *args, **kwargs)
        self.schedule(event)
        return event

    def call_in(
        self, delay: float, callback: Callable[..., None], *args: Any, **kwargs: Any
    ) -> CallbackEvent:
        """Schedule ``callback`` after a relative ``delay`` from now."""
        if delay < 0:
            raise SchedulingError(f"delay must be >= 0, got {delay}")
        return self.call_at(self._now + delay, callback, *args, **kwargs)

    def every(
        self,
        interval: float,
        callback: Callable[[Any, float], None],
        start: Optional[float] = None,
        until: Optional[float] = None,
    ) -> PeriodicEvent:
        """Schedule ``callback(sim, t)`` every ``interval`` seconds.

        ``start`` defaults to ``now + interval``.  Returns the first
        periodic event; cancelling it before it fires stops the series
        (each firing schedules a fresh event, so to stop a running series
        use the ``until`` bound or have the callback raise StopIteration).
        """
        first = (self._now + interval) if start is None else start
        event = PeriodicEvent(first, interval, callback, until=until)
        self.schedule(event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> Optional[Event]:
        """Fire the next non-cancelled event; return it, or None if empty."""
        while len(self._queue):
            event = self._queue.pop()
            if not event.daemon:
                self._live_pending -= 1
            if event.cancelled:
                continue
            self._now = event.time
            # Counted before firing so that state captured *inside* a
            # callback (periodic checkpointing) already includes the
            # firing event: a restored run never re-counts it.
            self.fired_count += 1
            profiler = self.profiler
            try:
                if profiler is not None:
                    _t0 = _time.perf_counter()  # repro: noqa[DET001] - profiler timing; never feeds sim state
                    try:
                        event.fire(self)
                    finally:
                        profiler.add("dispatch", _time.perf_counter() - _t0)  # repro: noqa[DET001] - profiler timing; never feeds sim state
                else:
                    event.fire(self)
            except StopIteration:
                # A periodic callback may raise StopIteration to end its series.
                pass
            if self.trace_bus is not None:
                self.trace_bus.emit("kernel.event", event=type(event).__name__)
            if self.trace:
                name = type(event).__name__
                self.fired_by_type[name] = self.fired_by_type.get(name, 0) + 1
                logger.debug("fired %r at t=%.6f", event, self._now)
            return event
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run until the event set drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the number of events fired by
        this call.  When stopped by ``until``, the clock is advanced to
        exactly ``until``.
        """
        if self._running:
            raise SchedulingError("simulator is already running (re-entrant run)")
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while True:
                if self._stopped:
                    break
                if max_events is not None and fired >= max_events:
                    break
                head = self._queue.peek()
                while head is not None and head.cancelled:
                    dead = self._queue.pop()
                    if not dead.daemon:
                        self._live_pending -= 1
                    head = self._queue.peek()
                if head is None:
                    break
                if until is None and self._live_pending <= 0 and head.daemon:
                    # Open-ended run with only daemon housekeeping left:
                    # nothing can make further progress, so we are done.
                    # (With an explicit `until`, daemons keep ticking to
                    # the horizon — callers asked for that much time.)
                    break
                if until is not None and head.time > until:
                    self._now = until
                    break
                self.step()
                fired += 1
            if until is not None and self._now < until and not self._stopped:
                self._now = until
        finally:
            self._running = False
        return fired

    def stop(self) -> None:
        """Request that a running :meth:`run` loop return after the
        current event."""
        self._stopped = True

    def drain(self, events: Iterable[Event]) -> List[Event]:
        """Schedule a batch of events and return them (convenience)."""
        return [self.schedule(e) for e in events]

    def __getstate__(self) -> dict:
        """Pickle support for checkpoint/restore.

        A snapshot may be captured from inside a firing event (periodic
        checkpointing), so the transient execution flags are normalized:
        the restored kernel is always resumable with a fresh
        :meth:`run` call.
        """
        state = dict(self.__dict__)
        state["_running"] = False
        state["_stopped"] = False
        return state

    def reset(self) -> None:
        """Clear the event set and rewind the clock to zero."""
        if self._running:
            raise SchedulingError("cannot reset a running simulator")
        self._queue.clear()
        self._live_pending = 0
        self._now = 0.0
        self.fired_count = 0
        self.fired_by_type = {}
        self._seq = itertools.count()
