"""The discrete-event simulation kernel.

:class:`Simulator` owns the clock and the pending-event set.  All
subsystems — the flow-level engine, the packet-level baseline, the
controller's monitoring loops — schedule events on one shared kernel, so a
single temporal order spans data and control planes, exactly the coupling
the Horse poster calls out ("traffic statistics and the state of the
topology are updated after every event and exported to a control plane
module").
"""

from __future__ import annotations

import itertools
import logging
import time as _time
from typing import Any, Callable, Iterable, List, Optional

from ..errors import SchedulingError
from .event import CallbackEvent, Event, PeriodicEvent
from .queue import EventQueue, HeapEventQueue

logger = logging.getLogger(__name__)

#: Rescheduling a timer to within this of its current firing time is a
#: no-op (the flow-engine completion path relies on this fast path to
#: schedule nothing when a recomputed completion time is unchanged).
RESCHEDULE_EPSILON = 1e-9

#: Event class -> compiled copier, filled lazily by :func:`_clone_event`.
_CLONE_CACHE: dict = {}


def _make_copier(cls):
    """Compile a straight-line shallow copier for an event class.

    ``Simulator.reschedule`` mints one clone per retiming of a queued
    timer, so cloning sits on the churn hot path; both ``copy.copy``
    (via ``__reduce_ex__``) and a generic getattr/setattr loop cost
    more there than the heap push itself.  Generating the per-class
    assignments once (the ``namedtuple``/``dataclasses`` technique)
    keeps the per-clone work at plain attribute loads and stores.
    """
    slots = tuple(
        dict.fromkeys(
            name
            for klass in cls.__mro__
            for name in getattr(klass, "__slots__", ())
        )
    )
    lines = "\n    ".join(f"clone.{name} = event.{name}" for name in slots)
    source = (
        "def copier(event, _new=_new, _cls=_cls):\n"
        "    clone = _new(_cls)\n"
        f"    {lines}\n"
        "    state = getattr(event, '__dict__', None)\n"
        "    if state:\n"
        "        clone.__dict__.update(state)\n"
        "    return clone\n"
    )
    namespace = {"_new": object.__new__, "_cls": cls, "getattr": getattr}
    exec(source, namespace)
    return namespace["copier"]


def _clone_event(event: Event) -> Event:
    """Shallow-copy an event via its class's compiled copier."""
    cls = type(event)
    copier = _CLONE_CACHE.get(cls)
    if copier is None:
        copier = _make_copier(cls)
        _CLONE_CACHE[cls] = copier
    return copier(event)


class Simulator:
    """Discrete-event simulator with a deterministic event order.

    Parameters
    ----------
    queue:
        Pending-event set implementation; defaults to the binary heap.
        The sorted-list variant exists for the E6 ablation.
    trace:
        When true, every fired event is logged at DEBUG level and counted
        per event type (see :attr:`fired_by_type`).

    Examples
    --------
    >>> sim = Simulator()
    >>> hits = []
    >>> _ = sim.call_at(1.5, lambda s: hits.append(s.now))
    >>> _ = sim.run()
    >>> hits
    [1.5]
    """

    def __init__(self, queue: Optional[EventQueue] = None, trace: bool = False) -> None:
        self._queue: EventQueue = queue if queue is not None else HeapEventQueue()
        self._live_pending = 0  # non-daemon events still queued
        self._now = 0.0
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self.trace = trace
        #: Total number of events fired so far (skipped cancellations excluded).
        self.fired_count = 0
        #: Per-event-type fire counts, populated when ``trace`` is enabled.
        self.fired_by_type: dict = {}
        #: Structured trace sink (:class:`repro.telemetry.TraceBus`) or
        #: None; every emission site checks ``is not None``, so the
        #: disabled path costs one attribute read.
        self.trace_bus = None
        #: Per-phase profiler (:class:`repro.telemetry.PhaseProfiler`) or
        #: None.  The kernel charges the inclusive "dispatch" phase.
        self.profiler = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of *live* events still queued.

        Cancelled events awaiting lazy removal are excluded; use
        :attr:`pending_raw` for the raw pending-set size.
        """
        queue = self._queue
        live = getattr(queue, "live", None)
        return live if live is not None else len(queue)

    @property
    def pending_raw(self) -> int:
        """Raw pending-set size, including cancelled tombstones."""
        return len(self._queue)

    def stats_snapshot(self) -> dict:
        """Kernel counters (picklable metrics source for
        :class:`repro.telemetry.MetricsRegistry`).

        ``pending_events`` reports live events only; the raw queue size
        (with tombstones) is ``pending_raw``, and the ``queue_*`` keys
        expose the pending-set health counters (stale entries,
        compactions, discarded tombstones, peak size).
        """
        snap = {
            "now": self._now,
            "fired_events": self.fired_count,
            "pending_events": self.pending,
            "pending_raw": len(self._queue),
        }
        health = getattr(self._queue, "health", None)
        if health is not None:
            for key, value in health().items():
                snap[f"queue_{key}"] = value
        return snap

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, event: Event) -> Event:
        """Insert an event into the pending set.

        The event's sequence number is re-stamped so that insertion order
        breaks time/priority ties deterministically.
        """
        if event.time < self._now:
            raise SchedulingError(
                f"cannot schedule event at t={event.time} before now={self._now}"
            )
        event.seq = next(self._seq)
        if not event.daemon:
            self._live_pending += 1
        event.queued = True
        self._queue.push(event)
        return event

    def cancel(self, event: Event) -> bool:
        """Cancel a scheduled event, keeping the pending set healthy.

        Equivalent to ``event.cancel()`` plus stale accounting: the
        queue learns the entry is a tombstone and, when tombstones
        exceed its compaction threshold, is rebuilt in place (see
        :meth:`repro.sim.queue.HeapEventQueue.compact`).  Returns True
        when this call cancelled the event, False when it was already
        cancelled.  Prefer this over ``event.cancel()`` for events that
        are cancelled en masse (rate-change churn); direct
        ``event.cancel()`` still works but leaves the tombstone
        unaccounted until it is popped.
        """
        if event.cancelled:
            return False
        event.cancel()
        if event.queued:
            note = getattr(self._queue, "note_cancel", None)
            if note is not None and note(event):
                self._compact()
        return True

    def reschedule(self, event: Event, new_time: float) -> Event:
        """Move a timer to ``new_time`` and return the live handle.

        The first-class alternative to the cancel-and-push idiom for
        reschedulable timers (flow-completion projections, pacing
        ticks, sync ticks):

        - already fired (or never scheduled): the same object is
          re-armed with a single push — no tombstone, no allocation;
        - still queued at a different time: the queued entry is
          tombstoned in place and a clone is pushed
          (decrease/increase-key by stale-tombstone replacement);
        - still queued within :data:`RESCHEDULE_EPSILON` of
          ``new_time``: nothing is scheduled and the same handle comes
          back.

        Callers must treat the *returned* event as the live handle; the
        argument may have become a tombstone.
        """
        if new_time < self._now:
            raise SchedulingError(
                f"cannot reschedule event to t={new_time} before now={self._now}"
            )
        if event.queued:
            if (
                not event.cancelled
                and abs(event.time - new_time) < RESCHEDULE_EPSILON
            ):
                return event
            replacement = _clone_event(event)
            replacement.queued = False
            replacement.cancelled = False
            replacement.time = float(new_time)
            if not event.cancelled:
                # Tombstone the queued entry directly: subclass
                # ``cancel`` overrides (a periodic series' cascading
                # cancellation) must not run for a retiming.
                event.cancelled = True
                note = getattr(self._queue, "note_cancel", None)
                if note is not None and note(event):
                    self._compact()
            self.schedule(replacement)
            return replacement
        event.cancelled = False
        event.time = float(new_time)
        self.schedule(event)
        return event

    def _compact(self) -> None:
        """Rebuild the pending set without tombstones (trace-spanned)."""
        queue = self._queue
        bus = self.trace_bus
        if bus is not None:
            with bus.span(
                "kernel.compact",
                raw=len(queue),
                stale=queue.stale,
            ):
                dropped = queue.compact()
        else:
            dropped = queue.compact()
        for event in dropped:
            if not event.daemon:
                self._live_pending -= 1

    def call_at(
        self, time: float, callback: Callable[..., None], *args: Any, **kwargs: Any
    ) -> CallbackEvent:
        """Schedule ``callback(sim, *args, **kwargs)`` at absolute ``time``."""
        event = CallbackEvent(time, callback, *args, **kwargs)
        self.schedule(event)
        return event

    def call_in(
        self, delay: float, callback: Callable[..., None], *args: Any, **kwargs: Any
    ) -> CallbackEvent:
        """Schedule ``callback`` after a relative ``delay`` from now."""
        if delay < 0:
            raise SchedulingError(f"delay must be >= 0, got {delay}")
        return self.call_at(self._now + delay, callback, *args, **kwargs)

    def every(
        self,
        interval: float,
        callback: Callable[[Any, float], None],
        start: Optional[float] = None,
        until: Optional[float] = None,
    ) -> PeriodicEvent:
        """Schedule ``callback(sim, t)`` every ``interval`` seconds.

        ``start`` defaults to ``now + interval``.  Returns the first
        periodic event, which doubles as the series handle: cancelling
        it stops the recurrence at any point — before the first tick or
        after any number of firings (the whole series shares one
        cancellation flag).  The ``until`` bound and raising
        StopIteration from the callback also end the series.
        """
        first = (self._now + interval) if start is None else start
        event = PeriodicEvent(first, interval, callback, until=until)
        self.schedule(event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> Optional[Event]:
        """Fire the next non-cancelled event; return it, or None if empty."""
        while len(self._queue):
            event = self._queue.pop()
            event.queued = False
            if not event.daemon:
                self._live_pending -= 1
            if event.cancelled:
                continue
            self._now = event.time
            # Counted before firing so that state captured *inside* a
            # callback (periodic checkpointing) already includes the
            # firing event: a restored run never re-counts it.
            self.fired_count += 1
            profiler = self.profiler
            try:
                if profiler is not None:
                    _t0 = _time.perf_counter()  # repro: noqa[DET001] - profiler timing; never feeds sim state
                    try:
                        event.fire(self)
                    finally:
                        profiler.add("dispatch", _time.perf_counter() - _t0)  # repro: noqa[DET001] - profiler timing; never feeds sim state
                else:
                    event.fire(self)
            except StopIteration:
                # A periodic callback may raise StopIteration to end its series.
                pass
            if self.trace_bus is not None:
                self.trace_bus.emit("kernel.event", event=type(event).__name__)
            if self.trace:
                name = type(event).__name__
                self.fired_by_type[name] = self.fired_by_type.get(name, 0) + 1
                logger.debug("fired %r at t=%.6f", event, self._now)
            return event
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run until the event set drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the number of events fired by
        this call.  When stopped by ``until``, the clock is advanced to
        exactly ``until``.
        """
        if self._running:
            raise SchedulingError("simulator is already running (re-entrant run)")
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while True:
                if self._stopped:
                    break
                if max_events is not None and fired >= max_events:
                    break
                head = self._queue.peek()
                while head is not None and head.cancelled:
                    dead = self._queue.pop()
                    dead.queued = False
                    if not dead.daemon:
                        self._live_pending -= 1
                    head = self._queue.peek()
                if head is None:
                    break
                if until is None and self._live_pending <= 0 and head.daemon:
                    # Open-ended run with only daemon housekeeping left:
                    # nothing can make further progress, so we are done.
                    # (With an explicit `until`, daemons keep ticking to
                    # the horizon — callers asked for that much time.)
                    break
                if until is not None and head.time > until:
                    self._now = until
                    break
                self.step()
                fired += 1
            if until is not None and self._now < until and not self._stopped:
                self._now = until
        finally:
            self._running = False
        return fired

    def stop(self) -> None:
        """Request that a running :meth:`run` loop return after the
        current event."""
        self._stopped = True

    def drain(self, events: Iterable[Event]) -> List[Event]:
        """Schedule a batch of events and return them (convenience)."""
        return [self.schedule(e) for e in events]

    def __getstate__(self) -> dict:
        """Pickle support for checkpoint/restore.

        A snapshot may be captured from inside a firing event (periodic
        checkpointing), so the transient execution flags are normalized:
        the restored kernel is always resumable with a fresh
        :meth:`run` call.
        """
        state = dict(self.__dict__)
        state["_running"] = False
        state["_stopped"] = False
        return state

    def reset(self) -> None:
        """Clear the event set and rewind the clock to zero."""
        if self._running:
            raise SchedulingError("cannot reset a running simulator")
        self._queue.clear()
        self._live_pending = 0
        self._now = 0.0
        self.fired_count = 0
        self.fired_by_type = {}
        self._seq = itertools.count()
