"""Discrete-event simulation kernel.

Provides the shared clock, deterministic pending-event set, and seeded
random streams used by every other subsystem.
"""

from .event import CallbackEvent, Event, PeriodicEvent
from .faults import FaultProfile, FaultRecord, LinkFaultInjector
from .kernel import Simulator
from .process import ProcessHandle, spawn
from .queue import (
    EventQueue,
    HeapEventQueue,
    SortedListEventQueue,
    build_event_queue,
)
from .rng import RngRegistry, spawn_seed

__all__ = [
    "CallbackEvent",
    "Event",
    "EventQueue",
    "build_event_queue",
    "FaultProfile",
    "FaultRecord",
    "LinkFaultInjector",
    "HeapEventQueue",
    "PeriodicEvent",
    "RngRegistry",
    "ProcessHandle",
    "Simulator",
    "SortedListEventQueue",
    "spawn",
    "spawn_seed",
]
