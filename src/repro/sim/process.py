"""Coroutine-style simulation processes.

For scenario scripts that read like procedures ("wait 5 s, install the
blackhole, wait for the probe to finish, lift it"), a generator-based
process API sits on top of the event kernel:

* ``yield <seconds>`` — sleep for a simulated duration;
* ``yield <ProcessHandle>`` — wait until another process finishes;
* ``return <value>`` — finish, storing the result on the handle.

Examples
--------
>>> from repro.sim import Simulator
>>> from repro.sim.process import spawn
>>> sim = Simulator()
>>> log = []
>>> def worker(sim):
...     log.append(("start", sim.now))
...     yield 2.0
...     log.append(("done", sim.now))
...     return 42
>>> def supervisor(sim):
...     handle = spawn(sim, worker)
...     result = yield handle
...     log.append(("joined", sim.now, result))
>>> _ = spawn(sim, supervisor)
>>> _ = sim.run()
>>> log
[('start', 0.0), ('done', 2.0), ('joined', 2.0, 42)]
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from ..errors import SimulationError
from .kernel import Simulator

ProcessBody = Generator[Any, Any, Any]


class ProcessHandle:
    """A running (or finished) simulation process."""

    __slots__ = ("sim", "name", "_body", "finished", "result", "_waiters")

    def __init__(self, sim: Simulator, body: ProcessBody, name: str) -> None:
        self.sim = sim
        self.name = name
        self._body = body
        self.finished = False
        self.result: Any = None
        self._waiters: List["ProcessHandle"] = []

    # ------------------------------------------------------------------
    def _step(self, send_value: Any = None) -> None:
        try:
            yielded = self._body.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._handle_yield(yielded)

    def _handle_yield(self, yielded: Any) -> None:
        if isinstance(yielded, (int, float)):
            if yielded < 0:
                self._crash(
                    SimulationError(
                        f"process {self.name!r} yielded a negative delay "
                        f"({yielded})"
                    )
                )
                return
            self.sim.call_in(float(yielded), lambda s: self._step())
        elif isinstance(yielded, ProcessHandle):
            if yielded.finished:
                # Already done: resume at the same instant.
                self.sim.call_in(0.0, lambda s: self._step(yielded.result))
            else:
                yielded._waiters.append(self)  # private-ok: same class
        else:
            self._crash(
                SimulationError(
                    f"process {self.name!r} yielded {yielded!r}; expected a "
                    "delay (seconds) or a ProcessHandle"
                )
            )

    def _crash(self, error: Exception) -> None:
        self._body.close()
        self.finished = True
        raise error

    def _finish(self, value: Any) -> None:
        self.finished = True
        self.result = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            self.sim.call_in(0.0, lambda s, w=waiter: w._step(self.result))  # private-ok

    def __repr__(self) -> str:
        state = "finished" if self.finished else "running"
        return f"<Process {self.name!r} {state}>"


def spawn(
    sim: Simulator,
    fn: Callable[..., ProcessBody],
    *args: Any,
    name: Optional[str] = None,
    delay: float = 0.0,
    **kwargs: Any,
) -> ProcessHandle:
    """Start ``fn(sim, *args, **kwargs)`` as a process.

    The generator receives the simulator as its first argument and
    begins executing after ``delay`` simulated seconds (0 = at the
    current instant, once the kernel resumes).
    """
    body = fn(sim, *args, **kwargs)
    if not hasattr(body, "send"):
        raise SimulationError(
            f"{getattr(fn, '__name__', fn)!r} is not a generator function; "
            "process bodies must use yield"
        )
    handle = ProcessHandle(sim, body, name or getattr(fn, "__name__", "process"))
    sim.call_in(delay, lambda s: handle._step())  # private-ok: same module
    return handle
