"""Pending-event set implementations.

The default :class:`HeapEventQueue` is a binary heap with ``(time,
priority, seq)`` ordering — O(log n) push/pop and deterministic
tie-breaking.  Cancellation is lazy (the kernel marks an event and the
queue skips it at pop), which is cheap per cancel but lets churn-heavy
workloads fill the heap with stale tombstones; the queue therefore
keeps live/stale accounting and rebuilds itself (*compaction*) once
tombstones exceed a configurable fraction of the heap.  Compaction only
drops entries that would never have fired, preserving the
``(time, priority, seq)`` pop order, so run digests are unchanged.

:class:`SortedListEventQueue` is a deliberately naive insertion-sorted
list kept for the E6 ablation benchmark, demonstrating why the heap was
chosen.
"""

from __future__ import annotations

import bisect
import heapq
from typing import List, Optional, Protocol

from .event import Event

#: Default stale fraction of the heap that triggers a compaction.  At
#: 0.5 the heap never holds more than ~2x the live events (the
#: bounded-memory property the E14 benchmark gates on).
DEFAULT_COMPACTION_THRESHOLD = 0.5

#: Default raw size below which compaction never triggers — rebuilding
#: a tiny heap costs more than popping a handful of tombstones.
DEFAULT_MIN_COMPACT_SIZE = 64


class EventQueue(Protocol):
    """Interface required of a pending-event set."""

    def push(self, event: Event) -> None:
        """Insert an event."""
        ...

    def pop(self) -> Event:
        """Remove and return the earliest event. Raises IndexError if empty."""
        ...

    def peek(self) -> Optional[Event]:
        """Return the earliest event without removing it, or None."""
        ...

    def __len__(self) -> int: ...

    def clear(self) -> None:
        """Drop all pending events."""
        ...


class HeapEventQueue:
    """Binary-heap pending-event set (the production implementation).

    Parameters
    ----------
    compaction_threshold:
        Stale (tombstoned) fraction of the raw heap above which
        :meth:`compact` is requested; None disables compaction and
        reproduces the original pure-lazy behavior.
    min_compact_size:
        Raw heap size below which compaction never triggers.

    The queue itself never cancels events; the kernel reports each
    tombstone through :meth:`note_cancel` and performs the compaction
    it requests (so the kernel can fix up its own live-event accounting
    and emit a ``kernel.compact`` trace span around the rebuild).
    """

    __slots__ = (
        "_heap",
        "_stale",
        "compaction_threshold",
        "min_compact_size",
        "compactions",
        "stale_discarded",
        "peak_size",
    )

    def __init__(
        self,
        compaction_threshold: Optional[float] = DEFAULT_COMPACTION_THRESHOLD,
        min_compact_size: int = DEFAULT_MIN_COMPACT_SIZE,
    ) -> None:
        if compaction_threshold is not None and not (
            0.0 < compaction_threshold <= 1.0
        ):
            raise ValueError(
                "compaction_threshold must be in (0, 1] or None, "
                f"got {compaction_threshold}"
            )
        if min_compact_size < 0:
            raise ValueError(
                f"min_compact_size must be >= 0, got {min_compact_size}"
            )
        self._heap: List[Event] = []
        #: Tombstoned entries known to still sit in the heap.  Events
        #: cancelled directly (``event.cancel()`` without going through
        #: ``Simulator.cancel``) are not counted until popped, so this
        #: is a lower bound; :meth:`compact` re-trues it.
        self._stale = 0
        self.compaction_threshold = compaction_threshold
        self.min_compact_size = min_compact_size
        #: Lifetime number of compaction rebuilds.
        self.compactions = 0
        #: Lifetime number of tombstones dropped by compaction (popping
        #: a tombstone lazily does not count).
        self.stale_discarded = 0
        #: High-water mark of the raw heap size.
        self.peak_size = 0

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, event)
        if len(self._heap) > self.peak_size:
            self.peak_size = len(self._heap)

    def pop(self) -> Event:
        event = heapq.heappop(self._heap)
        if event.cancelled and self._stale > 0:
            self._stale -= 1
        return event

    def peek(self) -> Optional[Event]:
        return self._heap[0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def clear(self) -> None:
        self._heap.clear()
        self._stale = 0

    # ------------------------------------------------------------------
    # Live/stale accounting
    # ------------------------------------------------------------------
    @property
    def stale(self) -> int:
        """Known tombstoned entries still in the heap."""
        return self._stale

    @property
    def live(self) -> int:
        """Entries still expected to fire (raw size minus known stale)."""
        return len(self._heap) - self._stale

    def note_cancel(self, event: Event) -> bool:
        """Record that a queued event was tombstoned.

        Returns True when the stale fraction crossed
        ``compaction_threshold`` — the caller should then invoke
        :meth:`compact`.
        """
        self._stale += 1
        threshold = self.compaction_threshold
        size = len(self._heap)
        return (
            threshold is not None
            and size >= self.min_compact_size
            and self._stale > threshold * size
        )

    def compact(self) -> List[Event]:
        """Rebuild the heap without its tombstoned entries.

        Heapifying the filtered list preserves the total
        ``(time, priority, seq)`` order, so the pop sequence of live
        events — and therefore every run digest — is unchanged.
        Returns the dropped events so the kernel can adjust its own
        non-daemon pending count.
        """
        dropped = [e for e in self._heap if e.cancelled]
        if dropped:
            self._heap = [e for e in self._heap if not e.cancelled]
            heapq.heapify(self._heap)
            for event in dropped:
                event.queued = False
        self._stale = 0
        self.compactions += 1
        self.stale_discarded += len(dropped)
        return dropped

    def health(self) -> dict:
        """Queue-health counters (exported via ``stats_snapshot``)."""
        return {
            "stale": self._stale,
            "compactions": self.compactions,
            "stale_discarded": self.stale_discarded,
            "peak_size": self.peak_size,
        }


class SortedListEventQueue:
    """Insertion-sorted list queue (ablation baseline, O(n) insert)."""

    __slots__ = ("_events",)

    def __init__(self) -> None:
        self._events: List[Event] = []

    def push(self, event: Event) -> None:
        bisect.insort(self._events, event)

    def pop(self) -> Event:
        return self._events.pop(0)

    def peek(self) -> Optional[Event]:
        return self._events[0] if self._events else None

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()


def build_event_queue(
    kind: str = "heap",
    compaction_threshold: Optional[float] = DEFAULT_COMPACTION_THRESHOLD,
    min_compact_size: int = DEFAULT_MIN_COMPACT_SIZE,
) -> EventQueue:
    """Construct a pending-event set from configuration values.

    ``kind`` is ``"heap"`` (production) or ``"sorted"`` (the E6
    ablation baseline, which ignores the compaction knobs — it has no
    amortized structure to rebuild).
    """
    if kind == "heap":
        return HeapEventQueue(
            compaction_threshold=compaction_threshold,
            min_compact_size=min_compact_size,
        )
    if kind == "sorted":
        return SortedListEventQueue()
    raise ValueError(f"unknown event queue kind {kind!r}")
