"""Pending-event set implementations.

The default :class:`HeapEventQueue` is a binary heap with ``(time,
priority, seq)`` ordering — O(log n) push/pop and deterministic
tie-breaking.  :class:`SortedListEventQueue` is a deliberately naive
insertion-sorted list kept for the E6 ablation benchmark, demonstrating
why the heap was chosen.
"""

from __future__ import annotations

import bisect
import heapq
from typing import List, Optional, Protocol

from .event import Event


class EventQueue(Protocol):
    """Interface required of a pending-event set."""

    def push(self, event: Event) -> None:
        """Insert an event."""
        ...

    def pop(self) -> Event:
        """Remove and return the earliest event. Raises IndexError if empty."""
        ...

    def peek(self) -> Optional[Event]:
        """Return the earliest event without removing it, or None."""
        ...

    def __len__(self) -> int: ...

    def clear(self) -> None:
        """Drop all pending events."""
        ...


class HeapEventQueue:
    """Binary-heap pending-event set (the production implementation)."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[Event] = []

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, event)

    def pop(self) -> Event:
        return heapq.heappop(self._heap)

    def peek(self) -> Optional[Event]:
        return self._heap[0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def clear(self) -> None:
        self._heap.clear()


class SortedListEventQueue:
    """Insertion-sorted list queue (ablation baseline, O(n) insert)."""

    __slots__ = ("_events",)

    def __init__(self) -> None:
        self._events: List[Event] = []

    def push(self, event: Event) -> None:
        bisect.insort(self._events, event)

    def pop(self) -> Event:
        return self._events.pop(0)

    def peek(self) -> Optional[Event]:
        return self._events[0] if self._events else None

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
