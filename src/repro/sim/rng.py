"""Seeded random-number management.

Every stochastic component (traffic generators, topology generators,
failure injectors) draws from a named stream derived from one master seed,
so adding a new consumer never perturbs the draws seen by existing ones —
a requirement for reproducible experiments and regression tests.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

import numpy as np


def _derive(master_seed: int, name: str) -> int:
    """Derive a 63-bit child seed from a master seed and a stream name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def spawn_seed(master_seed: int, *key: object) -> int:
    """Derive a 63-bit child seed from a master seed and a spawn key.

    The spawn key is a tuple of ints/strings identifying the child
    deterministically — for a parameter sweep, ``(job_index,)``.  The
    derivation is a pure function of ``(master_seed, key)``: it does not
    depend on process state, call order, or which worker runs the job,
    so sweep results are independent of worker scheduling.  Different
    keys give statistically independent seeds (SHA-256 avalanche), and
    child seeds never collide with :class:`RngRegistry` stream seeds
    (distinct derivation tags).
    """
    tag = "spawn:" + ":".join(repr(part) for part in key)
    digest = hashlib.sha256(f"{master_seed}|{tag}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class RngRegistry:
    """A registry of independent, named random streams.

    Examples
    --------
    >>> rngs = RngRegistry(seed=42)
    >>> a = rngs.stream("traffic")
    >>> b = rngs.stream("traffic")
    >>> a is b
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}
        self._np_streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stdlib stream named ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(_derive(self.seed, name))
        return self._streams[name]

    def np_stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the NumPy generator named ``name``."""
        if name not in self._np_streams:
            self._np_streams[name] = np.random.default_rng(_derive(self.seed, name))
        return self._np_streams[name]

    def reset(self) -> None:
        """Re-seed every existing stream back to its initial state."""
        for name in list(self._streams):
            self._streams[name] = random.Random(_derive(self.seed, name))
        for name in list(self._np_streams):
            self._np_streams[name] = np.random.default_rng(_derive(self.seed, name))
