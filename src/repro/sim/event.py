"""Event primitives for the discrete-event kernel.

The poster describes the data plane as driven by "a temporally ordered set
of inputs for the topology".  :class:`Event` is the base type of every such
input.  Events carry an absolute firing ``time`` and a kernel-assigned
sequence number used to break ties deterministically, so two runs with the
same seed produce identical event orderings.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

#: Module-level counter used only when events are created outside a kernel
#: (e.g. in unit tests); the kernel re-stamps sequence numbers on schedule.
_FALLBACK_SEQ = itertools.count()  # repro: noqa[SNAP002] - kernel re-stamps seq on schedule; never crosses a checkpoint


class Event:
    """A schedulable occurrence at an absolute simulation time.

    Subclasses override :meth:`fire` to perform their effect.  Events
    compare by ``(time, priority, seq)`` which makes them directly usable
    in a binary heap.

    Parameters
    ----------
    time:
        Absolute simulation time (seconds) at which the event fires.
    priority:
        Secondary ordering key for events at the same instant; lower
        fires first.  Defaults to 0.
    """

    __slots__ = ("time", "priority", "seq", "cancelled", "daemon", "queued")

    def __init__(self, time: float, priority: int = 0) -> None:
        if time < 0:
            raise ValueError(f"event time must be >= 0, got {time}")
        self.time = float(time)
        self.priority = priority
        self.seq = next(_FALLBACK_SEQ)
        self.cancelled = False
        #: Daemon events (periodic housekeeping like monitoring polls) do
        #: not keep the simulation alive: run() returns once only daemon
        #: events remain, mirroring daemon-thread semantics.
        self.daemon = False
        #: True while the event sits in a kernel's pending set (set on
        #: schedule, cleared on pop/compaction).  ``Simulator.reschedule``
        #: uses it to pick between re-arming the same object (already
        #: fired) and tombstone replacement (still queued).
        self.queued = False

    def fire(self, sim: "Any") -> None:
        """Execute the event's effect.

        Parameters
        ----------
        sim:
            The :class:`~repro.sim.kernel.Simulator` executing the event.
        """
        raise NotImplementedError

    def cancel(self) -> None:
        """Mark this event as cancelled; the kernel will skip it lazily."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = " cancelled" if self.cancelled else ""
        return f"<{type(self).__name__} t={self.time:.6f}{flag}>"


class CallbackEvent(Event):
    """An event that invokes an arbitrary callable when fired.

    The callable receives the simulator as its only positional argument,
    followed by any ``args``/``kwargs`` captured at creation.
    """

    __slots__ = ("callback", "args", "kwargs")

    def __init__(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
        **kwargs: Any,
    ) -> None:
        super().__init__(time, priority=priority)
        self.callback = callback
        self.args = args
        self.kwargs = kwargs

    def fire(self, sim: Any) -> None:
        self.callback(sim, *self.args, **self.kwargs)


class _PeriodicSeries:
    """Shared cancellation handle for a chain of periodic firings.

    Every clone in a periodic series points at the same series object,
    so cancelling *any* event of the series — including the handle
    returned by ``Simulator.every`` long after it fired — stops the
    whole recurrence.
    """

    __slots__ = ("cancelled", "current")

    def __init__(self) -> None:
        self.cancelled = False
        #: The series event currently queued (or firing).
        self.current: Optional["PeriodicEvent"] = None


class PeriodicEvent(Event):
    """An event that re-schedules itself every ``interval`` seconds.

    Used for monitoring polls and statistics sampling.  Set ``until`` to
    bound the recurrence, or call :meth:`cancel` to stop it.  All
    firings of one series share a cancellation handle, so cancelling the
    original event stops the recurrence even after it has fired —
    the queued clone is tombstoned and no further clone is scheduled.
    """

    __slots__ = ("callback", "interval", "until", "series")

    def __init__(
        self,
        time: float,
        interval: float,
        callback: Callable[[Any, float], None],
        until: Optional[float] = None,
        priority: int = 0,
        daemon: bool = True,
        series: Optional[_PeriodicSeries] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        super().__init__(time, priority=priority)
        self.callback = callback
        self.interval = float(interval)
        self.until = until
        # Periodic housekeeping defaults to daemon so an idle monitor
        # cannot keep run() spinning forever.
        self.daemon = daemon
        self.series = series if series is not None else _PeriodicSeries()
        if series is None:
            self.series.current = self

    def cancel(self) -> None:
        """Stop the whole series: this event, and the queued clone."""
        super().cancel()
        series = self.series
        series.cancelled = True
        current = series.current
        if current is not None and current is not self and not current.cancelled:
            Event.cancel(current)

    def fire(self, sim: Any) -> None:
        if self.series.cancelled:
            return
        self.callback(sim, self.time)
        next_time = self.time + self.interval
        if self.until is not None and next_time > self.until:
            return
        if self.series.cancelled:
            # The callback cancelled its own series mid-firing.
            return
        clone = PeriodicEvent(
            next_time,
            self.interval,
            self.callback,
            until=self.until,
            priority=self.priority,
            daemon=self.daemon,
            series=self.series,
        )
        sim.schedule(clone)
        self.series.current = clone
