"""Event primitives for the discrete-event kernel.

The poster describes the data plane as driven by "a temporally ordered set
of inputs for the topology".  :class:`Event` is the base type of every such
input.  Events carry an absolute firing ``time`` and a kernel-assigned
sequence number used to break ties deterministically, so two runs with the
same seed produce identical event orderings.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

#: Module-level counter used only when events are created outside a kernel
#: (e.g. in unit tests); the kernel re-stamps sequence numbers on schedule.
_FALLBACK_SEQ = itertools.count()  # repro: noqa[SNAP002] - kernel re-stamps seq on schedule; never crosses a checkpoint


class Event:
    """A schedulable occurrence at an absolute simulation time.

    Subclasses override :meth:`fire` to perform their effect.  Events
    compare by ``(time, priority, seq)`` which makes them directly usable
    in a binary heap.

    Parameters
    ----------
    time:
        Absolute simulation time (seconds) at which the event fires.
    priority:
        Secondary ordering key for events at the same instant; lower
        fires first.  Defaults to 0.
    """

    __slots__ = ("time", "priority", "seq", "cancelled", "daemon")

    def __init__(self, time: float, priority: int = 0) -> None:
        if time < 0:
            raise ValueError(f"event time must be >= 0, got {time}")
        self.time = float(time)
        self.priority = priority
        self.seq = next(_FALLBACK_SEQ)
        self.cancelled = False
        #: Daemon events (periodic housekeeping like monitoring polls) do
        #: not keep the simulation alive: run() returns once only daemon
        #: events remain, mirroring daemon-thread semantics.
        self.daemon = False

    def fire(self, sim: "Any") -> None:
        """Execute the event's effect.

        Parameters
        ----------
        sim:
            The :class:`~repro.sim.kernel.Simulator` executing the event.
        """
        raise NotImplementedError

    def cancel(self) -> None:
        """Mark this event as cancelled; the kernel will skip it lazily."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = " cancelled" if self.cancelled else ""
        return f"<{type(self).__name__} t={self.time:.6f}{flag}>"


class CallbackEvent(Event):
    """An event that invokes an arbitrary callable when fired.

    The callable receives the simulator as its only positional argument,
    followed by any ``args``/``kwargs`` captured at creation.
    """

    __slots__ = ("callback", "args", "kwargs")

    def __init__(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
        **kwargs: Any,
    ) -> None:
        super().__init__(time, priority=priority)
        self.callback = callback
        self.args = args
        self.kwargs = kwargs

    def fire(self, sim: Any) -> None:
        self.callback(sim, *self.args, **self.kwargs)


class PeriodicEvent(Event):
    """An event that re-schedules itself every ``interval`` seconds.

    Used for monitoring polls and statistics sampling.  Set ``until`` to
    bound the recurrence, or call :meth:`cancel` to stop it.
    """

    __slots__ = ("callback", "interval", "until")

    def __init__(
        self,
        time: float,
        interval: float,
        callback: Callable[[Any, float], None],
        until: Optional[float] = None,
        priority: int = 0,
        daemon: bool = True,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        super().__init__(time, priority=priority)
        self.callback = callback
        self.interval = float(interval)
        self.until = until
        # Periodic housekeeping defaults to daemon so an idle monitor
        # cannot keep run() spinning forever.
        self.daemon = daemon

    def fire(self, sim: Any) -> None:
        self.callback(sim, self.time)
        next_time = self.time + self.interval
        if self.until is not None and next_time > self.until:
            return
        clone = PeriodicEvent(
            next_time,
            self.interval,
            self.callback,
            until=self.until,
            priority=self.priority,
            daemon=self.daemon,
        )
        sim.schedule(clone)
