"""Stochastic failure injection.

The poster lists "link failure" among the event inputs to the topology.
Beyond one-shot injections (``FlowLevelEngine.fail_link_at``), this
module provides a renewal-process injector: each watched link fails
after an exponential time-to-failure and recovers after an exponential
time-to-repair, producing the continuous churn needed for availability
and convergence studies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from ..flowsim.engine import FlowLevelEngine


@dataclass(frozen=True)
class FaultProfile:
    """Failure statistics for a set of links.

    Attributes
    ----------
    mtbf_s:
        Mean time between failures (exponential), measured from the
        moment the link is (back) up.
    mttr_s:
        Mean time to repair (exponential).
    """

    mtbf_s: float
    mttr_s: float

    def __post_init__(self) -> None:
        if self.mtbf_s <= 0 or self.mttr_s <= 0:
            raise SimulationError(
                f"MTBF and MTTR must be > 0, got {self.mtbf_s}, {self.mttr_s}"
            )


@dataclass
class FaultRecord:
    """One observed failure episode."""

    link: Tuple[str, str]
    failed_at: float
    repaired_at: Optional[float] = None

    @property
    def downtime_s(self) -> Optional[float]:
        if self.repaired_at is None:
            return None
        return self.repaired_at - self.failed_at


class LinkFaultInjector:
    """Drive failure/repair renewal processes on selected links.

    The injector schedules the engine's LinkFailure/LinkRecovery input
    events, so the controller sees ordinary port-status churn and flows
    re-route exactly as under scripted failures.

    Parameters
    ----------
    engine:
        The flow-level engine whose topology is being shaken.
    rng:
        Source of randomness (use a named stream from RngRegistry).
    horizon_s:
        No events are scheduled beyond this time.

    Examples
    --------
    injector = LinkFaultInjector(engine, rng, horizon_s=60.0)
    injector.watch(("s1", "s2"), FaultProfile(mtbf_s=20.0, mttr_s=2.0))
    injector.start()
    """

    def __init__(
        self,
        engine: "FlowLevelEngine",
        rng: random.Random,
        horizon_s: float,
    ) -> None:
        if horizon_s <= 0:
            raise SimulationError(f"horizon must be > 0, got {horizon_s}")
        self.engine = engine
        self.rng = rng
        self.horizon_s = horizon_s
        self._watched: Dict[Tuple[str, str], FaultProfile] = {}
        self._started = False
        #: Completed and in-progress failure episodes, in failure order.
        self.records: List[FaultRecord] = []
        self._open: Dict[Tuple[str, str], FaultRecord] = {}

    def watch(
        self, link: Tuple[str, str], profile: FaultProfile
    ) -> None:
        """Subject one link (by endpoint names) to the fault profile."""
        a, b = link
        # Validate the link exists up front.
        self.engine.topology.link_between(a, b)
        key = (a, b)
        if key in self._watched:
            raise SimulationError(f"link {key} already watched")
        self._watched[key] = profile
        if self._started:
            self._schedule_failure(key)

    def watch_all(
        self,
        links: Sequence[Tuple[str, str]],
        profile: FaultProfile,
    ) -> None:
        for link in links:
            self.watch(link, profile)

    def start(self) -> None:
        """Schedule the first failure of every watched link."""
        if self._started:
            return
        self._started = True
        for key in self._watched:
            self._schedule_failure(key)

    # ------------------------------------------------------------------
    def _schedule_failure(self, key: Tuple[str, str]) -> None:
        profile = self._watched[key]
        delay = self.rng.expovariate(1.0 / profile.mtbf_s)
        at = self.engine.sim.now + delay
        if at > self.horizon_s:
            return
        self.engine.sim.call_at(at, self._fail, key)

    def _fail(self, sim, key: Tuple[str, str]) -> None:
        a, b = key
        link = self.engine.topology.link_between(a, b)
        if not link.up:
            # Lost a race with a manual injection; try again later.
            self._schedule_failure(key)
            return
        record = FaultRecord(link=key, failed_at=sim.now)
        self.records.append(record)
        self._open[key] = record
        self.engine.on_link_state(a, b, up=False)
        profile = self._watched[key]
        repair_delay = self.rng.expovariate(1.0 / profile.mttr_s)
        sim.call_in(repair_delay, self._repair, key)

    def _repair(self, sim, key: Tuple[str, str]) -> None:
        a, b = key
        record = self._open.pop(key, None)
        if record is not None:
            record.repaired_at = sim.now
        self.engine.on_link_state(a, b, up=True)
        self._schedule_failure(key)

    # ------------------------------------------------------------------
    def availability(self, link: Tuple[str, str], until: float) -> float:
        """Fraction of [0, until] the link was up."""
        down = 0.0
        for record in self.records:
            if record.link != link:
                continue
            end = record.repaired_at if record.repaired_at is not None else until
            down += min(end, until) - min(record.failed_at, until)
        return 1.0 - down / until if until > 0 else 1.0

    def failure_count(self, link: Optional[Tuple[str, str]] = None) -> int:
        if link is None:
            return len(self.records)
        return sum(1 for r in self.records if r.link == link)
