"""Sharded parallel simulation runtime.

Partitions a scenario's topology into k domains, runs each in its own
worker process, and synchronizes conservatively at lookahead-derived
quantum boundaries — intra-run parallelism for simulations too large
for one core (ROADMAP: "Parallel / distributed simulation").

Entry point: :func:`run_sharded` (or ``"shards": k`` in a scenario /
``repro run --shards k``).
"""

from .partition import ShardPlan, partition_topology
from .runner import (
    MIN_QUANTUM_S,
    derive_quantum,
    quantum_boundaries,
    run_sharded,
)

__all__ = [
    "MIN_QUANTUM_S",
    "ShardPlan",
    "derive_quantum",
    "partition_topology",
    "quantum_boundaries",
    "run_sharded",
]
