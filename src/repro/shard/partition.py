"""Topology partitioning for the sharded runtime.

Splits a topology into ``k`` domains with a METIS-style greedy
edge-cut heuristic over link capacities: regions grow switch by
switch, always absorbing the unassigned switch with the most capacity
into the region (so high-bandwidth clusters stay together and the
capacity crossing shard boundaries — the traffic that must be
exchanged every quantum — is minimized).  Hosts follow the switch
they attach to.  Scenarios can also pin the split exactly with an
explicit list of node-name lists.

The resulting :class:`ShardPlan` also carries the conservative
*lookahead*: the minimum propagation delay over cut links, which is
the longest interval two shards can simulate independently without
risking a causality violation — the synchronization quantum is derived
from it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ExperimentError
from ..net.topology import Topology


@dataclass
class ShardPlan:
    """The outcome of partitioning: who owns which node, and what the
    cut looks like.

    Attributes
    ----------
    count:
        Number of shard domains.
    assignment:
        node name -> shard index, covering every node.
    cut_links:
        ``(a, b, capacity_bps, delay_s)`` for each link whose endpoints
        live in different shards.
    lookahead_s:
        Minimum cut-link propagation delay — the conservative bound on
        independent progress.  None when the cut is empty (shards are
        fully independent).
    """

    count: int
    assignment: Dict[str, int]
    cut_links: List[Tuple[str, str, float, float]] = field(default_factory=list)
    lookahead_s: Optional[float] = None

    def shard_of(self, name: str) -> int:
        try:
            return self.assignment[name]
        except KeyError:
            raise ExperimentError(f"node {name!r} is not in the shard plan")

    @property
    def cut_capacity_bps(self) -> float:
        return sum(entry[2] for entry in self.cut_links)

    def members(self, shard: int) -> List[str]:
        return sorted(
            name for name, s in self.assignment.items() if s == shard
        )

    def summary(self) -> dict:
        sizes = [0] * self.count
        for shard in self.assignment.values():
            sizes[shard] += 1
        return {
            "shards": self.count,
            "sizes": sizes,
            "cut_links": len(self.cut_links),
            "cut_capacity_bps": self.cut_capacity_bps,
            "lookahead_s": self.lookahead_s,
        }


def _switch_adjacency(topology: Topology) -> Dict[str, Dict[str, float]]:
    """switch name -> {neighbor switch name: total capacity}."""
    switch_names = {s.name for s in topology.switches}
    adj: Dict[str, Dict[str, float]] = {name: {} for name in switch_names}
    for link in topology.links:
        a, b = link.port_a.node.name, link.port_b.node.name
        if a in switch_names and b in switch_names:
            adj[a][b] = adj[a].get(b, 0.0) + link.capacity_bps
            adj[b][a] = adj[b].get(a, 0.0) + link.capacity_bps
    return adj


def _assign_hosts(topology: Topology, assignment: Dict[str, int]) -> None:
    """Each unassigned host joins the shard of its highest-capacity
    attached switch (ties: lexicographically first switch)."""
    for host in sorted(topology.hosts, key=lambda h: h.name):
        if host.name in assignment:
            continue
        best: Optional[Tuple[float, str]] = None
        for link in topology.links:
            other = None
            a, b = link.port_a.node.name, link.port_b.node.name
            if a == host.name:
                other = b
            elif b == host.name:
                other = a
            if other is None or other not in assignment:
                continue
            candidate = (link.capacity_bps, other)
            if best is None or candidate[0] > best[0] or (
                candidate[0] == best[0] and candidate[1] < best[1]
            ):
                best = candidate
        if best is None:
            raise ExperimentError(
                f"host {host.name!r} has no link to an assigned switch; "
                "list it explicitly in the partition"
            )
        assignment[host.name] = assignment[best[1]]


def _greedy_partition(topology: Topology, count: int) -> Dict[str, int]:
    """Region-growing edge-cut over the switch graph.

    Every region grows to ``ceil(|switches| / count)`` by absorbing the
    unassigned switch with the highest capacity into the region (the
    gain); zero-gain picks (disconnected components, e.g. independent
    pods) fall back to the globally best-connected switch, which seeds
    a new component inside the same shard without adding any cut.
    """
    switches = sorted(s.name for s in topology.switches)
    if not switches:
        raise ExperimentError("cannot shard a topology with no switches")
    adj = _switch_adjacency(topology)
    total_cap = {
        name: sum(adj[name].values()) for name in switches
    }
    target = math.ceil(len(switches) / count)
    assignment: Dict[str, int] = {}
    unassigned = set(switches)
    for shard in range(count):
        if not unassigned:
            break
        region_gain: Dict[str, float] = {}

        def absorb(name: str) -> None:
            assignment[name] = shard
            unassigned.discard(name)
            region_gain.pop(name, None)
            for neighbor, capacity in adj[name].items():
                if neighbor in unassigned:
                    region_gain[neighbor] = (
                        region_gain.get(neighbor, 0.0) + capacity
                    )

        # Seed: the best-connected unassigned switch.
        absorb(min(unassigned, key=lambda n: (-total_cap[n], n)))
        while len(assignment) < (shard + 1) * target and unassigned:
            if region_gain:
                pick = min(
                    region_gain, key=lambda n: (-region_gain[n], n)
                )
            else:
                pick = min(unassigned, key=lambda n: (-total_cap[n], n))
            absorb(pick)
    # Leftovers (rounding) join the last shard.
    for name in sorted(unassigned):
        assignment[name] = count - 1
    return assignment


def _explicit_partition(
    topology: Topology, count: int, groups: Sequence[Sequence[str]]
) -> Dict[str, int]:
    if len(groups) != count:
        raise ExperimentError(
            f"explicit partition has {len(groups)} groups but "
            f"shards.count is {count}"
        )
    known = {node.name for node in topology.nodes}
    assignment: Dict[str, int] = {}
    for shard, group in enumerate(groups):
        if not isinstance(group, (list, tuple)):
            raise ExperimentError(
                "explicit partition must be a list of node-name lists"
            )
        for name in group:
            if name not in known:
                raise ExperimentError(
                    f"partition names unknown node {name!r}"
                )
            if name in assignment:
                raise ExperimentError(
                    f"node {name!r} appears in more than one shard"
                )
            assignment[name] = shard
    for switch in topology.switches:
        if switch.name not in assignment:
            raise ExperimentError(
                f"switch {switch.name!r} is not assigned to any shard"
            )
    return assignment


def partition_topology(
    topology: Topology, count: int, partition="greedy"
) -> ShardPlan:
    """Split ``topology`` into ``count`` domains.

    ``partition`` is ``"greedy"`` (capacity-weighted region growing) or
    an explicit list of ``count`` node-name lists; in either case every
    host not named explicitly follows its attachment switch.
    """
    if count < 1:
        raise ExperimentError(f"shard count must be >= 1, got {count}")
    if partition == "greedy":
        assignment = _greedy_partition(topology, count)
    else:
        assignment = _explicit_partition(topology, count, partition)
    _assign_hosts(topology, assignment)
    cut_links: List[Tuple[str, str, float, float]] = []
    for link in topology.links:
        a, b = link.port_a.node.name, link.port_b.node.name
        if assignment[a] != assignment[b]:
            cut_links.append((a, b, link.capacity_bps, link.delay_s))
    cut_links.sort()
    lookahead = min((c[3] for c in cut_links), default=None)
    return ShardPlan(
        count=count,
        assignment=assignment,
        cut_links=cut_links,
        lookahead_s=lookahead,
    )
