"""The sharded parallel runtime: coordinator + worker processes.

``run_sharded`` partitions a scenario's topology into k domains
(:mod:`repro.shard.partition`), runs each domain in a forked worker
process with its own kernel, clock, and incremental solver, and
synchronizes conservatively at quantum boundaries.  The quantum is the
cross-shard lookahead: the minimum propagation delay over cut links
(floored at :data:`MIN_QUANTUM_S`); with no cut links the whole
horizon is a single quantum and the shards never exchange at all.

At each boundary every worker exports a *demand vector* — per link
direction, the total offered demand and fairness weight of its own
active flows — and imports the aggregate of every other shard's vector
as weighted external demands through the flow engine's
``set_external_demand`` seam (the same coupling the hybrid engine uses
for its packet foreground).  Weighted unpinned demands share max-min
fairly with local flows, so two shards contending for one link settle
at the fair split instead of oscillating between all and nothing.

Determinism: every worker builds the *complete* scenario — full
topology, full policy install, and the full deterministic flow
sequence (ids included) — then submits only the flows whose source
host its shard owns.  A flow therefore has the same id, headers, and
route no matter how many shards the run uses.

Fault tolerance: the coordinator records each round's external-demand
decisions per worker.  A crashed worker is respawned and
deterministically replays the recorded rounds without renegotiating
(or fast-forwards from its last quantum-boundary checkpoint when
``shards.checkpoint_dir`` is set), then rejoins the barrier protocol
live.
"""

from __future__ import annotations

import copy
import os
import tempfile
import time as _time
from typing import Dict, List, Optional, Tuple

from ..core.config import HorseConfig
from ..core.results import RunResult
from ..errors import ExperimentError
from ..flowsim.flow import Flow, FlowRoute
from ..runtime.pool import process_context
from ..runtime.scenario import (
    build_config,
    build_horse,
    build_topology,
    build_traffic,
    reset_id_counters,
)
from ..runtime.schema import ensure_v1, validate_scenario
from .partition import ShardPlan, partition_topology

#: Floor for a derived synchronization quantum.  Link propagation
#: delays are microseconds; synchronizing every microsecond would mean
#: millions of barriers, and the flow abstraction's dynamics are far
#: coarser than that.  An explicit ``shards.quantum_s`` overrides.
MIN_QUANTUM_S = 0.05

#: Respawn budget per shard before the run is declared failed.
MAX_RESTARTS = 3

#: Exit code a fault-injected worker dies with (see :data:`FAULT_ENV`);
#: mirrors the sweep pool's crash smoke.
FAULT_EXIT_CODE = 47

#: Crash-injection hook for the restart smoke test:
#: ``REPRO_SHARD_FAULT="<shard>:<round>"`` hard-kills that shard at the
#: start of that round, once — a marker file (path in
#: ``REPRO_SHARD_FAULT_MARKER``, or derived from the coordinator pid)
#: records that the fault already fired so the respawn survives it.
FAULT_ENV = "REPRO_SHARD_FAULT"
FAULT_MARKER_ENV = "REPRO_SHARD_FAULT_MARKER"


def derive_quantum(plan: ShardPlan, override: Optional[float]) -> Optional[float]:
    """The synchronization quantum for a plan: the explicit override,
    else the lookahead floored at :data:`MIN_QUANTUM_S`, else None
    (no cut links — one quantum covers the horizon)."""
    if override is not None:
        return override
    if plan.lookahead_s is None:
        return None
    return max(plan.lookahead_s, MIN_QUANTUM_S)


def quantum_boundaries(until: float, quantum: Optional[float]) -> List[float]:
    """Strictly increasing sync points ending exactly at ``until``.

    Points are computed as multiples of the quantum (not accumulated)
    so every worker derives bit-identical boundaries.
    """
    if quantum is None or quantum >= until:
        return [until]
    boundaries = []
    step = 1
    while True:
        point = step * quantum
        if point >= until:
            break
        boundaries.append(point)
        step += 1
    boundaries.append(until)
    return boundaries


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _light_flow(flow: Flow) -> Flow:
    """A picklable copy: the route is stripped of object graphs
    (directions, table entries) but keeps the terminal and hop record
    the exporters and result summaries read."""
    clone = copy.copy(flow)
    route = flow.route
    if route is not None:
        clone.route = FlowRoute(
            directions=[],
            switch_hops=list(route.switch_hops),
            terminal=route.terminal,
            meter_ids=list(route.meter_ids),
            punted=route.punted,
        )
    return clone


def _demand_vector(engine) -> Dict[Tuple, List[float]]:
    """direction key -> [total demand bps, total fairness weight] over
    this engine's active flows."""
    vector: Dict[Tuple, List[float]] = {}
    for flow in engine.active_flows:
        route = flow.route
        if route is None:
            continue
        for direction in route.directions:
            entry = vector.get(direction.key)
            if entry is None:
                vector[direction.key] = [flow.demand_bps, flow.weight]
            else:
                entry[0] += flow.demand_bps
                entry[1] += flow.weight
    return vector


def _apply_externals(engine, externals, direction_index, registered) -> None:
    """Install one round's aggregate remote demands and re-solve."""
    incoming = set()
    for key, (demand, weight) in externals.items():
        direction = direction_index.get(tuple(key))
        if direction is None or demand <= 0:
            continue
        incoming.add(tuple(key))
        engine.set_external_demand(
            ("shard", tuple(key)), demand, [direction], weight=max(weight, 1e-9)
        )
    for stale in registered - incoming:
        engine.clear_external_demand(("shard", stale))
    registered.clear()
    registered.update(incoming)
    engine.recompute_rates()


def _fault_marker_path() -> str:
    explicit = os.environ.get(FAULT_MARKER_ENV)
    if explicit:
        return explicit
    # Workers share the coordinator as parent, so its pid names one
    # marker per run for original and respawned processes alike.
    return os.path.join(
        tempfile.gettempdir(), f"repro-shard-fault-{os.getppid()}"
    )


def _maybe_fault(shard: int, round_index: int) -> None:
    spec = os.environ.get(FAULT_ENV)
    if not spec:
        return
    try:
        target_shard, target_round = (int(x) for x in spec.split(":"))
    except ValueError:
        raise ExperimentError(
            f"{FAULT_ENV} must be '<shard>:<round>', got {spec!r}"
        ) from None
    if shard != target_shard or round_index != target_round:
        return
    marker = _fault_marker_path()
    if os.path.exists(marker):
        return  # already crashed once; the respawn proceeds
    with open(marker, "w") as handle:
        handle.write(spec)
    os._exit(FAULT_EXIT_CODE)


def _suffix_paths(scenario: dict, shard: int) -> dict:
    """Per-worker copies of file-writing knobs so k workers never race
    on one output path."""
    scenario = copy.deepcopy(scenario)
    telemetry = scenario.get("telemetry") or {}
    if telemetry.get("trace_path"):
        telemetry["trace_path"] = f"{telemetry['trace_path']}.shard{shard}"
    checkpoint = scenario.get("checkpoint") or {}
    if checkpoint.get("path"):
        checkpoint["path"] = f"{checkpoint['path']}.shard{shard}"
    return scenario


def _worker_checkpoint_path(checkpoint_dir: str, shard: int) -> str:
    return os.path.join(checkpoint_dir, f"shard-{shard}.ckpt")


def _write_boundary_checkpoint(horse, checkpoint_dir, shard, round_index):
    path = _worker_checkpoint_path(checkpoint_dir, shard)
    horse.checkpoint(path)
    # Sidecar pins which exchange round the snapshot has applied, so a
    # respawn knows where to resume the replay.
    with open(path + ".round", "w") as handle:
        handle.write(str(round_index))


def _try_restore(checkpoint_dir: str, shard: int, history: List[dict]):
    """Fast-forward a respawned worker from its last boundary
    checkpoint.  Returns ``(horse, start_round)`` or None when there is
    no usable checkpoint (the caller replays from t=0 instead)."""
    from ..core.simulator import Horse

    path = _worker_checkpoint_path(checkpoint_dir, shard)
    if not (os.path.exists(path) and os.path.exists(path + ".round")):
        return None
    try:
        with open(path + ".round") as handle:
            checkpointed_round = int(handle.read().strip())
        if not 0 <= checkpointed_round < len(history):
            return None
        horse = Horse.restore(path)
    except Exception:  # noqa: BLE001 - any corrupt checkpoint -> full replay
        return None
    return horse, checkpointed_round + 1


def _shard_worker(conn, payload: dict) -> None:
    """Worker process entry: simulate one domain, speak the barrier
    protocol on ``conn``, ship the shard result back at the end."""
    try:
        result = _shard_worker_run(conn, payload)
        conn.send(("result", result))
    except BaseException as exc:  # noqa: BLE001 - forwarded to coordinator
        import traceback

        try:
            conn.send(("error", f"{exc}\n{traceback.format_exc()}"))
        except OSError:
            pass
        raise
    finally:
        conn.close()


def _shard_worker_run(conn, payload: dict) -> dict:
    shard: int = payload["shard"]
    scenario = _suffix_paths(payload["scenario"], shard)
    assignment: Dict[str, int] = payload["assignment"]
    boundaries: List[float] = payload["boundaries"]
    history: List[dict] = payload["history"]
    checkpoint_dir: Optional[str] = payload["checkpoint_dir"]

    reset_id_counters()
    restored = None
    if checkpoint_dir and payload["respawned"]:
        restored = _try_restore(checkpoint_dir, shard, history)

    generated = [0]
    submitted = [0]

    def owns(flow: Flow) -> bool:
        generated[0] += 1
        mine = assignment.get(flow.src) == shard
        if mine:
            submitted[0] += 1
        return mine

    if restored is not None:
        horse, start_round = restored
        generated[0] = payload["generated"]
        submitted[0] = payload["submitted"]
    else:
        horse, fabric = build_horse(scenario, solver=payload["solver"])
        build_traffic(scenario.get("traffic", {}), horse, fabric, flow_filter=owns)
        horse.start_control_plane()
        start_round = 0

    engine = horse.engine
    direction_index = {
        direction.key: direction
        for link in horse.topology.links
        for direction in link.directions
    }
    registered: set = set()
    if restored is not None and start_round > 0:
        # The snapshot already carries the last applied round's external
        # demands; re-derive their keys so stale ones get cleared.
        for key, (demand, _weight) in history[start_round - 1].items():
            if demand > 0 and tuple(key) in direction_index:
                registered.add(tuple(key))
    telemetry = horse.telemetry

    for round_index, boundary in enumerate(boundaries):
        if round_index < start_round:
            continue
        _maybe_fault(shard, round_index)
        horse.sim.run(until=boundary)
        if round_index == len(boundaries) - 1:
            break
        if round_index < len(history):
            # Crash replay: the coordinator already decided this round.
            externals = history[round_index]
        else:
            vector = _demand_vector(engine)
            conn.send(("sync", round_index, vector, submitted[0], generated[0]))
            if telemetry.tracing_enabled:
                telemetry.trace.emit(
                    "shard.sync",
                    shard=shard,
                    round=round_index,
                    boundary=boundary,
                    exported=len(vector),
                )
            kind, got_round, externals = conn.recv()
            if kind != "externals" or got_round != round_index:
                raise ExperimentError(
                    f"shard {shard}: barrier protocol error "
                    f"(got {kind!r} for round {got_round})"
                )
        _apply_externals(engine, externals, direction_index, registered)
        if telemetry.tracing_enabled:
            telemetry.trace.emit(
                "shard.exchange",
                shard=shard,
                round=round_index,
                imported=len(externals),
            )
        if checkpoint_dir:
            _write_boundary_checkpoint(horse, checkpoint_dir, shard, round_index)
    engine.finish()
    return {
        "shard": shard,
        "events": horse.sim.fired_count,
        "sim_time_s": horse.sim.now,
        "generated": generated[0],
        "submitted": submitted[0],
        "flows": [_light_flow(f) for f in engine.flows.values()],
        "engine_summary": engine.summary(),
        "engine_stats": engine.engine_stats(),
        "rule_count": horse.controller.rule_count(),
        "link_max_utilization": horse.collector.max_link_utilization(),
        "link_mean_utilization": horse.collector.mean_link_utilization(),
        "notes": list(horse.compiled.notes) if horse.compiled else [],
    }


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
class _WorkerHandle:
    """One shard's process + pipe + replay history."""

    def __init__(self, context, base_payload: dict) -> None:
        self.context = context
        self.base_payload = base_payload
        self.history: List[dict] = []
        self.restarts = 0
        self.process = None
        self.conn = None

    @property
    def shard(self) -> int:
        return self.base_payload["shard"]

    def spawn(self, respawned: bool = False) -> None:
        parent_conn, child_conn = self.context.Pipe()
        payload = dict(self.base_payload)
        payload["history"] = list(self.history)
        payload["respawned"] = respawned
        self.process = self.context.Process(
            target=_shard_worker, args=(child_conn, payload), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def respawn(self) -> None:
        self.restarts += 1
        if self.restarts > MAX_RESTARTS:
            raise ExperimentError(
                f"shard {self.shard} crashed more than {MAX_RESTARTS} times; "
                "giving up"
            )
        if self.conn is not None:
            self.conn.close()
        self.spawn(respawned=True)

    def recv(self):
        """Receive one message, respawning through worker crashes."""
        while True:
            try:
                if self.conn.poll(0.25):
                    message = self.conn.recv()
                    if message[0] == "error":
                        raise ExperimentError(
                            f"shard {self.shard} failed:\n{message[1]}"
                        )
                    return message
                if not self.alive():
                    # Died without a message: crash. Replay and rejoin.
                    self.respawn()
            except (EOFError, OSError):
                self.respawn()

    def send(self, message) -> None:
        try:
            self.conn.send(message)
        except (BrokenPipeError, OSError):
            # The crash surfaces at the next recv; history already
            # carries this round for the replay.
            pass

    def shutdown(self) -> None:
        if self.conn is not None:
            self.conn.close()
        if self.process is not None and self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5)


def _merge_summaries(summaries: List[dict]) -> dict:
    merged: dict = {}
    for summary in summaries:
        for key, value in summary.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                merged[key] = merged.get(key, 0) + value
            else:
                merged.setdefault(key, value)
    return merged


def _merge_utilization(maps: List[dict]) -> dict:
    """Per-direction max across shard views.  Every shard simulates the
    full topology (own flows + remote aggregates), so each map covers
    every link; the highest reading is the best-informed one."""
    merged: dict = {}
    for mapping in maps:
        for key, value in mapping.items():
            if key not in merged or value > merged[key]:
                merged[key] = value
    return merged


def run_sharded(
    scenario: dict, solver: Optional[str] = None
) -> Tuple[RunResult, int]:
    """Run a scenario on the sharded parallel runtime.

    Returns ``(result, submitted_flow_count)``.  The scenario must
    declare ``"shards"`` with count > 1 and a finite ``"until"``
    horizon (open-ended draining has no conservative termination
    criterion across processes).
    """
    scenario = ensure_v1(scenario, warn=False)
    validate_scenario(scenario)
    config: HorseConfig = build_config(scenario, solver=solver)
    count = config.shard.count
    if count < 2:
        raise ExperimentError("run_sharded needs shards.count > 1")
    until = scenario.get("until")
    if until is None:
        raise ExperimentError(
            'sharded runs need a finite horizon: set "until" in the scenario'
        )
    topology, fabric = build_topology(scenario.get("topology", {}))
    if fabric is not None:
        raise ExperimentError("sharded runs do not support IXP-fabric scenarios yet")
    if count > len(topology.switches):
        raise ExperimentError(
            f"cannot split {len(topology.switches)} switch(es) into {count} shards"
        )
    plan = partition_topology(topology, count, config.shard.partition)
    quantum = derive_quantum(plan, config.shard.quantum_s)
    boundaries = quantum_boundaries(float(until), quantum)
    checkpoint_dir = config.shard.checkpoint_dir
    if checkpoint_dir:
        os.makedirs(checkpoint_dir, exist_ok=True)

    context = process_context()
    workers = [
        _WorkerHandle(
            context,
            {
                "shard": shard,
                "scenario": scenario,
                "solver": solver,
                "assignment": plan.assignment,
                "boundaries": boundaries,
                "checkpoint_dir": checkpoint_dir,
                "generated": 0,
                "submitted": 0,
            },
        )
        for shard in range(count)
    ]
    wall_start = _time.perf_counter()  # repro: noqa[DET001] - reported wall time; never feeds sim state
    results: List[dict] = []
    try:
        for worker in workers:
            worker.spawn()
        for round_index in range(len(boundaries) - 1):
            vectors: Dict[int, dict] = {}
            for worker in workers:
                kind, got_round, vector, n_submitted, n_generated = worker.recv()
                if kind != "sync" or got_round != round_index:
                    raise ExperimentError(
                        f"shard {worker.shard}: expected sync for round "
                        f"{round_index}, got {kind!r}/{got_round}"
                    )
                vectors[worker.shard] = vector
                # Remembered so a checkpoint-restored respawn (which
                # skips traffic generation) still reports its counts.
                worker.base_payload["submitted"] = n_submitted
                worker.base_payload["generated"] = n_generated
            for worker in workers:
                externals: Dict[Tuple, List[float]] = {}
                for shard, vector in vectors.items():
                    if shard == worker.shard:
                        continue
                    for key, (demand, weight) in vector.items():
                        entry = externals.get(key)
                        if entry is None:
                            externals[key] = [demand, weight]
                        else:
                            entry[0] += demand
                            entry[1] += weight
                # Append before sending: whether the worker crashes just
                # before or after receiving this round, the replay sees
                # the same decision.
                worker.history.append(externals)
                worker.send(("externals", round_index, externals))
        for worker in workers:
            kind, payload = worker.recv()
            if kind != "result":
                raise ExperimentError(
                    f"shard {worker.shard}: expected result, got {kind!r}"
                )
            results.append(payload)
    finally:
        for worker in workers:
            worker.shutdown()
    wall = _time.perf_counter() - wall_start  # repro: noqa[DET001] - reported wall time; never feeds sim state

    results.sort(key=lambda r: r["shard"])
    flows = sorted(
        (flow for payload in results for flow in payload["flows"]),
        key=lambda f: f.flow_id,
    )
    submitted = sum(payload["submitted"] for payload in results)
    result = RunResult(
        wall_time_s=wall,
        sim_time_s=max(payload["sim_time_s"] for payload in results),
        events=sum(payload["events"] for payload in results),
        engine_summary=_merge_summaries(
            [payload["engine_summary"] for payload in results]
        ),
        flows=flows,
        rule_count=results[0]["rule_count"],
        engine_stats={
            "engine": "sharded",
            "shards": count,
            "quantum_s": quantum,
            "rounds": len(boundaries) - 1,
            "restarts": sum(worker.restarts for worker in workers),
            "partition": plan.summary(),
            "per_shard": [payload["engine_stats"] for payload in results],
        },
        link_max_utilization=_merge_utilization(
            [payload["link_max_utilization"] for payload in results]
        ),
        link_mean_utilization=_merge_utilization(
            [payload["link_mean_utilization"] for payload in results]
        ),
        monitor_samples=[],
        metrics={},
        notes=results[0]["notes"],
    )
    return result, submitted
