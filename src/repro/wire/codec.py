"""Binary OpenFlow 1.3 codec for the modeled message subset.

Framing is the OpenFlow 1.3 wire header — ``version(u8)=0x04,
type(u8), length(u16), xid(u32)`` with the standard type codes
(FLOW_MOD=14, PACKET_IN=10, MULTIPART_REQUEST=18, ...) — so captures
classify correctly.  Message *bodies* follow the compact deterministic
"repro profile" documented in docs/wire-protocol.md: every body starts
with the 64-bit datapath id (real OpenFlow keeps the dpid implicit per
connection; carrying it makes the codec a symmetric, self-contained
mapping onto :mod:`repro.openflow.messages`, whose dataclasses stay the
single source of truth).  Multipart requests/replies carry the standard
subtype right after the dpid.

Every decoding failure — truncated body, trailing bytes, unknown type,
unsupported version, out-of-range field — raises
:class:`~repro.errors.WireError`; the server loop turns that into an
ErrorMsg frame instead of crashing.  :func:`encode` raises the same
type for values that do not fit their wire field.

All integers are big-endian (network order).  Floats are IEEE-754
binary64, so ``decode(encode(m)) == m`` is bitwise for every message.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Tuple, Type

from ..errors import WireError
from ..net.address import IPv4Address, IPv4Network, MacAddress
from ..openflow.action import (
    Action,
    ApplyActions,
    Drop,
    Flood,
    GotoTable,
    GroupAction,
    Instruction,
    MeterInstruction,
    Output,
    PopVlan,
    PushVlan,
    SetField,
    ToController,
)
from ..openflow.group import Bucket, GroupType
from ..openflow.headers import HeaderFields
from ..openflow.match import Match
from ..openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMsg,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowModCommand,
    FlowRemoved,
    FlowRemovedReason,
    FlowStatsReply,
    FlowStatsRequest,
    GroupMod,
    GroupModCommand,
    Hello,
    Message,
    MeterMod,
    MeterModCommand,
    PacketIn,
    PacketInReason,
    PacketOut,
    PortStatsReply,
    PortStatsRequest,
    PortStatus,
    PortStatusReason,
    TableStatsReply,
    TableStatsRequest,
)
from ..openflow.meter import DropBand

#: OpenFlow 1.3 wire protocol version.
WIRE_VERSION = 0x04

#: Wire header: version, type, length, xid.
_HEADER = struct.Struct("!BBHI")
HEADER_SIZE = _HEADER.size

#: Hard ceiling on one frame (the header length field is u16).
MAX_FRAME_SIZE = 0xFFFF

# OpenFlow 1.3 message type codes (spec Table: ofp_type).
OFPT_HELLO = 0
OFPT_ERROR = 1
OFPT_ECHO_REQUEST = 2
OFPT_ECHO_REPLY = 3
OFPT_FEATURES_REQUEST = 5
OFPT_FEATURES_REPLY = 6
OFPT_PACKET_IN = 10
OFPT_FLOW_REMOVED = 11
OFPT_PORT_STATUS = 12
OFPT_PACKET_OUT = 13
OFPT_FLOW_MOD = 14
OFPT_GROUP_MOD = 15
OFPT_MULTIPART_REQUEST = 18
OFPT_MULTIPART_REPLY = 19
OFPT_BARRIER_REQUEST = 20
OFPT_BARRIER_REPLY = 21
OFPT_METER_MOD = 29

# Multipart subtypes (spec: ofp_multipart_type).
OFPMP_FLOW = 1
OFPMP_TABLE = 3
OFPMP_PORT_STATS = 4

_ENUM_CODES = {
    FlowModCommand: {
        FlowModCommand.ADD: 0,
        FlowModCommand.MODIFY: 1,
        FlowModCommand.MODIFY_STRICT: 2,
        FlowModCommand.DELETE: 3,
        FlowModCommand.DELETE_STRICT: 4,
    },
    GroupModCommand: {
        GroupModCommand.ADD: 0,
        GroupModCommand.MODIFY: 1,
        GroupModCommand.DELETE: 2,
    },
    MeterModCommand: {
        MeterModCommand.ADD: 0,
        MeterModCommand.MODIFY: 1,
        MeterModCommand.DELETE: 2,
    },
    GroupType: {
        GroupType.ALL: 0,
        GroupType.SELECT: 1,
        GroupType.INDIRECT: 2,
        GroupType.FAST_FAILOVER: 3,
    },
    PacketInReason: {
        PacketInReason.NO_MATCH: 0,
        PacketInReason.ACTION: 1,
    },
    FlowRemovedReason: {
        FlowRemovedReason.IDLE_TIMEOUT: 0,
        FlowRemovedReason.HARD_TIMEOUT: 1,
        FlowRemovedReason.DELETE: 2,
    },
    PortStatusReason: {
        PortStatusReason.ADD: 0,
        PortStatusReason.DELETE: 1,
        PortStatusReason.MODIFY: 2,
    },
}
_ENUM_DECODE = {
    enum_cls: {code: member for member, code in mapping.items()}
    for enum_cls, mapping in _ENUM_CODES.items()
}


# ----------------------------------------------------------------------
# Primitive writer / reader
# ----------------------------------------------------------------------


class _Writer:
    """Accumulates a message body with range-checked primitives."""

    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def _int(self, value, bits: int, signed: bool, label: str) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise WireError(f"{label} must be an int, got {value!r}")
        try:
            self._parts.append(
                value.to_bytes(bits // 8, "big", signed=signed)
            )
        except OverflowError:
            raise WireError(
                f"{label} out of range for {'i' if signed else 'u'}{bits}: "
                f"{value}"
            ) from None

    def u8(self, value: int, label: str = "field") -> None:
        self._int(value, 8, False, label)

    def u16(self, value: int, label: str = "field") -> None:
        self._int(value, 16, False, label)

    def u32(self, value: int, label: str = "field") -> None:
        self._int(value, 32, False, label)

    def u64(self, value: int, label: str = "field") -> None:
        self._int(value, 64, False, label)

    def i32(self, value: int, label: str = "field") -> None:
        self._int(value, 32, True, label)

    def i64(self, value: int, label: str = "field") -> None:
        self._int(value, 64, True, label)

    def f64(self, value: float, label: str = "field") -> None:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise WireError(f"{label} must be a float, got {value!r}")
        self._parts.append(struct.pack("!d", float(value)))

    def boolean(self, value: bool) -> None:
        self._parts.append(b"\x01" if value else b"\x00")

    def raw(self, data: bytes) -> None:
        self._parts.append(data)

    def blob(self, data: bytes, label: str = "bytes") -> None:
        if not isinstance(data, (bytes, bytearray)):
            raise WireError(f"{label} must be bytes, got {data!r}")
        self.u32(len(data), label + " length")
        self._parts.append(bytes(data))

    def text(self, value: str, label: str = "string") -> None:
        if not isinstance(value, str):
            raise WireError(f"{label} must be a str, got {value!r}")
        self.blob(value.encode("utf-8"), label)

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class _Reader:
    """Consumes a message body; every under/overrun is a WireError."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def take(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise WireError(
                f"truncated body: wanted {n} bytes at offset {self._pos}, "
                f"have {len(self._data) - self._pos}"
            )
        out = self._data[self._pos : self._pos + n]
        self._pos += n
        return out

    def _int(self, bits: int, signed: bool) -> int:
        return int.from_bytes(self.take(bits // 8), "big", signed=signed)

    def u8(self) -> int:
        return self._int(8, False)

    def u16(self) -> int:
        return self._int(16, False)

    def u32(self) -> int:
        return self._int(32, False)

    def u64(self) -> int:
        return self._int(64, False)

    def i32(self) -> int:
        return self._int(32, True)

    def i64(self) -> int:
        return self._int(64, True)

    def f64(self) -> float:
        return struct.unpack("!d", self.take(8))[0]

    def boolean(self) -> bool:
        return self.take(1) != b"\x00"

    def blob(self) -> bytes:
        return self.take(self.u32())

    def text(self) -> str:
        try:
            return self.blob().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireError(f"invalid utf-8 string: {exc}") from None

    def expect_end(self) -> None:
        if self._pos != len(self._data):
            raise WireError(
                f"{len(self._data) - self._pos} trailing bytes after body"
            )


# ----------------------------------------------------------------------
# Shared field encodings
# ----------------------------------------------------------------------


def _enum_code(value, label: str) -> int:
    mapping = _ENUM_CODES.get(type(value))
    if mapping is None or value not in mapping:
        raise WireError(f"{label}: unsupported enum value {value!r}")
    return mapping[value]


def _enum_member(enum_cls, code: int, label: str):
    try:
        return _ENUM_DECODE[enum_cls][code]
    except KeyError:
        raise WireError(f"{label}: unknown code {code}") from None


def _w_mac(w: _Writer, mac: MacAddress) -> None:
    w.raw(int(mac).to_bytes(6, "big"))


def _r_mac(r: _Reader) -> MacAddress:
    return MacAddress(int.from_bytes(r.take(6), "big"))


def _w_ipmatch(w: _Writer, value) -> None:
    if isinstance(value, IPv4Network):
        w.u8(1)
        w.u32(int(value.network), "ip network")
        w.u8(value.prefix_len, "prefix length")
    elif isinstance(value, IPv4Address):
        w.u8(0)
        w.u32(int(value), "ip address")
    else:
        raise WireError(f"ip match must be IPv4Address/IPv4Network, got {value!r}")


def _r_ipmatch(r: _Reader):
    tag = r.u8()
    if tag == 0:
        return IPv4Address(r.u32())
    if tag == 1:
        address = r.u32()
        prefix = r.u8()
        if prefix > 32:
            raise WireError(f"prefix length out of range: {prefix}")
        return IPv4Network((address, prefix))
    raise WireError(f"unknown ip-match tag {tag}")


#: (field name, writer, reader) triples in wire order for Match.
_MATCH_FIELDS: Tuple[Tuple[str, Callable, Callable], ...] = (
    ("in_port", lambda w, v: w.i32(v, "in_port"), _Reader.i32),
    ("eth_src", _w_mac, _r_mac),
    ("eth_dst", _w_mac, _r_mac),
    ("eth_type", lambda w, v: w.u16(v, "eth_type"), _Reader.u16),
    ("vlan_vid", lambda w, v: w.u16(v, "vlan_vid"), _Reader.u16),
    ("ip_src", _w_ipmatch, _r_ipmatch),
    ("ip_dst", _w_ipmatch, _r_ipmatch),
    ("ip_proto", lambda w, v: w.u8(v, "ip_proto"), _Reader.u8),
    ("tp_src", lambda w, v: w.u16(v, "tp_src"), _Reader.u16),
    ("tp_dst", lambda w, v: w.u16(v, "tp_dst"), _Reader.u16),
)

#: Same for HeaderFields (no in_port; addresses are exact, not prefixes).
_HEADER_FIELDS: Tuple[Tuple[str, Callable, Callable], ...] = (
    ("eth_src", _w_mac, _r_mac),
    ("eth_dst", _w_mac, _r_mac),
    ("eth_type", lambda w, v: w.u16(v, "eth_type"), _Reader.u16),
    ("vlan_vid", lambda w, v: w.u16(v, "vlan_vid"), _Reader.u16),
    ("ip_src", lambda w, v: w.u32(int(v), "ip_src"), lambda r: IPv4Address(r.u32())),
    ("ip_dst", lambda w, v: w.u32(int(v), "ip_dst"), lambda r: IPv4Address(r.u32())),
    ("ip_proto", lambda w, v: w.u8(v, "ip_proto"), _Reader.u8),
    ("tp_src", lambda w, v: w.u16(v, "tp_src"), _Reader.u16),
    ("tp_dst", lambda w, v: w.u16(v, "tp_dst"), _Reader.u16),
)


def _w_fieldset(w: _Writer, obj, spec) -> None:
    """Presence bitmap + the set fields, in declared order."""
    bitmap = 0
    for index, (name, _writer, _reader) in enumerate(spec):
        if getattr(obj, name) is not None:
            bitmap |= 1 << index
    w.u16(bitmap, "field bitmap")
    for index, (name, writer, _reader) in enumerate(spec):
        if bitmap & (1 << index):
            writer(w, getattr(obj, name))


def _r_fieldset(r: _Reader, spec) -> dict:
    bitmap = r.u16()
    if bitmap >> len(spec):
        raise WireError(f"unknown bits in field bitmap: {bitmap:#06x}")
    fields = {}
    for index, (name, _writer, reader) in enumerate(spec):
        if bitmap & (1 << index):
            fields[name] = reader(r)
    return fields


def _w_match(w: _Writer, match: Match) -> None:
    if not isinstance(match, Match):
        raise WireError(f"expected a Match, got {match!r}")
    _w_fieldset(w, match, _MATCH_FIELDS)


def _r_match(r: _Reader) -> Match:
    return Match(**_r_fieldset(r, _MATCH_FIELDS))


def _w_headers(w: _Writer, headers: HeaderFields) -> None:
    if not isinstance(headers, HeaderFields):
        raise WireError(f"expected HeaderFields, got {headers!r}")
    _w_fieldset(w, headers, _HEADER_FIELDS)


def _r_headers(r: _Reader) -> HeaderFields:
    return HeaderFields(**_r_fieldset(r, _HEADER_FIELDS))


def _w_opt(w: _Writer, value, writer) -> None:
    if value is None:
        w.u8(0)
    else:
        w.u8(1)
        writer(w, value)


def _r_opt(r: _Reader, reader):
    flag = r.u8()
    if flag == 0:
        return None
    if flag != 1:
        raise WireError(f"optional flag must be 0/1, got {flag}")
    return reader(r)


# ----------------------------------------------------------------------
# Actions / instructions / buckets / bands
# ----------------------------------------------------------------------

_ACTION_TAGS: Dict[type, int] = {
    Output: 0,
    Flood: 1,
    Drop: 2,
    ToController: 3,
    SetField: 4,
    GroupAction: 5,
    PushVlan: 6,
    PopVlan: 7,
}


def _w_action(w: _Writer, action: Action) -> None:
    tag = _ACTION_TAGS.get(type(action))
    if tag is None:
        raise WireError(f"unsupported action {action!r}")
    w.u8(tag)
    if isinstance(action, Output):
        w.i32(action.port, "output port")
    elif isinstance(action, SetField):
        try:
            field_code = SetField.ALLOWED_FIELDS.index(action.field_name)
        except ValueError:
            raise WireError(
                f"unknown set-field name {action.field_name!r}"
            ) from None
        w.u8(field_code)
        _w_value(w, action.value)
    elif isinstance(action, GroupAction):
        w.u32(action.group_id, "group id")
    elif isinstance(action, PushVlan):
        w.u16(action.vlan_vid, "vlan id")


def _r_action(r: _Reader) -> Action:
    tag = r.u8()
    if tag == 0:
        return Output(r.i32())
    if tag == 1:
        return Flood()
    if tag == 2:
        return Drop()
    if tag == 3:
        return ToController()
    if tag == 4:
        field_code = r.u8()
        if field_code >= len(SetField.ALLOWED_FIELDS):
            raise WireError(f"unknown set-field code {field_code}")
        return SetField(SetField.ALLOWED_FIELDS[field_code], _r_value(r))
    if tag == 5:
        return GroupAction(r.u32())
    if tag == 6:
        vid = r.u16()
        if not 1 <= vid <= 4094:
            raise WireError(f"vlan id out of range: {vid}")
        return PushVlan(vid)
    if tag == 7:
        return PopVlan()
    raise WireError(f"unknown action tag {tag}")


def _w_actions(w: _Writer, actions) -> None:
    w.u16(len(actions), "action count")
    for action in actions:
        _w_action(w, action)


def _r_actions(r: _Reader) -> Tuple[Action, ...]:
    return tuple(_r_action(r) for _ in range(r.u16()))


def _w_instruction(w: _Writer, instruction: Instruction) -> None:
    if isinstance(instruction, ApplyActions):
        w.u8(0)
        _w_actions(w, instruction.actions)
    elif isinstance(instruction, GotoTable):
        w.u8(1)
        w.u8(instruction.table_id, "goto table")
    elif isinstance(instruction, MeterInstruction):
        w.u8(2)
        w.u32(instruction.meter_id, "meter id")
    else:
        raise WireError(f"unsupported instruction {instruction!r}")


def _r_instruction(r: _Reader) -> Instruction:
    tag = r.u8()
    if tag == 0:
        return ApplyActions(_r_actions(r))
    if tag == 1:
        return GotoTable(r.u8())
    if tag == 2:
        return MeterInstruction(r.u32())
    raise WireError(f"unknown instruction tag {tag}")


def _w_instructions(w: _Writer, instructions) -> None:
    w.u16(len(instructions), "instruction count")
    for instruction in instructions:
        _w_instruction(w, instruction)


def _r_instructions(r: _Reader) -> Tuple[Instruction, ...]:
    return tuple(_r_instruction(r) for _ in range(r.u16()))


def _w_bucket(w: _Writer, bucket: Bucket) -> None:
    w.u32(bucket.weight, "bucket weight")
    _w_opt(w, bucket.watch_port, lambda w_, v: w_.i32(v, "watch port"))
    _w_actions(w, bucket.actions)


def _r_bucket(r: _Reader) -> Bucket:
    weight = r.u32()
    watch_port = _r_opt(r, _Reader.i32)
    return Bucket(_r_actions(r), weight=weight, watch_port=watch_port)


def _w_band(w: _Writer, band: DropBand) -> None:
    w.f64(band.rate_bps, "band rate")
    w.f64(band.burst_bits, "band burst")


def _r_band(r: _Reader) -> DropBand:
    rate = r.f64()
    burst = r.f64()
    try:
        return DropBand(rate_bps=rate, burst_bits=burst)
    except Exception as exc:
        raise WireError(f"invalid drop band: {exc}") from None


# ----------------------------------------------------------------------
# Tagged value codec (stats dicts, set-field values)
# ----------------------------------------------------------------------


def _w_value(w: _Writer, value) -> None:
    if value is None:
        w.u8(0)
    elif value is False:
        w.u8(1)
    elif value is True:
        w.u8(2)
    elif isinstance(value, int):
        w.u8(3)
        w.i64(value, "int value")
    elif isinstance(value, float):
        w.u8(4)
        w.f64(value, "float value")
    elif isinstance(value, str):
        w.u8(5)
        w.text(value)
    elif isinstance(value, (bytes, bytearray)):
        w.u8(6)
        w.blob(bytes(value))
    elif isinstance(value, MacAddress):
        w.u8(7)
        _w_mac(w, value)
    elif isinstance(value, IPv4Address):
        w.u8(8)
        w.u32(int(value), "ip value")
    elif isinstance(value, IPv4Network):
        w.u8(9)
        w.u32(int(value.network), "network value")
        w.u8(value.prefix_len, "prefix length")
    elif isinstance(value, Match):
        w.u8(10)
        _w_match(w, value)
    elif isinstance(value, HeaderFields):
        w.u8(11)
        _w_headers(w, value)
    elif isinstance(value, list):
        w.u8(12)
        w.u32(len(value), "list length")
        for item in value:
            _w_value(w, item)
    elif isinstance(value, tuple):
        w.u8(13)
        w.u32(len(value), "tuple length")
        for item in value:
            _w_value(w, item)
    elif isinstance(value, dict):
        w.u8(14)
        w.u32(len(value), "dict length")
        for key, item in value.items():
            _w_value(w, key)
            _w_value(w, item)
    else:
        raise WireError(f"value {value!r} is not wire-encodable")


def _r_value(r: _Reader):
    tag = r.u8()
    if tag == 0:
        return None
    if tag == 1:
        return False
    if tag == 2:
        return True
    if tag == 3:
        return r.i64()
    if tag == 4:
        return r.f64()
    if tag == 5:
        return r.text()
    if tag == 6:
        return r.blob()
    if tag == 7:
        return _r_mac(r)
    if tag == 8:
        return IPv4Address(r.u32())
    if tag == 9:
        address = r.u32()
        prefix = r.u8()
        if prefix > 32:
            raise WireError(f"prefix length out of range: {prefix}")
        return IPv4Network((address, prefix))
    if tag == 10:
        return _r_match(r)
    if tag == 11:
        return _r_headers(r)
    if tag == 12:
        return [_r_value(r) for _ in range(r.u32())]
    if tag == 13:
        return tuple(_r_value(r) for _ in range(r.u32()))
    if tag == 14:
        return {_r_value(r): _r_value(r) for _ in range(r.u32())}
    raise WireError(f"unknown value tag {tag}")


def _w_stats(w: _Writer, stats: List[dict]) -> None:
    w.u32(len(stats), "stats count")
    for entry in stats:
        if not isinstance(entry, dict):
            raise WireError(f"stats entries must be dicts, got {entry!r}")
        _w_value(w, entry)


def _r_stats(r: _Reader) -> List[dict]:
    count = r.u32()
    out = []
    for _ in range(count):
        entry = _r_value(r)
        if not isinstance(entry, dict):
            raise WireError(f"stats entry decoded as {type(entry).__name__}")
        out.append(entry)
    return out


# ----------------------------------------------------------------------
# Per-message bodies
# ----------------------------------------------------------------------


def _w_hello(w: _Writer, m: Hello) -> None:
    w.u8(m.version, "hello version")


def _r_hello(r: _Reader, dpid: int, xid: int) -> Hello:
    return Hello(dpid=dpid, xid=xid, version=r.u8())


def _w_echo(w: _Writer, m) -> None:
    w.blob(m.payload, "echo payload")


def _w_features_reply(w: _Writer, m: FeaturesReply) -> None:
    w.u32(m.n_buffers, "n_buffers")
    w.u8(m.n_tables, "n_tables")
    w.u8(m.auxiliary_id, "auxiliary_id")
    w.u32(m.capabilities, "capabilities")
    w.u32(m.reserved, "reserved")


def _r_features_reply(r: _Reader, dpid: int, xid: int) -> FeaturesReply:
    return FeaturesReply(
        dpid=dpid,
        xid=xid,
        n_buffers=r.u32(),
        n_tables=r.u8(),
        auxiliary_id=r.u8(),
        capabilities=r.u32(),
        reserved=r.u32(),
    )


def _w_flow_mod(w: _Writer, m: FlowMod) -> None:
    w.u8(_enum_code(m.command, "flow-mod command"))
    w.u8(m.table_id, "table id")
    _w_match(w, m.match)
    w.u32(m.priority, "priority")
    _w_instructions(w, m.instructions)
    w.f64(m.idle_timeout, "idle timeout")
    w.f64(m.hard_timeout, "hard timeout")
    w.u64(m.cookie, "cookie")
    w.boolean(m.check_overlap)


def _r_flow_mod(r: _Reader, dpid: int, xid: int) -> FlowMod:
    return FlowMod(
        dpid=dpid,
        xid=xid,
        command=_enum_member(FlowModCommand, r.u8(), "flow-mod command"),
        table_id=r.u8(),
        match=_r_match(r),
        priority=r.u32(),
        instructions=_r_instructions(r),
        idle_timeout=r.f64(),
        hard_timeout=r.f64(),
        cookie=r.u64(),
        check_overlap=r.boolean(),
    )


def _w_group_mod(w: _Writer, m: GroupMod) -> None:
    w.u8(_enum_code(m.command, "group-mod command"))
    w.u32(m.group_id, "group id")
    w.u8(_enum_code(m.group_type, "group type"))
    w.u16(len(m.buckets), "bucket count")
    for bucket in m.buckets:
        _w_bucket(w, bucket)


def _r_group_mod(r: _Reader, dpid: int, xid: int) -> GroupMod:
    return GroupMod(
        dpid=dpid,
        xid=xid,
        command=_enum_member(GroupModCommand, r.u8(), "group-mod command"),
        group_id=r.u32(),
        group_type=_enum_member(GroupType, r.u8(), "group type"),
        buckets=tuple(_r_bucket(r) for _ in range(r.u16())),
    )


def _w_meter_mod(w: _Writer, m: MeterMod) -> None:
    w.u8(_enum_code(m.command, "meter-mod command"))
    w.u32(m.meter_id, "meter id")
    w.u16(len(m.bands), "band count")
    for band in m.bands:
        _w_band(w, band)


def _r_meter_mod(r: _Reader, dpid: int, xid: int) -> MeterMod:
    return MeterMod(
        dpid=dpid,
        xid=xid,
        command=_enum_member(MeterModCommand, r.u8(), "meter-mod command"),
        meter_id=r.u32(),
        bands=tuple(_r_band(r) for _ in range(r.u16())),
    )


def _w_packet_out(w: _Writer, m: PacketOut) -> None:
    w.i32(m.in_port, "in_port")
    _w_opt(w, m.headers, _w_headers)
    w.u16(len(m.out_ports), "out-port count")
    for port in m.out_ports:
        w.i32(port, "out port")
    _w_opt(w, m.buffer_id, lambda w_, v: w_.u32(v, "buffer id"))


def _r_packet_out(r: _Reader, dpid: int, xid: int) -> PacketOut:
    return PacketOut(
        dpid=dpid,
        xid=xid,
        in_port=r.i32(),
        headers=_r_opt(r, _r_headers),
        out_ports=tuple(r.i32() for _ in range(r.u16())),
        buffer_id=_r_opt(r, _Reader.u32),
    )


def _w_packet_in(w: _Writer, m: PacketIn) -> None:
    w.i32(m.in_port, "in_port")
    w.u8(_enum_code(m.reason, "packet-in reason"))
    _w_opt(w, m.headers, _w_headers)
    w.f64(m.rate_bps, "rate")
    w.i64(m.size_bytes, "size")
    _w_opt(w, m.flow_id, lambda w_, v: w_.i64(v, "flow id"))


def _r_packet_in(r: _Reader, dpid: int, xid: int) -> PacketIn:
    return PacketIn(
        dpid=dpid,
        xid=xid,
        in_port=r.i32(),
        reason=_enum_member(PacketInReason, r.u8(), "packet-in reason"),
        headers=_r_opt(r, _r_headers),
        rate_bps=r.f64(),
        size_bytes=r.i64(),
        flow_id=_r_opt(r, _Reader.i64),
    )


def _w_flow_removed(w: _Writer, m: FlowRemoved) -> None:
    w.u8(m.table_id, "table id")
    _w_match(w, m.match)
    w.u32(m.priority, "priority")
    w.u8(_enum_code(m.reason, "flow-removed reason"))
    w.u64(m.cookie, "cookie")
    w.f64(m.duration_s, "duration")
    w.i64(m.packet_count, "packet count")
    w.i64(m.byte_count, "byte count")


def _r_flow_removed(r: _Reader, dpid: int, xid: int) -> FlowRemoved:
    return FlowRemoved(
        dpid=dpid,
        xid=xid,
        table_id=r.u8(),
        match=_r_match(r),
        priority=r.u32(),
        reason=_enum_member(FlowRemovedReason, r.u8(), "flow-removed reason"),
        cookie=r.u64(),
        duration_s=r.f64(),
        packet_count=r.i64(),
        byte_count=r.i64(),
    )


def _w_port_status(w: _Writer, m: PortStatus) -> None:
    w.i32(m.port_no, "port number")
    w.u8(_enum_code(m.reason, "port-status reason"))
    w.boolean(m.link_up)


def _r_port_status(r: _Reader, dpid: int, xid: int) -> PortStatus:
    return PortStatus(
        dpid=dpid,
        xid=xid,
        port_no=r.i32(),
        reason=_enum_member(PortStatusReason, r.u8(), "port-status reason"),
        link_up=r.boolean(),
    )


def _w_error(w: _Writer, m: ErrorMsg) -> None:
    w.text(m.error_type, "error type")
    w.text(m.detail, "error detail")
    w.u32(m.failed_xid, "failed xid")


def _r_error(r: _Reader, dpid: int, xid: int) -> ErrorMsg:
    return ErrorMsg(
        dpid=dpid,
        xid=xid,
        error_type=r.text(),
        detail=r.text(),
        failed_xid=r.u32(),
    )


def _w_flow_stats_request(w: _Writer, m: FlowStatsRequest) -> None:
    _w_opt(w, m.table_id, lambda w_, v: w_.u8(v, "table id"))
    _w_opt(w, m.match, _w_match)
    _w_opt(w, m.cookie, lambda w_, v: w_.u64(v, "cookie"))


def _r_flow_stats_request(r: _Reader, dpid: int, xid: int) -> FlowStatsRequest:
    return FlowStatsRequest(
        dpid=dpid,
        xid=xid,
        table_id=_r_opt(r, _Reader.u8),
        match=_r_opt(r, _r_match),
        cookie=_r_opt(r, _Reader.u64),
    )


def _w_port_stats_request(w: _Writer, m: PortStatsRequest) -> None:
    _w_opt(w, m.port_no, lambda w_, v: w_.i32(v, "port number"))


def _r_port_stats_request(r: _Reader, dpid: int, xid: int) -> PortStatsRequest:
    return PortStatsRequest(dpid=dpid, xid=xid, port_no=_r_opt(r, _Reader.i32))


def _w_nothing(w: _Writer, m: Message) -> None:
    pass


def _stats_reply_codec(cls):
    def _w(w: _Writer, m) -> None:
        _w_stats(w, m.stats)

    def _r(r: _Reader, dpid: int, xid: int):
        return cls(dpid=dpid, xid=xid, stats=_r_stats(r))

    return _w, _r


_w_port_stats_reply, _r_port_stats_reply = _stats_reply_codec(PortStatsReply)
_w_flow_stats_reply, _r_flow_stats_reply = _stats_reply_codec(FlowStatsReply)
_w_table_stats_reply, _r_table_stats_reply = _stats_reply_codec(TableStatsReply)


def _simple_decoder(cls):
    def _r(r: _Reader, dpid: int, xid: int):
        return cls(dpid=dpid, xid=xid)

    return _r


def _echo_decoder(cls):
    def _r(r: _Reader, dpid: int, xid: int):
        return cls(dpid=dpid, xid=xid, payload=r.blob())

    return _r


#: message class -> (wire type, multipart subtype or None, body writer)
_ENCODERS: Dict[Type[Message], Tuple[int, Optional[int], Callable]] = {
    Hello: (OFPT_HELLO, None, _w_hello),
    ErrorMsg: (OFPT_ERROR, None, _w_error),
    EchoRequest: (OFPT_ECHO_REQUEST, None, _w_echo),
    EchoReply: (OFPT_ECHO_REPLY, None, _w_echo),
    FeaturesRequest: (OFPT_FEATURES_REQUEST, None, _w_nothing),
    FeaturesReply: (OFPT_FEATURES_REPLY, None, _w_features_reply),
    PacketIn: (OFPT_PACKET_IN, None, _w_packet_in),
    FlowRemoved: (OFPT_FLOW_REMOVED, None, _w_flow_removed),
    PortStatus: (OFPT_PORT_STATUS, None, _w_port_status),
    PacketOut: (OFPT_PACKET_OUT, None, _w_packet_out),
    FlowMod: (OFPT_FLOW_MOD, None, _w_flow_mod),
    GroupMod: (OFPT_GROUP_MOD, None, _w_group_mod),
    MeterMod: (OFPT_METER_MOD, None, _w_meter_mod),
    BarrierRequest: (OFPT_BARRIER_REQUEST, None, _w_nothing),
    BarrierReply: (OFPT_BARRIER_REPLY, None, _w_nothing),
    FlowStatsRequest: (OFPT_MULTIPART_REQUEST, OFPMP_FLOW, _w_flow_stats_request),
    TableStatsRequest: (OFPT_MULTIPART_REQUEST, OFPMP_TABLE, _w_nothing),
    PortStatsRequest: (
        OFPT_MULTIPART_REQUEST,
        OFPMP_PORT_STATS,
        _w_port_stats_request,
    ),
    FlowStatsReply: (OFPT_MULTIPART_REPLY, OFPMP_FLOW, _w_flow_stats_reply),
    TableStatsReply: (OFPT_MULTIPART_REPLY, OFPMP_TABLE, _w_table_stats_reply),
    PortStatsReply: (OFPT_MULTIPART_REPLY, OFPMP_PORT_STATS, _w_port_stats_reply),
}

#: (wire type, subtype or None) -> body reader
_DECODERS: Dict[Tuple[int, Optional[int]], Callable] = {
    (OFPT_HELLO, None): _r_hello,
    (OFPT_ERROR, None): _r_error,
    (OFPT_ECHO_REQUEST, None): _echo_decoder(EchoRequest),
    (OFPT_ECHO_REPLY, None): _echo_decoder(EchoReply),
    (OFPT_FEATURES_REQUEST, None): _simple_decoder(FeaturesRequest),
    (OFPT_FEATURES_REPLY, None): _r_features_reply,
    (OFPT_PACKET_IN, None): _r_packet_in,
    (OFPT_FLOW_REMOVED, None): _r_flow_removed,
    (OFPT_PORT_STATUS, None): _r_port_status,
    (OFPT_PACKET_OUT, None): _r_packet_out,
    (OFPT_FLOW_MOD, None): _r_flow_mod,
    (OFPT_GROUP_MOD, None): _r_group_mod,
    (OFPT_METER_MOD, None): _r_meter_mod,
    (OFPT_BARRIER_REQUEST, None): _simple_decoder(BarrierRequest),
    (OFPT_BARRIER_REPLY, None): _simple_decoder(BarrierReply),
    (OFPT_MULTIPART_REQUEST, OFPMP_FLOW): _r_flow_stats_request,
    (OFPT_MULTIPART_REQUEST, OFPMP_TABLE): _simple_decoder(TableStatsRequest),
    (OFPT_MULTIPART_REQUEST, OFPMP_PORT_STATS): _r_port_stats_request,
    (OFPT_MULTIPART_REPLY, OFPMP_FLOW): _r_flow_stats_reply,
    (OFPT_MULTIPART_REPLY, OFPMP_TABLE): _r_table_stats_reply,
    (OFPT_MULTIPART_REPLY, OFPMP_PORT_STATS): _r_port_stats_reply,
}


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------


def encode(message: Message) -> bytes:
    """One complete wire frame for an in-memory control message."""
    entry = _ENCODERS.get(type(message))
    if entry is None:
        raise WireError(
            f"message type {type(message).__name__} has no wire encoding"
        )
    wire_type, subtype, writer = entry
    w = _Writer()
    w.u64(message.dpid, "dpid")
    if subtype is not None:
        w.u16(subtype, "multipart subtype")
    writer(w, message)
    body = w.getvalue()
    length = HEADER_SIZE + len(body)
    if length > MAX_FRAME_SIZE:
        raise WireError(
            f"{type(message).__name__} frame is {length} bytes "
            f"(wire maximum {MAX_FRAME_SIZE})"
        )
    if not isinstance(message.xid, int) or not 0 <= message.xid < (1 << 32):
        raise WireError(f"xid out of u32 range: {message.xid!r}")
    return _HEADER.pack(WIRE_VERSION, wire_type, length, message.xid) + body


def decode(frame: bytes) -> Message:
    """Decode one complete frame back into its message dataclass."""
    if len(frame) < HEADER_SIZE:
        raise WireError(f"frame shorter than header: {len(frame)} bytes")
    version, wire_type, length, xid = _HEADER.unpack_from(frame)
    if version != WIRE_VERSION:
        raise WireError(
            f"unsupported OpenFlow version {version:#04x} "
            f"(only 1.3 / {WIRE_VERSION:#04x})"
        )
    if length != len(frame):
        raise WireError(
            f"frame length field says {length}, got {len(frame)} bytes"
        )
    r = _Reader(frame[HEADER_SIZE:])
    dpid = r.u64()
    subtype: Optional[int] = None
    if wire_type in (OFPT_MULTIPART_REQUEST, OFPT_MULTIPART_REPLY):
        subtype = r.u16()
    reader = _DECODERS.get((wire_type, subtype))
    if reader is None:
        raise WireError(
            f"unknown message type {wire_type}"
            + (f" subtype {subtype}" if subtype is not None else "")
        )
    message = reader(r, dpid, xid)
    r.expect_end()
    return message


class FrameReader:
    """Reassembles wire frames from a TCP byte stream.

    Feed arbitrary chunks with :meth:`feed`; iterate complete raw frames
    with :meth:`frames`.  A partial frame simply waits for more bytes; a
    malformed header (bad version, impossible length) raises
    :class:`~repro.errors.WireError` because the stream cannot be
    resynchronized after it.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    def frames(self):
        """Yield complete raw frames accumulated so far."""
        while len(self._buffer) >= HEADER_SIZE:
            version, _wire_type, length, _xid = _HEADER.unpack_from(
                bytes(self._buffer[:HEADER_SIZE])
            )
            if version != WIRE_VERSION:
                raise WireError(
                    f"unsupported OpenFlow version {version:#04x} on stream"
                )
            if length < HEADER_SIZE:
                raise WireError(
                    f"frame length {length} shorter than the header"
                )
            if len(self._buffer) < length:
                return  # wait for the rest of the frame
            frame = bytes(self._buffer[:length])
            del self._buffer[:length]
            yield frame

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)
