"""Bridges the control channel onto the wire.

Two classes share the work:

* :class:`WireRuntime` owns the moving parts — the TCP server, the
  :class:`~repro.wire.timegate.TimeGate`, the optional built-in client
  thread — and implements the simulation-thread logic: sending
  northbound frames, draining the server's inbox, and applying decoded
  southbound messages through the channel's public entry points.
* :class:`WireTransport` is the thin
  :class:`~repro.control.transport.ControlTransport` adapter the
  channel calls; it delegates everything to the runtime.

Threading contract: switch pipelines are only ever mutated from the
simulation thread.  The asyncio thread decodes frames and queues them;
this module's methods (all called on the simulation thread) drain the
queue and apply, so a wire run executes control messages with exactly
the same semantics — and the same channel stats — as an in-process run.

Answer semantics: a packet-out whose ``buffer_id`` names a packet-in
xid *answers* that packet-in.  With ``dilation == 0`` the simulation
thread waits inline for the answer, so the reply takes effect at the
same simulated instant as the in-process synchronous channel — which is
what makes wire runs digest-identical to in-proc runs.  An answering
packet-out with no output ports means "no decision" (the in-process
``None``).  With ``dilation > 0`` packet-ins do not block; answers are
collected at sync-quantum boundaries and the measured wall round trip,
times the dilation factor, is charged as simulated latency on the
packet-out delivery.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

from ..control.transport import ControlTransport
from ..errors import ControlPlaneError, WireError
from ..openflow.messages import (
    ErrorMsg,
    Message,
    PacketIn,
    PacketOut,
)
from .client import WireControllerClient
from .server import WireServer
from .timegate import TimeGate

#: Sentinel distinguishing "this message was not the awaited answer"
#: from a real answer of None (= controller made no decision).
_NO_ANSWER = object()


class WireTransport(ControlTransport):
    """ControlTransport adapter over a :class:`WireRuntime`."""

    external = True

    def __init__(self, runtime: "WireRuntime") -> None:
        self.runtime = runtime

    def packet_in(self, message: PacketIn) -> Optional[List[int]]:
        return self.runtime.handle_packet_in(message)

    def port_status(self, message) -> None:
        self.runtime.forward_northbound(message)

    def flow_removed(self, message) -> None:
        self.runtime.forward_northbound(message)

    def start(self) -> None:
        self.runtime.start()

    def stop(self) -> None:
        self.runtime.shutdown()


class WireRuntime:
    """Everything the wire gateway needs at run time.

    Parameters
    ----------
    channel:
        The control channel whose northbound events go on the wire.
    listen:
        ``(host, port)`` to listen on; port 0 picks a free port.
    sync_quantum_s, latency_budget_s, dilation:
        Time-gate configuration (see :class:`TimeGate`).
    client_mode:
        None to wait for an external controller, or
        ``"learning"``/``"static"`` to run the built-in client in a
        thread against our own listener (the self-driven loopback used
        by tests, CI, and ``examples/scenarios/wire_demo.json``).
    client_routes:
        Static routes for ``client_mode="static"``.
    restored:
        True when this runtime was rebuilt from a checkpoint: new
        connections advertise ``auxiliary_id=1`` so controllers skip
        proactive installs (the rules are in the restored pipelines).
    """

    def __init__(
        self,
        channel,
        listen: Tuple[str, int] = ("127.0.0.1", 0),
        sync_quantum_s: float = 0.05,
        latency_budget_s: float = 5.0,
        dilation: float = 0.0,
        client_mode: Optional[str] = None,
        client_routes: Optional[list] = None,
        restored: bool = False,
    ) -> None:
        if client_mode not in (None, "learning", "static"):
            raise WireError(
                f"unknown built-in client mode {client_mode!r} "
                f"(expected 'learning' or 'static')"
            )
        self.channel = channel
        self.listen = (str(listen[0]), int(listen[1]))
        self.gate = TimeGate(sync_quantum_s, latency_budget_s, dilation)
        self.client_mode = client_mode
        self.client_routes = list(client_routes or [])
        self.restored = restored
        self.transport = WireTransport(self)
        self.bound_address: Optional[Tuple[str, int]] = None
        #: Optional callable invoked with (host, port) once the listener
        #: is up — the ``repro serve`` CLI prints the address here so an
        #: external controller knows where to connect.  Not checkpointed.
        self.on_listening = None
        self.counters = {
            "packet_ins_sent": 0,
            "answers": 0,
            "late_answers": 0,
            "dropped_packet_outs": 0,
            "southbound_applied": 0,
            "southbound_errors": 0,
            "send_failures": 0,
            "syncs": 0,
        }
        #: xid -> PacketIn awaiting (or missed) an answer.
        self._pending: Dict[int, PacketIn] = {}
        self._server: Optional[WireServer] = None
        self._client: Optional[WireControllerClient] = None
        self._client_thread: Optional[threading.Thread] = None
        #: Built-in client state carried across a checkpoint (the client
        #: itself lives outside the snapshot; its learned MAC table is
        #: plain data and restoring it keeps restored runs bitwise-
        #: identical to uninterrupted ones).
        self._client_state: Optional[dict] = None

    # ------------------------------------------------------------------
    # Lifecycle (simulation thread)
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._server is not None and self._server.running

    @property
    def idle(self) -> bool:
        """No round trips outstanding and nothing queued to apply."""
        if self._server is None:
            return True
        return self.gate.outstanding == 0 and self._server.inbox_size == 0

    def start(self) -> None:
        """Bring up the listener (and built-in client), then wait for
        every datapath to connect and finish its proactive installs.
        Idempotent; called again after checkpoint restore to lazily
        re-establish connections."""
        if self.running:
            return
        dpids = self.channel.datapath_ids()
        self._server = WireServer(
            dpids,
            host=self.listen[0],
            port=self.listen[1],
            restored=self.restored,
        )
        self.bound_address = self._server.start()
        if self.on_listening is not None:
            self.on_listening(self.bound_address)
        if self.client_mode is not None:
            self._client = WireControllerClient(
                self.bound_address[0],
                self.bound_address[1],
                mode=self.client_mode,
                routes=self.client_routes,
                restored_ok=True,
                mac_table=(self._client_state or {}).get("mac_table"),
            )
            self._client_thread = threading.Thread(
                target=self._client.run,
                name="repro-wire-client",
                daemon=True,
            )
            self._client_thread.start()
        self._settle()

    def shutdown(self) -> None:
        """Stop the built-in client and the server; connections close."""
        if self._client is not None:
            self._client.stop()
        if self._client_thread is not None:
            self._client_thread.join(timeout=10.0)
            self._client_thread = None
        if self._server is not None:
            self._server.stop()

    def _settle(self) -> None:
        """Wait for connections to bind and apply their proactive
        installs (each connection signals readiness with a barrier)."""
        budget = self.gate.latency_budget_s
        server = self._server
        if not server.wait_bound(budget):
            bound = server.bound_dpids
            raise WireError(
                f"only {len(bound)}/{len(server.dpids)} datapaths "
                f"connected within {budget}s (bound: {bound})"
            )
        deadline = _monotonic() + budget
        while not server.wait_settled(0.0):
            message = server.wait_message(
                min(_monotonic() + 0.05, deadline)
            )
            if message is not None:
                self._apply_one(message)
            elif _monotonic() >= deadline:
                # An external controller that never barriers: proceed
                # with whatever it has installed so far.
                break
        for message in server.pop_messages():
            self._apply_one(message)

    # ------------------------------------------------------------------
    # Northbound (simulation thread)
    # ------------------------------------------------------------------
    def handle_packet_in(self, message: PacketIn) -> Optional[List[int]]:
        """Ship a packet-in to the controller; block for the answer in
        synchronous (dilation=0) mode."""
        self.counters["packet_ins_sent"] += 1
        self._trace("wire.tx", message)
        self.gate.begin(message.xid)
        self._pending[message.xid] = message
        try:
            self._server.send(message)
        except WireError:
            self.gate.abandon(message.xid)
            self._pending.pop(message.xid, None)
            self.counters["send_failures"] += 1
            return None
        if self.gate.dilation > 0:
            return None  # answers collected at the next sync boundary
        start = _monotonic()
        deadline = start + self.gate.latency_budget_s
        answer = _NO_ANSWER
        while answer is _NO_ANSWER:
            queued = self._server.wait_message(deadline)
            if queued is None:
                # Budget exhausted (or server stopping): give up on a
                # synchronous answer; a late reply becomes a hint.
                self.gate.abandon(message.xid)
                self.gate.budget_misses += 1
                break
            answer = self._apply_one(queued, waiting_xid=message.xid)
        self.gate.note_blocked(_monotonic() - start)
        if answer is _NO_ANSWER:
            return None
        return answer

    def forward_northbound(self, message: Message) -> None:
        """Ship a no-reply northbound event (port status, flow
        removed)."""
        if self._server is None:
            return  # nothing connected yet
        self._trace("wire.tx", message)
        try:
            self._server.send(message)
        except WireError:
            self.counters["send_failures"] += 1

    def sync(self) -> None:
        """Sync-quantum boundary: wait (up to the budget) for every
        outstanding round trip, then apply whatever the controller sent."""
        server = self._server
        if server is None:
            return
        self.counters["syncs"] += 1
        start = _monotonic()
        deadline = start + self.gate.latency_budget_s
        while self.gate.outstanding > 0:
            message = server.wait_message(deadline)
            if message is None:
                self.gate.sync(0.0)  # abandon stragglers, count misses
                break
            self._apply_one(message)
        for message in server.pop_messages():
            self._apply_one(message)
        waited = _monotonic() - start
        self.gate.note_blocked(waited)
        bus = self.channel.trace_bus
        if bus is not None:
            bus.emit(
                "wire.sync",
                outstanding_after=self.gate.outstanding,
                inbox_after=server.inbox_size,
            )

    # ------------------------------------------------------------------
    # Southbound application (simulation thread)
    # ------------------------------------------------------------------
    def _apply_one(self, message: Message, waiting_xid: Optional[int] = None):
        """Apply one decoded southbound message.  Returns the awaited
        answer (a port list or None) when ``message`` answers
        ``waiting_xid``, else the ``_NO_ANSWER`` sentinel."""
        self._trace("wire.rx", message)
        if isinstance(message, PacketOut):
            return self._handle_packet_out(message, waiting_xid)
        reply: Optional[Message]
        try:
            reply = self.channel.apply_southbound(message)
            self.counters["southbound_applied"] += 1
        except ControlPlaneError as exc:
            self.counters["southbound_errors"] += 1
            reply = ErrorMsg(
                dpid=message.dpid,
                error_type=type(exc).__name__,
                detail=str(exc),
                failed_xid=message.xid,
            )
        if reply is not None:
            if isinstance(reply, ErrorMsg):
                reply.failed_xid = message.xid
            reply.xid = message.xid
            self._trace("wire.tx", reply)
            try:
                self._server.send(reply)
            except WireError:
                self.counters["send_failures"] += 1
        return _NO_ANSWER

    def _handle_packet_out(
        self, message: PacketOut, waiting_xid: Optional[int]
    ):
        if message.buffer_id is None:
            # Unsolicited injection: the flow-level model has no flow to
            # attach it to (see docs/wire-protocol.md).
            self.counters["dropped_packet_outs"] += 1
            return _NO_ANSWER
        original = self._pending.pop(message.buffer_id, None)
        if original is None:
            self.counters["dropped_packet_outs"] += 1
            return _NO_ANSWER
        elapsed = self.gate.complete(message.buffer_id)
        # Empty out_ports means the controller made no decision — the
        # in-process transport's None.
        ports = list(message.out_ports) if message.out_ports else None
        if waiting_xid is not None and message.buffer_id == waiting_xid:
            self.counters["answers"] += 1
            return ports
        # Late (budget-missed) or asynchronous (dilation > 0) answer:
        # delivered as a packet-out hint, charged the dilated latency.
        self.counters["late_answers"] += 1
        if ports:
            self.channel.stats["packet_outs"] += 1
            latency = self.gate.simulated_latency(elapsed or 0.0)
            if latency > 0:
                self.channel.sim.call_in(
                    latency, self._deliver_packet_out_event, original, ports
                )
            else:
                self.channel.deliver_packet_out(original, ports)
        return _NO_ANSWER

    def _deliver_packet_out_event(self, sim, original: PacketIn, ports) -> None:
        self.channel.deliver_packet_out(original, list(ports))

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _trace(self, span: str, message: Message) -> None:
        bus = self.channel.trace_bus
        if bus is not None:
            bus.emit(span, type=type(message).__name__, dpid=message.dpid)

    def metrics(self) -> Dict[str, float]:
        """Pull-source for MetricsRegistry (flattened under ``wire.``)."""
        out: Dict[str, float] = {
            k: float(v) for k, v in self.counters.items()
        }
        if self._server is not None:
            out.update(self._server.stats())
        else:
            out["active_connections"] = 0.0
            out["bound_connections"] = 0.0
        for key, value in self.gate.stats().items():
            out[f"gate_{key}"] = value
        out["pending_packet_ins"] = float(len(self._pending))
        return out

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Sockets, threads, and in-flight round trips are wall-clock
        state: drop them.  A restored runtime re-establishes connections
        lazily on the next run()."""
        state = self.__dict__.copy()
        if self._client is not None:
            state["_client_state"] = {
                "mac_table": dict(self._client.mac_table)
            }
        state["_server"] = None
        state["_client"] = None
        state["_client_thread"] = None
        state["_pending"] = {}
        state["bound_address"] = None
        state["on_listening"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # New connections must advertise the restored flag so the
        # controller skips proactive installs.
        self.restored = True


def _monotonic() -> float:
    """Host clock used only to pace waiting and budget deadlines."""
    return time.monotonic()  # repro: noqa[DET001] - paces the host thread; never feeds sim state
