"""The asyncio TCP datapath agent.

One listening socket; one accepted connection per simulated switch.  The
server plays the *switch* side of OpenFlow 1.3: it sends Hello on
accept, answers FeaturesRequest by binding the connection to the next
unbound datapath id (connections made in sequence bind to dpids in
sorted order, which is what makes the handshake deterministic), answers
echo requests inline for liveness, and queues every other southbound
message into a thread-safe inbox that the *simulation thread* drains —
switch pipelines are simulation state and are only ever mutated from
the simulation thread (see :mod:`repro.wire.transport`).

The event loop runs in a daemon thread; the public methods are the
thread boundary.  Frame-level garbage gets an ErrorMsg back and, when
the byte stream itself can no longer be framed, the connection is
closed — the server loop itself never crashes on peer input.
"""

from __future__ import annotations

import asyncio
import logging
import socket
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..errors import WireError
from ..openflow.messages import (
    BarrierReply,
    EchoReply,
    EchoRequest,
    ErrorMsg,
    FeaturesReply,
    FeaturesRequest,
    Hello,
    Message,
)
from .codec import WIRE_VERSION, FrameReader, decode, encode

logger = logging.getLogger(__name__)


class _Connection:
    """Loop-thread state for one accepted TCP connection."""

    __slots__ = ("writer", "reader_state", "dpid", "said_hello", "settled")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.reader_state = FrameReader()
        self.dpid: Optional[int] = None  # bound after FeaturesRequest
        self.said_hello = False
        self.settled = False  # a barrier has completed on this connection


class WireServer:
    """Accepts OpenFlow connections on behalf of every simulated switch.

    Parameters
    ----------
    dpids:
        The datapath ids connections may bind to (sorted binding order).
    host, port:
        Listen address; port 0 picks a free port (see ``bound_address``).
    n_tables:
        Advertised in FeaturesReply.
    restored:
        True when the surrounding run came out of a checkpoint; sets
        ``auxiliary_id=1`` in FeaturesReply so controllers skip
        proactive installs (the rules are in the restored snapshot).
    """

    def __init__(
        self,
        dpids: List[int],
        host: str = "127.0.0.1",
        port: int = 0,
        n_tables: int = 1,
        restored: bool = False,
    ) -> None:
        if not dpids:
            raise WireError("wire server needs at least one datapath id")
        self.dpids = sorted(dpids)
        self.host = host
        self.port = port
        self.n_tables = n_tables
        self.restored = restored
        self.bound_address: Optional[Tuple[str, int]] = None
        self.counters = {
            "rx_frames": 0,
            "rx_bytes": 0,
            "tx_frames": 0,
            "tx_bytes": 0,
            "decode_errors": 0,
            "echo_replies": 0,
            "connections_total": 0,
        }
        # Everything below the lock is shared between the loop thread
        # and the simulation thread.
        self._cond = threading.Condition()
        self._connections: List[_Connection] = []
        self._bound: Dict[int, _Connection] = {}
        self._inbox: List[Message] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._asyncio_server: Optional[asyncio.base_events.Server] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._stopping = False

    # ------------------------------------------------------------------
    # Lifecycle (simulation thread)
    # ------------------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Bind the listener and start the loop thread; returns the
        bound ``(host, port)``."""
        if self._thread is not None:
            raise WireError("wire server already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-wire-server", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._startup_error is not None:
            raise WireError(
                f"wire server failed to bind {self.host}:{self.port}: "
                f"{self._startup_error}"
            )
        if self.bound_address is None:
            raise WireError("wire server did not start in time")
        return self.bound_address

    def stop(self) -> None:
        """Close every connection, stop the loop, join the thread."""
        loop = self._loop
        with self._cond:
            if self._stopping:
                return
            self._stopping = True
            self._cond.notify_all()
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._shutdown_in_loop)
            except RuntimeError:
                pass  # loop already stopped
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._thread = None

    def __getstate__(self) -> dict:
        raise TypeError(
            "WireServer holds live sockets and threads and is never part "
            "of a checkpoint; WireRuntime drops its reference in "
            "__getstate__ and re-listens on restore"
        )

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------
    # Simulation-thread API
    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Encode and transmit to the connection bound to message.dpid."""
        frame = encode(message)
        with self._cond:
            conn = self._bound.get(message.dpid)
            if conn is None:
                raise WireError(
                    f"no wire connection bound to dpid {message.dpid}"
                )
            loop = self._loop
            if loop is None or loop.is_closed() or self._stopping:
                raise WireError("wire server is not running")
            self.counters["tx_frames"] += 1
            self.counters["tx_bytes"] += len(frame)
            if isinstance(message, BarrierReply):
                conn.settled = True
                self._cond.notify_all()
        loop.call_soon_threadsafe(self._write_in_loop, conn, frame)

    def wait_bound(self, timeout_s: float) -> bool:
        """Block until every dpid has a bound connection."""
        deadline = _monotonic() + timeout_s
        with self._cond:
            while len(self._bound) < len(self.dpids):
                remaining = deadline - _monotonic()
                if remaining <= 0 or self._stopping:
                    return False
                self._cond.wait(remaining)
            return True

    def wait_settled(self, timeout_s: float) -> bool:
        """Block until every bound connection has completed a barrier
        (the built-in client barriers after its proactive installs)."""
        deadline = _monotonic() + timeout_s
        with self._cond:
            while not (
                self._bound
                and len(self._bound) == len(self.dpids)
                and all(c.settled for c in self._bound.values())
            ):
                remaining = deadline - _monotonic()
                if remaining <= 0 or self._stopping:
                    return False
                self._cond.wait(remaining)
            return True

    def wait_message(self, deadline: float) -> Optional[Message]:
        """Pop the oldest queued southbound message, blocking until one
        arrives or the wall-clock ``deadline`` passes."""
        with self._cond:
            while not self._inbox:
                remaining = deadline - _monotonic()
                if remaining <= 0 or self._stopping:
                    return None
                self._cond.wait(remaining)
            return self._inbox.pop(0)

    def pop_messages(self) -> List[Message]:
        """Drain the inbox without blocking."""
        with self._cond:
            messages, self._inbox = self._inbox, []
            return messages

    @property
    def inbox_size(self) -> int:
        with self._cond:
            return len(self._inbox)

    @property
    def active_connections(self) -> int:
        with self._cond:
            return len(self._connections)

    @property
    def bound_dpids(self) -> List[int]:
        with self._cond:
            return sorted(self._bound)

    def stats(self) -> Dict[str, float]:
        """Telemetry snapshot (merged into the ``wire`` source)."""
        with self._cond:
            out = {k: float(v) for k, v in self.counters.items()}
            out["active_connections"] = float(len(self._connections))
            out["bound_connections"] = float(len(self._bound))
            out["inbox_depth"] = float(len(self._inbox))
            return out

    # ------------------------------------------------------------------
    # Event-loop thread
    # ------------------------------------------------------------------
    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            server = loop.run_until_complete(
                asyncio.start_server(self._on_connect, self.host, self.port)
            )
        except BaseException as exc:  # bind failure -> report, don't die
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._asyncio_server = server
        sockname = server.sockets[0].getsockname()
        self.bound_address = (sockname[0], sockname[1])
        self._started.set()
        try:
            loop.run_forever()
        finally:
            server.close()
            try:
                loop.run_until_complete(server.wait_closed())
            except Exception:
                pass
            # Cancel whatever connection tasks are still around.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                try:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
                except Exception:
                    pass
            loop.close()

    def _shutdown_in_loop(self) -> None:
        with self._cond:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.writer.close()
            except Exception:
                pass
        self._loop.stop()

    def _write_in_loop(self, conn: _Connection, frame: bytes) -> None:
        try:
            conn.writer.write(frame)
        except Exception:
            logger.debug("wire tx to dpid %s failed", conn.dpid, exc_info=True)

    async def _on_connect(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                # Control exchanges are small and latency-bound: without
                # this, Nagle + delayed ACK adds ~10ms per round trip.
                sock.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
            except OSError:
                pass
        conn = _Connection(writer)
        with self._cond:
            if self._stopping:
                writer.close()
                return
            self._connections.append(conn)
            self.counters["connections_total"] += 1
            self._cond.notify_all()
        self._tx(conn, Hello(dpid=0, version=WIRE_VERSION))
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                conn.reader_state.feed(data)
                try:
                    for frame in conn.reader_state.frames():
                        self._on_frame(conn, frame)
                except WireError as exc:
                    # The stream cannot be re-framed after this.
                    self._count_decode_error()
                    self._tx_error(conn, f"unrecoverable framing error: {exc}")
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._drop_connection(conn)

    def _on_frame(self, conn: _Connection, frame: bytes) -> None:
        with self._cond:
            self.counters["rx_frames"] += 1
            self.counters["rx_bytes"] += len(frame)
        try:
            message = decode(frame)
        except WireError as exc:
            # The frame boundary held, so the stream survives: report
            # and keep reading.
            self._count_decode_error()
            self._tx_error(conn, str(exc))
            return
        if isinstance(message, Hello):
            if message.version != WIRE_VERSION:
                self._tx_error(
                    conn,
                    f"unsupported OpenFlow version {message.version}",
                )
                conn.writer.close()
                return
            conn.said_hello = True
            return
        if isinstance(message, EchoRequest):
            with self._cond:
                self.counters["echo_replies"] += 1
            self._tx(
                conn,
                EchoReply(
                    dpid=message.dpid,
                    xid=message.xid,
                    payload=message.payload,
                ),
            )
            return
        if isinstance(message, FeaturesRequest):
            self._bind(conn, message)
            return
        # Everything else is applied by the simulation thread, in order.
        with self._cond:
            self._inbox.append(message)
            self._cond.notify_all()

    def _bind(self, conn: _Connection, request: FeaturesRequest) -> None:
        with self._cond:
            if conn.dpid is not None:
                dpid = conn.dpid  # idempotent re-request
            else:
                unbound = [d for d in self.dpids if d not in self._bound]
                if not unbound:
                    dpid = None
                else:
                    dpid = unbound[0]
                    conn.dpid = dpid
                    self._bound[dpid] = conn
                    self._cond.notify_all()
        if dpid is None:
            self._tx_error(
                conn,
                f"all {len(self.dpids)} datapaths already have connections",
            )
            conn.writer.close()
            return
        self._tx(
            conn,
            FeaturesReply(
                dpid=dpid,
                xid=request.xid,
                n_tables=self.n_tables,
                auxiliary_id=1 if self.restored else 0,
                reserved=len(self.dpids),
            ),
        )

    def _drop_connection(self, conn: _Connection) -> None:
        with self._cond:
            if conn in self._connections:
                self._connections.remove(conn)
            if conn.dpid is not None:
                self._bound.pop(conn.dpid, None)
            self._cond.notify_all()
        try:
            conn.writer.close()
        except Exception:
            pass

    def _count_decode_error(self) -> None:
        with self._cond:
            self.counters["decode_errors"] += 1

    def _tx(self, conn: _Connection, message: Message) -> None:
        try:
            frame = encode(message)
        except WireError:
            logger.exception("failed to encode %r", message)
            return
        with self._cond:
            self.counters["tx_frames"] += 1
            self.counters["tx_bytes"] += len(frame)
        try:
            conn.writer.write(frame)
        except Exception:
            logger.debug("wire tx failed", exc_info=True)

    def _tx_error(self, conn: _Connection, detail: str) -> None:
        self._tx(
            conn,
            ErrorMsg(
                dpid=conn.dpid if conn.dpid is not None else 0,
                error_type="WireError",
                detail=detail,
            ),
        )


def _monotonic() -> float:
    """Host clock used only to pace waiting threads."""
    return time.monotonic()  # repro: noqa[DET001] - paces host threads; never feeds sim state
