"""The external control-plane gateway: real OpenFlow connections.

The poster removes real OpenFlow connections; the authors' follow-up
(*Faster Control Plane Experimentation with Horse*, arXiv:2307.06409)
re-adds them so a simulated data plane can be driven by real, external
controllers over TCP, with simulated time gated against wall-clock
control-plane latency.  This package is that gateway:

* :mod:`repro.wire.codec` — binary OpenFlow 1.3 framing for the message
  subset modeled by :mod:`repro.openflow.messages`.
* :mod:`repro.wire.server` — the asyncio TCP datapath agent (one
  connection per simulated switch).
* :mod:`repro.wire.timegate` — the hybrid simulated/wall clock: the
  kernel pauses at a sync quantum while outstanding wire round trips
  complete, mapping controller thinking time onto simulated latency.
* :mod:`repro.wire.transport` — the :class:`ControlChannel` transport
  implementation bridging the two.
* :mod:`repro.wire.client` — a minimal built-in wire controller
  (learning-switch and static-routes modes) so tests and CI need no
  external controller install.

See docs/wire-protocol.md for the framing profile and how to attach an
external controller.
"""

from .client import WireControllerClient
from .codec import FrameReader, decode, encode
from .server import WireServer
from .timegate import TimeGate
from .transport import WireRuntime, WireTransport

__all__ = [
    "FrameReader",
    "TimeGate",
    "WireControllerClient",
    "WireRuntime",
    "WireServer",
    "WireTransport",
    "decode",
    "encode",
]
