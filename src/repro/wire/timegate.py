"""The hybrid simulated/wall clock gate.

The follow-up paper's central mechanism: when a real controller sits on
the other end of a TCP connection, its thinking time is *wall-clock*
time, while the data plane advances in *simulated* time.  The gate
reconciles the two by freezing the kernel while wire round trips are
outstanding:

* Every northbound request registered with :meth:`begin` opens a round
  trip; the matching southbound answer closes it via :meth:`complete`.
* The simulation thread blocks in :meth:`wait` (one round trip) or
  :meth:`sync` (every outstanding round trip, called at each sync
  quantum boundary) until the controller has answered or the *latency
  budget* is exhausted.
* The wall-clock duration of each round trip, multiplied by the
  *dilation* factor, becomes the simulated latency charged to the
  exchange.  ``dilation=0`` (the default) reproduces the in-process
  synchronous channel exactly — the controller answers "instantly" in
  simulated time no matter how long it really took — which is what
  makes wire runs digest-identical to in-proc runs.

The gate itself never touches simulation state; it only decides how
long the *host* thread sleeps and what latency value the transport
charges.  All methods are thread-safe: the simulation thread waits,
the server's asyncio thread completes.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional


class TimeGate:
    """Synchronization point between the kernel and the wire."""

    def __init__(
        self,
        sync_quantum_s: float = 0.05,
        latency_budget_s: float = 5.0,
        dilation: float = 0.0,
    ) -> None:
        if sync_quantum_s <= 0:
            raise ValueError(
                f"sync_quantum_s must be > 0, got {sync_quantum_s}"
            )
        if latency_budget_s <= 0:
            raise ValueError(
                f"latency_budget_s must be > 0, got {latency_budget_s}"
            )
        if dilation < 0:
            raise ValueError(f"dilation must be >= 0, got {dilation}")
        self.sync_quantum_s = float(sync_quantum_s)
        self.latency_budget_s = float(latency_budget_s)
        self.dilation = float(dilation)
        self._cond = threading.Condition()
        #: xid -> wall-clock start of the outstanding round trip.
        self._outstanding: Dict[int, float] = {}
        #: Wall seconds spent blocked in wait()/sync() (telemetry only).
        self.blocked_wall_s = 0.0
        #: Round trips abandoned because the budget ran out.
        self.budget_misses = 0
        #: Round trips completed within budget.
        self.completed = 0

    # -- round-trip accounting (any thread) ----------------------------

    def begin(self, xid: int) -> None:
        """Open a round trip keyed by the request's transaction id."""
        now = time.monotonic()  # repro: noqa[DET001] - wall clock measures controller latency, never sim state
        with self._cond:
            self._outstanding[xid] = now

    def complete(self, xid: int) -> Optional[float]:
        """Close a round trip; returns its wall-clock duration, or None
        for unknown xids (unsolicited southbound traffic is not a round
        trip)."""
        now = time.monotonic()  # repro: noqa[DET001] - wall clock measures controller latency, never sim state
        with self._cond:
            started = self._outstanding.pop(xid, None)
            if started is not None:
                self.completed += 1
            self._cond.notify_all()
        return None if started is None else max(0.0, now - started)

    def abandon(self, xid: int) -> None:
        """Drop a round trip without counting it (connection closed)."""
        with self._cond:
            self._outstanding.pop(xid, None)
            self._cond.notify_all()

    @property
    def outstanding(self) -> int:
        with self._cond:
            return len(self._outstanding)

    # -- blocking (simulation thread) ----------------------------------

    def wait(self, xid: int) -> float:
        """Block until round trip ``xid`` completes or the latency
        budget is exhausted.  Returns the wall seconds waited; the xid
        is abandoned (and counted as a budget miss) on timeout."""
        start = time.monotonic()  # repro: noqa[DET001] - wall clock paces the host thread only
        deadline = start + self.latency_budget_s
        with self._cond:
            while xid in self._outstanding:
                remaining = deadline - time.monotonic()  # repro: noqa[DET001] - wall clock paces the host thread only
                if remaining <= 0:
                    self._outstanding.pop(xid, None)
                    self.budget_misses += 1
                    break
                self._cond.wait(remaining)
        waited = time.monotonic() - start  # repro: noqa[DET001] - wall clock paces the host thread only
        with self._cond:
            self.blocked_wall_s += waited
        return waited

    def sync(self, budget_s: Optional[float] = None) -> float:
        """Block until every outstanding round trip completes (or the
        budget runs out; stragglers are abandoned).  Returns the wall
        seconds waited.  Called at each sync-quantum boundary so the
        kernel never runs ahead of an un-answered controller."""
        start = time.monotonic()  # repro: noqa[DET001] - wall clock paces the host thread only
        deadline = start + (
            self.latency_budget_s if budget_s is None else budget_s
        )
        with self._cond:
            while self._outstanding:
                remaining = deadline - time.monotonic()  # repro: noqa[DET001] - wall clock paces the host thread only
                if remaining <= 0:
                    self.budget_misses += len(self._outstanding)
                    self._outstanding.clear()
                    break
                self._cond.wait(remaining)
        waited = time.monotonic() - start  # repro: noqa[DET001] - wall clock paces the host thread only
        with self._cond:
            self.blocked_wall_s += waited
        return waited

    def note_blocked(self, wall_s: float) -> None:
        """Account wall time a caller spent blocked outside the gate's
        own wait methods (the transport's inline packet-in wait)."""
        with self._cond:
            self.blocked_wall_s += max(0.0, wall_s)

    # -- checkpointing -------------------------------------------------

    def __getstate__(self) -> dict:
        """Drop the live lock and outstanding round trips: wire round
        trips are wall-clock state and do not survive a snapshot."""
        state = self.__dict__.copy()
        state["_cond"] = None
        state["_outstanding"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._cond = threading.Condition()
        self._outstanding = {}

    # -- wall -> simulated mapping -------------------------------------

    def simulated_latency(self, wall_elapsed_s: float) -> float:
        """Simulated seconds to charge for a measured wall delay."""
        return max(0.0, wall_elapsed_s) * self.dilation

    def stats(self) -> Dict[str, float]:
        """Telemetry snapshot (pull-source friendly)."""
        with self._cond:
            return {
                "outstanding": float(len(self._outstanding)),
                "completed": float(self.completed),
                "budget_misses": float(self.budget_misses),
                "blocked_wall_s": self.blocked_wall_s,
            }
