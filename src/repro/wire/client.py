"""A minimal in-repo wire controller.

Tests, CI, and the self-driven loopback demo need a controller on the
other end of the TCP socket without installing one.  This client speaks
the codec's OpenFlow 1.3 profile over plain blocking sockets (one
connection per datapath, handshakes performed in sequence so datapath
binding is deterministic) and implements two modes:

* ``learning`` — mirrors :class:`repro.control.apps.L2LearningApp`
  rule-for-rule: a priority-0 table-miss punt on every datapath, MAC
  learning on packet-ins, reactive priority-10 forwarding installs.
  Because the behavior is identical, a wire run with this client
  produces the same run digest as an in-proc L2LearningApp run.
* ``static`` — installs a fixed route list proactively and answers any
  stray packet-in with an empty packet-out ("no decision"), so the
  simulation never stalls on the latency budget.

The client is also runnable against an external ``repro serve`` via the
``repro wire-client`` CLI.
"""

from __future__ import annotations

import logging
import select
import socket
import threading
from typing import Dict, List, Optional, Tuple

from ..control.app import ControllerApp
from ..errors import WireError
from ..net.address import MacAddress
from ..openflow.action import ApplyActions, Output, PORT_FLOOD, ToController
from ..openflow.match import Match
from ..openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMsg,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowModCommand,
    FlowRemoved,
    Hello,
    Message,
    PacketIn,
    PacketOut,
    PortStatus,
)
from .codec import WIRE_VERSION, FrameReader, decode, encode

logger = logging.getLogger(__name__)

#: The cookie the first app added to a Controller would get; using the
#: same value keeps wire-installed rules bitwise-identical to rules the
#: in-process L2LearningApp installs.
CLIENT_COOKIE = ControllerApp.COOKIE_BASE + 1


class _Link:
    """One connected datapath: socket + frame reassembly + identity."""

    __slots__ = ("sock", "reader", "dpid")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.reader = FrameReader()
        self.dpid: Optional[int] = None


class WireControllerClient:
    """Built-in learning-switch / static-routes wire controller.

    Parameters
    ----------
    host, port:
        The ``repro serve`` (or in-run gateway) listen address.
    mode:
        ``"learning"`` or ``"static"``.
    routes:
        For static mode: dicts with ``dpid``, ``out_port`` and optional
        ``eth_dst``/``priority`` keys.
    idle_timeout, priority:
        Learning-mode install parameters (mirror L2LearningApp).
    restored_ok:
        When True (gateway-internal use), honor the server's
        ``auxiliary_id=1`` restored flag by skipping proactive installs.
    """

    def __init__(
        self,
        host: str,
        port: int,
        mode: str = "learning",
        routes: Optional[List[dict]] = None,
        idle_timeout: float = 0.0,
        priority: int = 10,
        connect_timeout_s: float = 10.0,
        restored_ok: bool = True,
        mac_table: Optional[Dict[Tuple[int, MacAddress], int]] = None,
    ) -> None:
        if mode not in ("learning", "static"):
            raise WireError(
                f"unknown client mode {mode!r} (expected 'learning' or 'static')"
            )
        self.host = host
        self.port = port
        self.mode = mode
        self.routes = list(routes or [])
        self.idle_timeout = idle_timeout
        self.priority = priority
        self.connect_timeout_s = connect_timeout_s
        self.restored_ok = restored_ok
        self.restored = False
        #: (dpid, mac) -> port, exactly like L2LearningApp.mac_table.
        #: Seedable so a restored run's client resumes with the state it
        #: had at checkpoint time (see WireRuntime.__getstate__).
        self.mac_table: Dict[Tuple[int, MacAddress], int] = dict(
            mac_table or {}
        )
        self.stats = {
            "packet_ins": 0,
            "flow_mods": 0,
            "packet_outs": 0,
            "echo_replies": 0,
            "errors_received": 0,
        }
        self._links: List[_Link] = []
        self._stop = threading.Event()
        self._error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Connect, install proactive state, serve until stopped or the
        server closes every connection."""
        try:
            self.connect()
            self.serve()
        except Exception as exc:  # surfaced via .error by the owner
            self._error = exc
            logger.debug("wire client died", exc_info=True)
        finally:
            self.close()

    @property
    def error(self) -> Optional[BaseException]:
        return self._error

    def stop(self) -> None:
        self._stop.set()

    def __getstate__(self) -> dict:
        raise TypeError(
            "WireControllerClient holds live sockets and is never part of "
            "a checkpoint; WireRuntime snapshots only its mac_table and "
            "reconnects a fresh client on restore"
        )

    def close(self) -> None:
        for link in self._links:
            try:
                link.sock.close()
            except OSError:
                pass
        self._links = []

    # ------------------------------------------------------------------
    # Handshake
    # ------------------------------------------------------------------
    def connect(self) -> List[int]:
        """Open one handshaken connection per datapath; returns the
        bound dpids in connection order."""
        first = self._open_link()
        count = max(1, first[1].reserved)
        self.restored = bool(first[1].auxiliary_id) and self.restored_ok
        for _ in range(count - 1):
            self._open_link()
        if not self.restored:
            self._proactive_installs()
        # Fence: the server marks a connection settled on barrier, so
        # the simulation only starts once installs are applied.
        for link in self._links:
            self._send(link, BarrierRequest(dpid=link.dpid))
        return [link.dpid for link in self._links]

    def _open_link(self) -> Tuple[_Link, FeaturesReply]:
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout_s
            )
        except OSError as exc:
            raise WireError(
                f"cannot connect to wire server {self.host}:{self.port}: {exc}"
            ) from None
        try:
            # Small latency-bound frames: disable Nagle (see server).
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        sock.settimeout(self.connect_timeout_s)
        link = _Link(sock)
        self._links.append(link)
        self._send(link, Hello(dpid=0, version=WIRE_VERSION))
        self._send(link, FeaturesRequest(dpid=0))
        reply = self._await_features(link)
        link.dpid = reply.dpid
        return link, reply

    def _await_features(self, link: _Link) -> FeaturesReply:
        while True:
            message = self._recv(link)
            if isinstance(message, FeaturesReply):
                return message
            if isinstance(message, Hello):
                if message.version != WIRE_VERSION:
                    raise WireError(
                        f"server speaks OpenFlow version {message.version}, "
                        f"not {WIRE_VERSION}"
                    )
                continue
            if isinstance(message, EchoRequest):
                self._echo(link, message)
                continue
            if isinstance(message, ErrorMsg):
                raise WireError(
                    f"handshake rejected: {message.error_type}: "
                    f"{message.detail}"
                )
            raise WireError(
                f"unexpected {type(message).__name__} during handshake"
            )

    def _proactive_installs(self) -> None:
        if self.mode == "learning":
            # Mirror L2LearningApp.start(): a table-miss punt per dpid.
            instructions = (ApplyActions((ToController(),)),)
            for link in self._links:
                self._install(
                    link, Match(), instructions, priority=0
                )
        else:
            by_dpid = {link.dpid: link for link in self._links}
            for route in self.routes:
                dpid = route["dpid"]
                link = by_dpid.get(dpid)
                if link is None:
                    raise WireError(f"static route names unknown dpid {dpid}")
                match_kwargs = {}
                if "eth_dst" in route:
                    match_kwargs["eth_dst"] = MacAddress(route["eth_dst"])
                if "eth_src" in route:
                    match_kwargs["eth_src"] = MacAddress(route["eth_src"])
                if "in_port" in route:
                    match_kwargs["in_port"] = int(route["in_port"])
                self._install(
                    link,
                    Match(**match_kwargs),
                    (ApplyActions((Output(int(route["out_port"])),)),),
                    priority=int(route.get("priority", self.priority)),
                )

    def _install(
        self,
        link: _Link,
        match: Match,
        instructions,
        priority: int,
        idle_timeout: float = 0.0,
    ) -> None:
        self.stats["flow_mods"] += 1
        self._send(
            link,
            FlowMod(
                dpid=link.dpid,
                command=FlowModCommand.ADD,
                table_id=0,
                match=match,
                priority=priority,
                instructions=tuple(instructions),
                idle_timeout=idle_timeout,
                cookie=CLIENT_COOKIE,
            ),
        )

    # ------------------------------------------------------------------
    # Serve loop
    # ------------------------------------------------------------------
    def serve(self, poll_s: float = 0.05) -> None:
        """React to server messages until stopped or disconnected."""
        while not self._stop.is_set() and self._links:
            socks = [link.sock for link in self._links]
            try:
                readable, _, _ = select.select(socks, [], [], poll_s)
            except OSError:
                break
            for sock in readable:
                link = next(
                    (l for l in self._links if l.sock is sock), None
                )
                if link is None:
                    continue
                try:
                    data = sock.recv(65536)
                except OSError:
                    data = b""
                if not data:
                    self._drop(link)
                    continue
                link.reader.feed(data)
                try:
                    for frame in link.reader.frames():
                        self._handle(link, decode(frame))
                except WireError:
                    logger.debug(
                        "client dropping unframeable connection",
                        exc_info=True,
                    )
                    self._drop(link)

    def _drop(self, link: _Link) -> None:
        try:
            link.sock.close()
        except OSError:
            pass
        if link in self._links:
            self._links.remove(link)

    def _handle(self, link: _Link, message: Message) -> None:
        if isinstance(message, PacketIn):
            self.stats["packet_ins"] += 1
            self._on_packet_in(link, message)
        elif isinstance(message, EchoRequest):
            self._echo(link, message)
        elif isinstance(message, ErrorMsg):
            self.stats["errors_received"] += 1
            logger.debug(
                "server error: %s: %s", message.error_type, message.detail
            )
        elif isinstance(message, PortStatus):
            self._on_port_status(link, message)
        elif isinstance(message, FlowRemoved):
            self._on_flow_removed(message)
        # BarrierReply / stats replies / duplicate Hello: nothing to do.

    def _echo(self, link: _Link, message: EchoRequest) -> None:
        self.stats["echo_replies"] += 1
        self._send(
            link,
            EchoReply(
                dpid=message.dpid, xid=message.xid, payload=message.payload
            ),
        )

    # -- packet-in handling (mirrors L2LearningApp.on_packet_in) -------
    def _on_packet_in(self, link: _Link, message: PacketIn) -> None:
        if self.mode == "static":
            self._answer(link, message, None)
            return
        headers = message.headers
        if headers is None:
            self._answer(link, message, None)
            return
        if headers.eth_src is not None:
            self.mac_table[(message.dpid, headers.eth_src)] = message.in_port
        if headers.eth_dst is None or headers.eth_dst.is_broadcast:
            self._answer(link, message, [PORT_FLOOD])
            return
        out_port = self.mac_table.get((message.dpid, headers.eth_dst))
        if out_port is None:
            self._answer(link, message, [PORT_FLOOD])
            return
        # Destination learned: install and forward directly.  The
        # FlowMod goes first so the switch applies it before the
        # answering packet-out (TCP preserves the order), matching the
        # in-proc app that installs inside on_packet_in.
        self._install(
            link,
            Match(eth_dst=headers.eth_dst),
            (ApplyActions((Output(out_port),)),),
            priority=self.priority,
            idle_timeout=self.idle_timeout,
        )
        self._answer(link, message, [out_port])

    def _answer(
        self, link: _Link, message: PacketIn, ports: Optional[List[int]]
    ) -> None:
        """Answer a packet-in.  ``ports=None`` (no decision) is an empty
        packet-out — the gateway maps it back to None."""
        self.stats["packet_outs"] += 1
        self._send(
            link,
            PacketOut(
                dpid=message.dpid,
                in_port=message.in_port,
                out_ports=tuple(ports or ()),
                buffer_id=message.xid,
            ),
        )

    def _on_port_status(self, link: _Link, message: PortStatus) -> None:
        if self.mode != "learning" or message.link_up:
            return
        # Mirror L2LearningApp.on_port_status: purge learnings and rules
        # through the dead port.
        stale = [
            key
            for key, port in self.mac_table.items()
            if key[0] == message.dpid and port == message.port_no
        ]
        for key in stale:
            del self.mac_table[key]
            self.stats["flow_mods"] += 1
            self._send(
                link,
                FlowMod(
                    dpid=message.dpid,
                    command=FlowModCommand.DELETE,
                    table_id=0,
                    match=Match(eth_dst=key[1]),
                    cookie=CLIENT_COOKIE,
                ),
            )

    def _on_flow_removed(self, message: FlowRemoved) -> None:
        if self.mode != "learning" or message.cookie != CLIENT_COOKIE:
            return
        eth_dst = message.match.eth_dst
        if eth_dst is not None:
            self.mac_table.pop((message.dpid, eth_dst), None)

    # ------------------------------------------------------------------
    # Socket primitives
    # ------------------------------------------------------------------
    def _send(self, link: _Link, message: Message) -> None:
        try:
            link.sock.sendall(encode(message))
        except OSError as exc:
            raise WireError(f"wire client send failed: {exc}") from None

    def _recv(self, link: _Link) -> Message:
        """Blocking read of one message (handshake phase only)."""
        while True:
            for frame in link.reader.frames():
                return decode(frame)
            try:
                data = link.sock.recv(65536)
            except socket.timeout:
                raise WireError(
                    "timed out waiting for a server message"
                ) from None
            except OSError as exc:
                raise WireError(f"wire client recv failed: {exc}") from None
            if not data:
                raise WireError("server closed the connection mid-handshake")
            link.reader.feed(data)
