"""The Horse façade: topology + policies + traffic → results.

Wires together everything the poster's Figure 2 shows: the data plane
(events, topology, statistics), the control plane (policy generator,
instructions, monitoring), and the in-memory channel between them.

Examples
--------
horse = Horse(topology, policies={"forwarding": "shortest-path"})
horse.submit_flows(flows)
result = horse.run()
result.row()
"""

from __future__ import annotations

import time as _time
from typing import Iterable, List, Optional, Sequence, Union

from ..control.channel import ControlChannel
from ..control.controller import Controller
from ..control.monitor import NetworkMonitor
from ..control.policy.compiler import CompiledPolicy, compile_policies
from ..control.policy.spec import PolicySpec
from ..errors import ExperimentError
from ..flowsim.engine import FlowLevelEngine
from ..flowsim.flow import Flow
from ..hybrid.engine import HybridEngine
from ..net.topology import Topology
from ..openflow.switch import attach_pipeline
from ..pktsim.engine import PacketLevelEngine
from ..sim.event import CallbackEvent
from ..sim.kernel import Simulator
from ..sim.queue import build_event_queue
from ..sim.rng import RngRegistry
from ..stats.collector import RunStatsCollector
from ..telemetry import Telemetry
from ..traffic.flowgen import FlowGenConfig, FlowGenerator
from ..traffic.matrix import TrafficMatrix
from .config import HorseConfig
from .results import RunResult


class Horse:
    """One simulation instance.

    Parameters
    ----------
    topology:
        The network to simulate.  Pipelines are attached automatically.
    policies:
        A policy configuration (Figure-2 style dict, a list of
        :class:`PolicySpec`, or an already-compiled
        :class:`CompiledPolicy`); None runs with a bare controller and
        whatever rules the caller installs directly.
    config:
        Engine selection and knobs (see :class:`HorseConfig`).
    controller:
        Alternative to ``policies``: bring your own controller with
        custom apps.
    """

    def __init__(
        self,
        topology: Topology,
        policies: Union[dict, Sequence[PolicySpec], CompiledPolicy, None] = None,
        config: Optional[HorseConfig] = None,
        controller: Optional[Controller] = None,
    ) -> None:
        self.topology = topology
        self.config = config or HorseConfig()
        self.rngs = RngRegistry(self.config.seed)
        kcfg = self.config.kernel
        self.sim = Simulator(
            queue=build_event_queue(
                kcfg.queue,
                compaction_threshold=kcfg.compaction_threshold,
                min_compact_size=kcfg.min_compact_size,
            )
        )
        self.compiled: Optional[CompiledPolicy] = None

        if policies is not None and controller is not None:
            raise ExperimentError("pass either policies or a controller, not both")
        if self.config.control == "wire" and (
            policies is not None or controller is not None
        ):
            raise ExperimentError(
                "wire control puts the controller on the other end of a TCP "
                "connection; in-process policies/controller cannot be combined "
                "with control='wire'"
            )
        if isinstance(policies, CompiledPolicy):
            self.compiled = policies
            self.controller = policies.controller
        elif policies is not None:
            self.compiled = compile_policies(topology, policies)
            self.controller = self.compiled.controller
        elif controller is not None:
            self.controller = controller
        else:
            self.controller = Controller()

        num_tables = max(
            self.config.pipeline_tables,
            self.compiled.num_tables if self.compiled else 1,
        )
        for switch in topology.switches:
            attach_pipeline(
                switch, num_tables=num_tables, table_size=self.config.table_size
            )

        self.channel = ControlChannel(
            self.sim,
            topology,
            controller=self.controller,
            latency_s=self.config.control_latency_s,
        )

        #: The external control-plane gateway (None for inproc control).
        self.wire = None
        if self.config.control == "wire":
            from ..wire.transport import WireRuntime

            self.wire = WireRuntime(
                self.channel,
                listen=self.config.parsed_wire_listen(),
                sync_quantum_s=self.config.wire.sync_quantum_s,
                latency_budget_s=self.config.wire.latency_budget_s,
                dilation=self.config.wire.dilation,
                client_mode=self.config.wire.client,
                client_routes=self.config.wire.client_routes,
            )
            self.channel.transport = self.wire.transport
            self.wire.transport.bind(self.channel)

        if self.config.engine == "flow":
            self.engine: Union[
                FlowLevelEngine, PacketLevelEngine, HybridEngine
            ] = FlowLevelEngine(
                self.sim,
                topology,
                control=self.channel,
                solver=self.config.resolved_solver(),
                route_cache=self.config.route_cache,
                mean_packet_bytes=self.config.mean_packet_bytes,
                max_hops=self.config.max_hops,
            )
            self.channel.connect_engine(self.engine)
            if self.config.entry_expiry_interval_s:
                self.engine.enable_entry_expiry(self.config.entry_expiry_interval_s)
        elif self.config.engine == "hybrid":
            self.engine = HybridEngine(
                self.sim,
                topology,
                control=self.channel,
                select=self.config.hybrid.select,
                sync_interval_s=self.config.hybrid.sync_interval_s,
                solver=self.config.resolved_solver(),
                route_cache=self.config.route_cache,
                mean_packet_bytes=self.config.mean_packet_bytes,
                max_hops=self.config.max_hops,
                mtu_bytes=self.config.mtu_bytes,
                queue_capacity_packets=self.config.queue_capacity_packets,
            )
            self.channel.connect_engine(self.engine)
            if self.config.entry_expiry_interval_s:
                self.engine.enable_entry_expiry(self.config.entry_expiry_interval_s)
        else:
            self.engine = PacketLevelEngine(
                self.sim,
                topology,
                control=self.channel,
                mtu_bytes=self.config.mtu_bytes,
                queue_capacity_packets=self.config.queue_capacity_packets,
                max_hops=self.config.max_hops,
            )

        #: Unified observation surface: metrics registry + trace/profile
        #: control over the kernel, engine, and channel.
        self.telemetry = Telemetry(self.sim)
        self.telemetry.bind(self.sim, self.engine, self.channel)
        registry = self.telemetry.registry
        registry.register_source("sim", self.sim.stats_snapshot)
        registry.register_source("engine", self.engine.engine_stats)
        registry.register_source("channel", self.channel.stats_snapshot)
        if self.wire is not None:
            registry.register_source("wire", self.wire.metrics)
        if self.config.telemetry.profile:
            self.telemetry.enable_profiling()
        if self.config.telemetry.trace_path:
            self.telemetry.enable_tracing(self.config.telemetry.trace_path)

        self._monitor: Optional[NetworkMonitor] = None
        if self.config.telemetry.monitor_interval_s:
            self._make_monitor(self.config.telemetry.monitor_interval_s)

        self.collector = RunStatsCollector(topology)
        if isinstance(self.engine, FlowLevelEngine):
            self.collector.attach_flow_engine(self.engine)
        elif isinstance(self.engine, HybridEngine):
            # Flow lifecycle events come from the fluid background; the
            # packet foreground reports through flow objects directly.
            self.collector.attach_flow_engine(self.engine.background)
        if self.config.telemetry.link_sample_interval_s:
            self.collector.enable_link_sampling(
                self.sim, self.config.telemetry.link_sample_interval_s
            )

        self._started = False
        #: Horizon of the most recent :meth:`run` call (None = drain).
        self.last_until: Optional[float] = None

        if self.config.checkpoint.interval_s and self.config.checkpoint.path:
            self._schedule_checkpoint_tick()

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def _make_monitor(self, interval: float) -> NetworkMonitor:
        self._monitor = NetworkMonitor(
            self.channel,
            interval=interval,
            threshold=self.config.telemetry.monitor_threshold,
            mode=self.config.telemetry.monitor_mode,
            min_delta_bytes=self.config.telemetry.monitor_push_min_delta_bytes,
        )
        self._monitor.start()
        self.telemetry.registry.register_source(
            "monitor", self._monitor.metrics_snapshot
        )
        return self._monitor

    def monitor(self) -> NetworkMonitor:
        """The run's :class:`NetworkMonitor`.

        Returns the monitor configured via ``monitor_interval_s``; when
        monitoring was not configured, one is created (and started) on
        first call with a 1-second interval and the configured mode, so
        reactive apps can always be handed a live sample stream.
        """
        if self._monitor is None:
            self._make_monitor(self.config.telemetry.monitor_interval_s or 1.0)
        return self._monitor

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self, path: Optional[str] = None) -> dict:
        """Serialize the complete simulation state to ``path``.

        Captures the kernel (clock + pending events), RNG streams,
        topology/pipeline state, active flows, solver state, and
        statistics; :meth:`restore` yields a run whose results are
        bitwise-identical to one that was never interrupted.  ``path``
        defaults to ``config.checkpoint_path``.  Returns the checkpoint
        header (format version, digests, metadata).
        """
        from ..runtime.checkpoint import save_checkpoint

        target = path or self.config.checkpoint.path
        if not target:
            raise ExperimentError(
                "no checkpoint path given and none configured"
            )
        return save_checkpoint(self, target)

    @staticmethod
    def restore(path: str) -> "Horse":
        """Load a checkpoint written by :meth:`checkpoint`, ready to
        continue with :meth:`run`."""
        from ..runtime.checkpoint import load_checkpoint

        return load_checkpoint(path)

    def _schedule_checkpoint_tick(self) -> None:
        event = CallbackEvent(
            self.sim.now + self.config.checkpoint.interval_s,
            self._checkpoint_tick,
        )
        # Housekeeping: a pending checkpoint tick must not keep an
        # otherwise-drained simulation running.
        event.daemon = True
        self.sim.schedule(event)

    def _checkpoint_tick(self, sim: Simulator) -> None:
        # Re-arm before capturing so the next tick is part of the
        # snapshot: a restored run keeps checkpointing on cadence.
        self._schedule_checkpoint_tick()
        self.checkpoint()

    # ------------------------------------------------------------------
    # Workload
    # ------------------------------------------------------------------
    def start_control_plane(self) -> None:
        """Install proactive policies (idempotent; run() calls this).

        With wire control this (re-)establishes the TCP gateway: after a
        checkpoint restore the listener and connections come back lazily
        here, advertising the restored flag so the controller skips
        proactive installs.
        """
        if not self._started:
            self.controller.start()
            self._started = True
        if self.wire is not None and not self.wire.running:
            self.wire.start()

    def shutdown_wire(self) -> None:
        """Stop the wire gateway (no-op for inproc control).  Idempotent;
        the next :meth:`run` brings it back up."""
        if self.wire is not None:
            self.wire.shutdown()

    def submit_flows(self, flows: Iterable[Flow]) -> List[Flow]:
        """Schedule pre-built flows."""
        return self.engine.submit_all(flows)

    def submit_matrix(
        self,
        matrix: TrafficMatrix,
        horizon_s: float,
        flow_config: Optional[FlowGenConfig] = None,
        constant_rate: bool = False,
    ) -> List[Flow]:
        """Generate and schedule flows realizing a traffic matrix."""
        generator = FlowGenerator(
            self.topology,
            self.rngs.stream("traffic"),
            config=flow_config,
        )
        if constant_rate:
            flows = generator.constant_rate_flows(matrix, duration_s=horizon_s)
        else:
            flows = generator.from_matrix(matrix, horizon_s=horizon_s)
        return self.submit_flows(flows)

    def fail_link(self, at: float, a: str, b: str) -> None:
        """Schedule a link-failure input event (flow/hybrid engines)."""
        if not isinstance(self.engine, (FlowLevelEngine, HybridEngine)):
            raise ExperimentError("link failure injection needs the flow engine")
        self.engine.fail_link_at(at, a, b)

    def restore_link(self, at: float, a: str, b: str) -> None:
        if not isinstance(self.engine, (FlowLevelEngine, HybridEngine)):
            raise ExperimentError("link recovery injection needs the flow engine")
        self.engine.restore_link_at(at, a, b)

    def analyze(self, strict: bool = False, raise_on_error: bool = False):
        """Statically verify the installed forwarding state.

        Installs proactive policies first (idempotent), then runs the
        data-plane analyzer over the topology, checking any compiled
        policy intents.  Returns an
        :class:`~repro.analysis.AnalysisReport`; with
        ``raise_on_error=True`` a failing report raises
        :class:`~repro.errors.VerificationError` instead.
        """
        self.start_control_plane()
        return self.controller.verify(
            specs=self.compiled.specs if self.compiled else None,
            strict=strict,
            raise_on_error=raise_on_error,
        )

    def sync_statistics(self) -> None:
        """Bring all lazily-accrued counters up to the current instant.

        Call before reading port/entry counters directly mid-run (the
        monitor and the channel's stats repliers do this automatically).
        """
        sync = getattr(self.engine, "sync_statistics", None)
        if sync is not None:
            sync(self.sim.now)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _run_gated(self, until: Optional[float]) -> None:
        """Advance the kernel in sync-quantum slices, pausing at each
        boundary until outstanding wire round trips have completed.

        Slicing is behavior-preserving: repeated ``run(until=t_k)`` calls
        fire the same events at the same times as one call, so with
        ``wire_dilation == 0`` (where every controller exchange resolves
        inline) a gated run is bitwise-identical to an ungated one.
        """
        quantum = self.config.wire.sync_quantum_s
        if until is not None:
            while True:
                step = min(self.sim.now + quantum, until)
                self.sim.run(until=step)
                self.wire.sync()
                if step >= until:
                    return
        # Open-ended drain: alternate full drains with sync points until
        # neither the kernel nor the wire produces new work.
        while True:
            fired_before = self.sim.fired_count
            self.sim.run(until=None)
            self.wire.sync()
            if self.sim.fired_count == fired_before and self.wire.idle:
                return

    def run(self, until: Optional[float] = None) -> RunResult:
        """Install policies, run to completion (or ``until``), report."""
        self.start_control_plane()
        if isinstance(self.engine, HybridEngine):
            # Deferred (top-K) selection ranks the full submitted set at
            # run start; idempotent across resumed runs.
            self.engine.finalize()
        # Remembered so a checkpoint captured mid-run knows its horizon:
        # a restored run continues to the same `until` by default.
        self.last_until = until
        wall_start = _time.perf_counter()  # repro: noqa[DET001] - reported wall time; never feeds sim state
        if self.wire is not None:
            self._run_gated(until)
        else:
            self.sim.run(until=until)
        if isinstance(self.engine, (FlowLevelEngine, HybridEngine)):
            self.engine.finish()
        wall = _time.perf_counter() - wall_start  # repro: noqa[DET001] - reported wall time; never feeds sim state
        result = RunResult(
            wall_time_s=wall,
            sim_time_s=self.sim.now,
            events=self.sim.fired_count,
            engine_summary=self.engine.summary(),
            flows=list(self.engine.flows.values()),
            rule_count=self.controller.rule_count(),
            engine_stats=self.engine.engine_stats(),
            link_max_utilization=self.collector.max_link_utilization(),
            link_mean_utilization=self.collector.mean_link_utilization(),
            monitor_samples=list(self._monitor.samples) if self._monitor else [],
            metrics=self.telemetry.snapshot(),
            notes=list(self.compiled.notes) if self.compiled else [],
        )
        return result
