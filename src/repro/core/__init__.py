"""Core: the Horse simulator façade, configuration, and results."""

from .config import HorseConfig
from .results import RunResult
from .simulator import Horse

__all__ = ["Horse", "HorseConfig", "RunResult"]
