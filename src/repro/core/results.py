"""Run results: what a Horse run reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..flowsim.flow import Flow, FlowState
from ..stats.metrics import jain_fairness, summarize


@dataclass
class RunResult:
    """The outcome of one :meth:`Horse.run`.

    Attributes
    ----------
    wall_time_s:
        Real (host) seconds the run took — the poster's "simulation
        time" metric.
    sim_time_s:
        Final simulated clock value.
    events:
        Kernel events fired.
    engine_summary:
        The engine's aggregate counters.
    flows:
        Every flow submitted (with final state).
    rule_count:
        Flow entries installed across all switches at the end.
    engine_stats:
        Engine/solver internals (solver mode, route-cache hit/miss
        counts, rate-solve and component-solve counters) for the
        ``repro run --json`` diagnostics block.
    link_max_utilization / link_mean_utilization:
        Per (node, port) values when link sampling was enabled.
    monitor_samples:
        The monitor's :class:`~repro.telemetry.MonitorSample` history
        (empty when monitoring was disabled or history retention off).
    metrics:
        The telemetry registry snapshot at the end of the run — every
        owned metric and pull source flattened to dotted names (see
        :class:`repro.telemetry.MetricsRegistry`).
    """

    wall_time_s: float
    sim_time_s: float
    events: int
    engine_summary: dict
    flows: List[Flow] = field(default_factory=list)
    rule_count: int = 0
    engine_stats: dict = field(default_factory=dict)
    link_max_utilization: Dict[Tuple[str, int], float] = field(default_factory=dict)
    link_mean_utilization: Dict[Tuple[str, int], float] = field(default_factory=dict)
    monitor_samples: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def completed_flows(self) -> List[Flow]:
        return [f for f in self.flows if f.state is FlowState.COMPLETED]

    @property
    def delivered_fraction(self) -> float:
        """Fraction of flows whose traffic reached the destination.

        Flow-engine flows carry a route (authoritative); packet-engine
        flows are judged by delivered bytes.
        """
        if not self.flows:
            return 0.0
        delivered = 0
        for flow in self.flows:
            if flow.route is not None:
                delivered += bool(flow.route.delivered)
            else:
                delivered += flow.bytes_delivered > 0
        return delivered / len(self.flows)

    @property
    def events_per_second(self) -> float:
        return self.events / self.wall_time_s if self.wall_time_s > 0 else 0.0

    def fct_summary(self) -> dict:
        """Flow-completion-time distribution of completed flows."""
        return summarize(
            [
                f.flow_completion_time
                for f in self.completed_flows
                if f.flow_completion_time
            ]
        )

    def throughput_by_flow(self) -> Dict[int, float]:
        """Goodput (bps) per completed flow."""
        out: Dict[int, float] = {}
        for flow in self.completed_flows:
            fct = flow.flow_completion_time
            if fct and fct > 0:
                out[flow.flow_id] = flow.bytes_delivered * 8.0 / fct
        return out

    def fairness(self) -> float:
        return jain_fairness(list(self.throughput_by_flow().values()))

    def total_delivered_bytes(self) -> float:
        return sum(f.bytes_delivered for f in self.flows)

    def goodput_bps(self) -> float:
        """Aggregate delivered bits per simulated second."""
        if self.sim_time_s <= 0:
            return 0.0
        return self.total_delivered_bytes() * 8.0 / self.sim_time_s

    def row(self) -> dict:
        """A flat dict suitable for benchmark tables."""
        return {
            "wall_time_s": round(self.wall_time_s, 4),
            "sim_time_s": round(self.sim_time_s, 3),
            "events": self.events,
            "events_per_s": round(self.events_per_second),
            "flows": len(self.flows),
            "completed": len(self.completed_flows),
            "delivered_frac": round(self.delivered_fraction, 4),
            "rules": self.rule_count,
            "goodput_gbps": round(self.goodput_bps() / 1e9, 3),
        }
