"""Configuration for the Horse simulator façade."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ExperimentError


@dataclass
class HorseConfig:
    """Top-level knobs for a :class:`~repro.core.simulator.Horse` run.

    Attributes
    ----------
    engine:
        ``"flow"`` (Horse's flow-level abstraction, default),
        ``"packet"`` (the per-packet baseline), or ``"hybrid"``
        (selected flows at packet granularity inside flow-level
        background traffic; see :mod:`repro.hybrid`).
    seed:
        Master seed for every stochastic component.
    control_latency_s:
        One-way control channel delay; 0 means the poster's synchronous
        abstraction.
    monitor_interval_s:
        Port-stats sampling period; None disables monitoring.
    monitor_mode:
        ``"poll"`` (the monitor reads counters itself, default) or
        ``"push"`` (the channel pushes counter samples to a
        subscription; see docs/observability.md).
    monitor_push_min_delta_bytes:
        Push mode only: suppress a push unless some port counter moved
        at least this much since the last delivered push.
    link_sample_interval_s:
        Utilization sampling period for the stats collector; None
        disables sampling.
    solver:
        Flow engine only: rate-solver strategy.  ``"incremental"``
        (default) re-solves only the link-sharing components an event
        touched; ``"full"`` re-solves everything through the same
        kernel (reference mode, bitwise-identical rates);  ``"vector"``
        uses the flat slot-array solve over all active flows.
    route_cache:
        Flow engine only: reuse pipeline walks across flows whose
        headers are equivalent under the installed rules.
    incremental_solver:
        Deprecated: ``True`` forces ``solver="incremental"`` (kept for
        the E6 ablation scripts).
    mtu_bytes / queue_capacity_packets:
        Packet engine parameters.
    pipeline_tables:
        Minimum tables per switch pipeline; raised automatically to what
        the compiled policy composition needs.
    entry_expiry_interval_s:
        Flow engine: period of the rule-timeout sweep; None disables it
        (enable when policies use idle/hard timeouts).
    trace_path:
        When set, structured tracing is enabled for the whole run and
        records are appended (JSONL) to this path.
    profile:
        Enable per-phase wall-clock profiling; the phase breakdown is
        reported under ``engine_stats["profile"]`` (wall-clock content —
        leave off for byte-compared reports).
    hybrid_select:
        Hybrid engine only: foreground selection spec (``none``,
        ``all``, ``top:K``, or ``match:field=value[,...]``; see
        :class:`repro.hybrid.SelectionPolicy`).
    hybrid_sync_interval_s:
        Hybrid engine only: cadence of the foreground/background
        coupling exchange (seconds of simulated time).
    control:
        ``"inproc"`` (the poster's in-process controller objects,
        default) or ``"wire"`` (real OpenFlow 1.3 TCP connections via
        :mod:`repro.wire`; the follow-up paper's external control
        plane).  Wire control requires ``control_latency_s == 0`` —
        latency comes from the wall clock through the time gate — and
        is incompatible with in-process policies/controllers.
    wire_listen:
        Wire control only: ``"host:port"`` to listen on (default
        ``"127.0.0.1:0"``; port 0 picks a free port).
    wire_client:
        Wire control only: None to wait for an external controller, or
        ``"learning"``/``"static"`` to run the built-in client in a
        thread against this run's own listener (self-driven loopback).
    wire_client_routes:
        Wire control only: route dicts for ``wire_client="static"``.
    wire_sync_quantum_s:
        Wire control only: how much simulated time may pass between
        control-plane synchronization points (see
        :class:`repro.wire.TimeGate`).
    wire_latency_budget_s:
        Wire control only: wall-clock seconds to wait for a controller
        answer before giving up on it.
    wire_dilation:
        Wire control only: simulated seconds charged per wall-clock
        second of controller thinking time.  0 (default) reproduces the
        synchronous in-process channel exactly.
    checkpoint_path / checkpoint_interval_s:
        When both are set, the run checkpoints its complete state to
        ``checkpoint_path`` every ``checkpoint_interval_s`` simulated
        seconds (atomically — a crash mid-write keeps the previous
        checkpoint).  ``checkpoint_path`` alone just names the default
        target for explicit :meth:`Horse.checkpoint` calls.
    """

    engine: str = "flow"
    seed: int = 0
    control_latency_s: float = 0.0
    monitor_interval_s: Optional[float] = None
    monitor_threshold: float = 0.9
    monitor_mode: str = "poll"
    monitor_push_min_delta_bytes: float = 0.0
    link_sample_interval_s: Optional[float] = None
    solver: str = "incremental"
    route_cache: bool = True
    incremental_solver: bool = False
    mtu_bytes: int = 1500
    queue_capacity_packets: int = 100
    pipeline_tables: int = 1
    table_size: Optional[int] = None
    entry_expiry_interval_s: Optional[float] = None
    mean_packet_bytes: int = 1000
    max_hops: int = 64
    hybrid_select: str = "none"
    hybrid_sync_interval_s: float = 0.05
    trace_path: Optional[str] = None
    profile: bool = False
    checkpoint_path: Optional[str] = None
    checkpoint_interval_s: Optional[float] = None
    control: str = "inproc"
    wire_listen: str = "127.0.0.1:0"
    wire_client: Optional[str] = None
    wire_client_routes: Optional[list] = None
    wire_sync_quantum_s: float = 0.05
    wire_latency_budget_s: float = 5.0
    wire_dilation: float = 0.0

    def __post_init__(self) -> None:
        if self.engine not in ("flow", "packet", "hybrid"):
            raise ExperimentError(
                f"engine must be 'flow', 'packet', or 'hybrid', got {self.engine!r}"
            )
        if self.solver not in ("incremental", "full", "vector"):
            raise ExperimentError(
                "solver must be 'incremental', 'full', or 'vector', "
                f"got {self.solver!r}"
            )
        if self.engine == "hybrid":
            if self.resolved_solver() == "vector":
                raise ExperimentError(
                    "hybrid engine requires an indexed solver "
                    "(solver='incremental' or 'full'), not 'vector'"
                )
            if self.hybrid_sync_interval_s <= 0:
                raise ExperimentError("hybrid_sync_interval_s must be > 0")
        if self.monitor_mode not in ("poll", "push"):
            raise ExperimentError(
                f"monitor_mode must be 'poll' or 'push', got {self.monitor_mode!r}"
            )
        if self.monitor_push_min_delta_bytes < 0:
            raise ExperimentError("monitor_push_min_delta_bytes must be >= 0")
        if self.control_latency_s < 0:
            raise ExperimentError("control latency must be >= 0")
        if self.pipeline_tables < 1:
            raise ExperimentError("need >= 1 pipeline table")
        if self.control not in ("inproc", "wire"):
            raise ExperimentError(
                f"control must be 'inproc' or 'wire', got {self.control!r}"
            )
        if self.control == "wire":
            if self.control_latency_s != 0.0:
                raise ExperimentError(
                    "wire control requires control_latency_s == 0 "
                    "(latency comes from the wall clock via the time gate)"
                )
            if self.wire_sync_quantum_s <= 0:
                raise ExperimentError("wire_sync_quantum_s must be > 0")
            if self.wire_latency_budget_s <= 0:
                raise ExperimentError("wire_latency_budget_s must be > 0")
            if self.wire_dilation < 0:
                raise ExperimentError("wire_dilation must be >= 0")
            if self.wire_client not in (None, "learning", "static"):
                raise ExperimentError(
                    "wire_client must be None, 'learning', or 'static', "
                    f"got {self.wire_client!r}"
                )
            self.parsed_wire_listen()  # validates host:port early
        if self.checkpoint_interval_s is not None:
            if self.checkpoint_interval_s <= 0:
                raise ExperimentError("checkpoint interval must be > 0")
            if not self.checkpoint_path:
                raise ExperimentError(
                    "checkpoint_interval_s needs a checkpoint_path"
                )

    def resolved_solver(self) -> str:
        """The effective solver, honouring the deprecated boolean."""
        if self.incremental_solver:
            return "incremental"
        return self.solver

    def parsed_wire_listen(self) -> tuple:
        """``wire_listen`` split into ``(host, port)``."""
        host, sep, port = str(self.wire_listen).rpartition(":")
        if not sep or not host:
            raise ExperimentError(
                f"wire_listen must be 'host:port', got {self.wire_listen!r}"
            )
        try:
            return host, int(port)
        except ValueError:
            raise ExperimentError(
                f"wire_listen port must be an integer, got {port!r}"
            ) from None
