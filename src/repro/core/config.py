"""Configuration for the Horse simulator façade.

:class:`HorseConfig` groups the run knobs into nested sections —
:class:`HybridConfig`, :class:`WireConfig`, :class:`TelemetryConfig`,
:class:`CheckpointConfig`, and :class:`ShardConfig` — instead of the
flat ``wire_*`` / ``hybrid_*`` / ``monitor_*`` / ``checkpoint_*``
keyword soup the first eight iterations accreted.  The old flat
constructor keywords (and flat attribute reads) still work through a
deprecation shim that warns once per key; new code should write::

    HorseConfig(engine="hybrid",
                hybrid=HybridConfig(select="top:4"),
                telemetry=TelemetryConfig(monitor_interval_s=0.5))

Scenario JSON documents mirror the same sections (``"schema_version":
1``; see :mod:`repro.runtime.schema` for the v0 migrator).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from ..errors import ExperimentError

#: Flat keys already warned about in this process (warn-once semantics).
_WARNED_FLAT_KEYS: Set[str] = set()


def reset_deprecation_warnings() -> None:
    """Forget which deprecated flat keys have warned (test hook)."""
    _WARNED_FLAT_KEYS.clear()


def _warn_flat_key(key: str, replacement: str) -> None:
    """Warn about a deprecated flat config key, once per key per process."""
    if key in _WARNED_FLAT_KEYS:
        return
    _WARNED_FLAT_KEYS.add(key)
    warnings.warn(
        f"HorseConfig flat key {key!r} is deprecated; use {replacement}",
        DeprecationWarning,
        stacklevel=4,
    )


@dataclass
class HybridConfig:
    """Hybrid flow/packet co-simulation knobs (``engine="hybrid"``).

    Attributes
    ----------
    select:
        Foreground selection spec: ``none``, ``all``, ``top:K``, or
        ``match:field=value[,...]`` (see
        :class:`repro.hybrid.SelectionPolicy`).
    sync_interval_s:
        Cadence of the foreground/background coupling exchange
        (seconds of simulated time).
    """

    select: str = "none"
    sync_interval_s: float = 0.05


@dataclass
class WireConfig:
    """External OpenFlow 1.3 control-plane gateway knobs
    (``control="wire"``; see :mod:`repro.wire`).

    Attributes
    ----------
    listen:
        ``"host:port"`` to listen on (port 0 picks a free port).
    client:
        None to wait for an external controller, or ``"learning"`` /
        ``"static"`` to run the built-in client in a thread against
        this run's own listener (self-driven loopback).
    client_routes:
        Route dicts for ``client="static"``.
    sync_quantum_s:
        Simulated time between control-plane synchronization points.
    latency_budget_s:
        Wall-clock seconds to wait for a controller answer.
    dilation:
        Simulated seconds charged per wall-clock second of controller
        thinking time (0 reproduces the synchronous in-proc channel).
    """

    listen: str = "127.0.0.1:0"
    client: Optional[str] = None
    client_routes: Optional[list] = None
    sync_quantum_s: float = 0.05
    latency_budget_s: float = 5.0
    dilation: float = 0.0

    def parsed_listen(self) -> tuple:
        """``listen`` split into ``(host, port)``."""
        host, sep, port = str(self.listen).rpartition(":")
        if not sep or not host:
            raise ExperimentError(
                f"wire.listen must be 'host:port', got {self.listen!r}"
            )
        try:
            return host, int(port)
        except ValueError:
            raise ExperimentError(
                f"wire.listen port must be an integer, got {port!r}"
            ) from None


@dataclass
class TelemetryConfig:
    """Observation knobs: monitoring, link sampling, tracing, profiling.

    Attributes
    ----------
    monitor_interval_s:
        Port-stats sampling period; None disables monitoring.
    monitor_threshold:
        Utilization above which the monitor flags a port.
    monitor_mode:
        ``"poll"`` (the monitor reads counters itself) or ``"push"``
        (the channel pushes counter samples; docs/observability.md).
    monitor_push_min_delta_bytes:
        Push mode only: suppress a push unless some port counter moved
        at least this much since the last delivered push.
    link_sample_interval_s:
        Utilization sampling period for the stats collector; None
        disables sampling.
    trace_path:
        When set, structured tracing is enabled for the whole run and
        records are appended (JSONL) to this path.
    profile:
        Enable per-phase wall-clock profiling, reported under
        ``engine_stats["profile"]`` (wall-clock content — leave off
        for byte-compared reports).
    """

    monitor_interval_s: Optional[float] = None
    monitor_threshold: float = 0.9
    monitor_mode: str = "poll"
    monitor_push_min_delta_bytes: float = 0.0
    link_sample_interval_s: Optional[float] = None
    trace_path: Optional[str] = None
    profile: bool = False


@dataclass
class CheckpointConfig:
    """Checkpoint/restore knobs (see :mod:`repro.runtime`).

    Attributes
    ----------
    path:
        Target for :meth:`Horse.checkpoint` calls; with ``interval_s``
        also the periodic-checkpoint destination.
    interval_s:
        Simulated seconds between periodic checkpoints (needs
        ``path``); None disables the ticker.
    """

    path: Optional[str] = None
    interval_s: Optional[float] = None


@dataclass
class KernelConfig:
    """Event-kernel knobs: pending-event-set implementation and
    stale-tombstone compaction (see :mod:`repro.sim.queue`).

    Attributes
    ----------
    queue:
        Pending-event-set implementation: ``"heap"`` (production binary
        heap) or ``"sorted"`` (the naive E6 ablation baseline).
    compaction_threshold:
        Stale (cancelled-tombstone) fraction of the raw heap above
        which the kernel rebuilds the pending set without tombstones.
        The default 0.5 bounds the heap at ~2x the live events under
        cancellation churn; None disables compaction (pure lazy
        deletion, the pre-E14 behavior).
    min_compact_size:
        Raw heap size below which compaction never triggers.
    """

    queue: str = "heap"
    compaction_threshold: Optional[float] = 0.5
    min_compact_size: int = 64


@dataclass
class ShardConfig:
    """Sharded parallel-runtime knobs (see :mod:`repro.shard`).

    Attributes
    ----------
    count:
        Number of shard domains.  1 (default) runs the ordinary
        single-process engine — bitwise-identical results.  k > 1
        partitions the topology into k domains, runs each in a worker
        process with its own kernel/clock/solver, and synchronizes
        conservatively at quantum boundaries.
    quantum_s:
        Synchronization quantum (simulated seconds).  None derives it
        from the minimum cross-shard link latency (the conservative
        lookahead), floored at :data:`repro.shard.MIN_QUANTUM_S`; with
        no cross-shard links the whole horizon is one quantum.
    partition:
        ``"greedy"`` (METIS-style greedy edge-cut over link
        capacities) or an explicit list of node-name lists, one per
        shard (hosts follow their attachment switch when omitted).
    checkpoint_dir:
        When set, every shard checkpoints its state here at each
        quantum boundary, so a crashed shard restarts from its last
        boundary instead of replaying from t=0.
    """

    count: int = 1
    quantum_s: Optional[float] = None
    partition: object = "greedy"
    checkpoint_dir: Optional[str] = None


#: Deprecated flat constructor key -> (nested section, field name).
FLAT_KEY_MAP: Dict[str, Tuple[str, str]] = {
    "hybrid_select": ("hybrid", "select"),
    "hybrid_sync_interval_s": ("hybrid", "sync_interval_s"),
    "wire_listen": ("wire", "listen"),
    "wire_client": ("wire", "client"),
    "wire_client_routes": ("wire", "client_routes"),
    "wire_sync_quantum_s": ("wire", "sync_quantum_s"),
    "wire_latency_budget_s": ("wire", "latency_budget_s"),
    "wire_dilation": ("wire", "dilation"),
    "monitor_interval_s": ("telemetry", "monitor_interval_s"),
    "monitor_threshold": ("telemetry", "monitor_threshold"),
    "monitor_mode": ("telemetry", "monitor_mode"),
    "monitor_push_min_delta_bytes": ("telemetry", "monitor_push_min_delta_bytes"),
    "link_sample_interval_s": ("telemetry", "link_sample_interval_s"),
    "trace_path": ("telemetry", "trace_path"),
    "profile": ("telemetry", "profile"),
    "checkpoint_path": ("checkpoint", "path"),
    "checkpoint_interval_s": ("checkpoint", "interval_s"),
}

#: Section attribute name -> its dataclass type.
SECTION_TYPES = {
    "hybrid": HybridConfig,
    "wire": WireConfig,
    "telemetry": TelemetryConfig,
    "checkpoint": CheckpointConfig,
    "shard": ShardConfig,
    "kernel": KernelConfig,
}


def _coerce_section(value, section: str):
    """Accept a section instance, a plain dict, or None (defaults)."""
    cls = SECTION_TYPES[section]
    if value is None:
        return cls()
    if isinstance(value, cls):
        return value
    if isinstance(value, dict):
        fields = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(value) - fields)
        if unknown:
            raise ExperimentError(
                f"unknown {section} config key(s): {', '.join(unknown)}"
            )
        return cls(**value)
    raise ExperimentError(
        f"{section} must be a {cls.__name__}, a dict, or None, "
        f"got {type(value).__name__}"
    )


@dataclass(init=False)
class HorseConfig:
    """Top-level knobs for a :class:`~repro.core.simulator.Horse` run.

    Attributes
    ----------
    engine:
        ``"flow"`` (Horse's flow-level abstraction, default),
        ``"packet"`` (the per-packet baseline), or ``"hybrid"``
        (selected flows at packet granularity inside flow-level
        background traffic; see :mod:`repro.hybrid`).
    seed:
        Master seed for every stochastic component.
    control_latency_s:
        One-way control channel delay; 0 means the poster's synchronous
        abstraction.
    solver:
        Flow engine only: rate-solver strategy.  ``"incremental"``
        (default) re-solves only the link-sharing components an event
        touched; ``"full"`` re-solves everything through the same
        kernel (reference mode, bitwise-identical rates); ``"vector"``
        uses the flat slot-array solve over all active flows.
    route_cache:
        Flow engine only: reuse pipeline walks across flows whose
        headers are equivalent under the installed rules.
    incremental_solver:
        Deprecated: ``True`` forces ``solver="incremental"`` (kept for
        the E6 ablation scripts).
    mtu_bytes / queue_capacity_packets:
        Packet engine parameters.
    pipeline_tables:
        Minimum tables per switch pipeline; raised automatically to what
        the compiled policy composition needs.
    entry_expiry_interval_s:
        Flow engine: period of the rule-timeout sweep; None disables it
        (enable when policies use idle/hard timeouts).
    control:
        ``"inproc"`` (the poster's in-process controller objects,
        default) or ``"wire"`` (real OpenFlow 1.3 TCP connections via
        :mod:`repro.wire`).  Wire control requires
        ``control_latency_s == 0`` — latency comes from the wall clock
        through the time gate — and is incompatible with in-process
        policies/controllers.
    hybrid / wire / telemetry / checkpoint / shard / kernel:
        Nested sections; see :class:`HybridConfig`,
        :class:`WireConfig`, :class:`TelemetryConfig`,
        :class:`CheckpointConfig`, :class:`ShardConfig`,
        :class:`KernelConfig`.  Each accepts an instance or a plain
        dict.

    Deprecated flat keywords (``wire_listen``, ``hybrid_select``,
    ``monitor_interval_s``, ``checkpoint_path``, ...) are still
    accepted — mapped into the nested sections with a once-per-key
    :class:`DeprecationWarning` (see :data:`FLAT_KEY_MAP`).
    """

    engine: str = "flow"
    seed: int = 0
    control_latency_s: float = 0.0
    solver: str = "incremental"
    route_cache: bool = True
    incremental_solver: bool = False
    mtu_bytes: int = 1500
    queue_capacity_packets: int = 100
    pipeline_tables: int = 1
    table_size: Optional[int] = None
    entry_expiry_interval_s: Optional[float] = None
    mean_packet_bytes: int = 1000
    max_hops: int = 64
    control: str = "inproc"
    hybrid: HybridConfig = field(default_factory=HybridConfig)
    wire: WireConfig = field(default_factory=WireConfig)
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    checkpoint: CheckpointConfig = field(default_factory=CheckpointConfig)
    shard: ShardConfig = field(default_factory=ShardConfig)
    kernel: KernelConfig = field(default_factory=KernelConfig)

    def __init__(
        self,
        engine: str = "flow",
        seed: int = 0,
        control_latency_s: float = 0.0,
        solver: str = "incremental",
        route_cache: bool = True,
        incremental_solver: bool = False,
        mtu_bytes: int = 1500,
        queue_capacity_packets: int = 100,
        pipeline_tables: int = 1,
        table_size: Optional[int] = None,
        entry_expiry_interval_s: Optional[float] = None,
        mean_packet_bytes: int = 1000,
        max_hops: int = 64,
        control: str = "inproc",
        hybrid=None,
        wire=None,
        telemetry=None,
        checkpoint=None,
        shard=None,
        kernel=None,
        **flat,
    ) -> None:
        self.engine = engine
        self.seed = seed
        self.control_latency_s = control_latency_s
        self.solver = solver
        self.route_cache = route_cache
        self.incremental_solver = incremental_solver
        self.mtu_bytes = mtu_bytes
        self.queue_capacity_packets = queue_capacity_packets
        self.pipeline_tables = pipeline_tables
        self.table_size = table_size
        self.entry_expiry_interval_s = entry_expiry_interval_s
        self.mean_packet_bytes = mean_packet_bytes
        self.max_hops = max_hops
        self.control = control
        self.hybrid = _coerce_section(hybrid, "hybrid")
        self.wire = _coerce_section(wire, "wire")
        self.telemetry = _coerce_section(telemetry, "telemetry")
        self.checkpoint = _coerce_section(checkpoint, "checkpoint")
        self.shard = _coerce_section(shard, "shard")
        self.kernel = _coerce_section(kernel, "kernel")
        explicit_sections = {
            name
            for name, value in (
                ("hybrid", hybrid),
                ("wire", wire),
                ("telemetry", telemetry),
                ("checkpoint", checkpoint),
                ("shard", shard),
                ("kernel", kernel),
            )
            if value is not None
        }
        for key, value in flat.items():
            target = FLAT_KEY_MAP.get(key)
            if target is None:
                raise ExperimentError(
                    f"unknown HorseConfig argument {key!r}"
                )
            section, name = target
            if section in explicit_sections:
                raise ExperimentError(
                    f"both {key!r} and the {section!r} section were given; "
                    f"drop the deprecated flat key and set {section}.{name}"
                )
            _warn_flat_key(key, f"{section}.{name}")
            setattr(getattr(self, section), name, value)
        self.validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check cross-field consistency; raises
        :class:`~repro.errors.ExperimentError` on the first violation.
        Called by the constructor; call again after mutating sections.
        """
        if self.engine not in ("flow", "packet", "hybrid"):
            raise ExperimentError(
                f"engine must be 'flow', 'packet', or 'hybrid', got {self.engine!r}"
            )
        if self.solver not in ("incremental", "full", "vector"):
            raise ExperimentError(
                "solver must be 'incremental', 'full', or 'vector', "
                f"got {self.solver!r}"
            )
        if self.engine == "hybrid":
            if self.resolved_solver() == "vector":
                raise ExperimentError(
                    "hybrid engine requires an indexed solver "
                    "(solver='incremental' or 'full'), not 'vector'"
                )
            if self.hybrid.sync_interval_s <= 0:
                raise ExperimentError("hybrid.sync_interval_s must be > 0")
        tel = self.telemetry
        if tel.monitor_mode not in ("poll", "push"):
            raise ExperimentError(
                "telemetry.monitor_mode must be 'poll' or 'push', "
                f"got {tel.monitor_mode!r}"
            )
        if tel.monitor_push_min_delta_bytes < 0:
            raise ExperimentError(
                "telemetry.monitor_push_min_delta_bytes must be >= 0"
            )
        if self.control_latency_s < 0:
            raise ExperimentError("control latency must be >= 0")
        if self.pipeline_tables < 1:
            raise ExperimentError("need >= 1 pipeline table")
        if self.control not in ("inproc", "wire"):
            raise ExperimentError(
                f"control must be 'inproc' or 'wire', got {self.control!r}"
            )
        if self.control == "wire":
            if self.control_latency_s != 0.0:
                raise ExperimentError(
                    "wire control requires control_latency_s == 0 "
                    "(latency comes from the wall clock via the time gate)"
                )
            if self.wire.sync_quantum_s <= 0:
                raise ExperimentError("wire.sync_quantum_s must be > 0")
            if self.wire.latency_budget_s <= 0:
                raise ExperimentError("wire.latency_budget_s must be > 0")
            if self.wire.dilation < 0:
                raise ExperimentError("wire.dilation must be >= 0")
            if self.wire.client not in (None, "learning", "static"):
                raise ExperimentError(
                    "wire.client must be None, 'learning', or 'static', "
                    f"got {self.wire.client!r}"
                )
            self.wire.parsed_listen()  # validates host:port early
        if self.checkpoint.interval_s is not None:
            if self.checkpoint.interval_s <= 0:
                raise ExperimentError("checkpoint.interval_s must be > 0")
            if not self.checkpoint.path:
                raise ExperimentError(
                    "checkpoint.interval_s needs a checkpoint.path"
                )
        kern = self.kernel
        if kern.queue not in ("heap", "sorted"):
            raise ExperimentError(
                f"kernel.queue must be 'heap' or 'sorted', got {kern.queue!r}"
            )
        if kern.compaction_threshold is not None and not (
            0.0 < kern.compaction_threshold <= 1.0
        ):
            raise ExperimentError(
                "kernel.compaction_threshold must be in (0, 1] or None, "
                f"got {kern.compaction_threshold!r}"
            )
        if kern.min_compact_size < 0:
            raise ExperimentError(
                "kernel.min_compact_size must be >= 0, "
                f"got {kern.min_compact_size!r}"
            )
        sh = self.shard
        if sh.count < 1:
            raise ExperimentError(f"shard.count must be >= 1, got {sh.count}")
        if sh.quantum_s is not None and sh.quantum_s <= 0:
            raise ExperimentError("shard.quantum_s must be > 0")
        if not (sh.partition == "greedy" or isinstance(sh.partition, (list, tuple))):
            raise ExperimentError(
                "shard.partition must be 'greedy' or a list of node-name "
                f"lists, got {sh.partition!r}"
            )
        if sh.count > 1:
            if self.engine != "flow":
                raise ExperimentError(
                    "sharded runs (shard.count > 1) require engine='flow'"
                )
            if self.control != "inproc":
                raise ExperimentError(
                    "sharded runs (shard.count > 1) require control='inproc'"
                )
            if self.resolved_solver() == "vector":
                raise ExperimentError(
                    "sharded runs need an indexed solver for boundary "
                    "demand exchange (solver='incremental' or 'full')"
                )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def resolved_solver(self) -> str:
        """The effective solver, honouring the deprecated boolean."""
        if self.incremental_solver:
            return "incremental"
        return self.solver

    def parsed_wire_listen(self) -> tuple:
        """``wire.listen`` split into ``(host, port)``."""
        return self.wire.parsed_listen()


def _flat_shim(flat: str, section: str, name: str) -> property:
    """A property proxying a deprecated flat attribute to its nested
    section field, warning once per key per process."""

    def getter(self):
        _warn_flat_key(flat, f"{section}.{name}")
        return getattr(getattr(self, section), name)

    def setter(self, value):
        _warn_flat_key(flat, f"{section}.{name}")
        setattr(getattr(self, section), name, value)

    getter.__name__ = flat
    doc = f"Deprecated alias for ``{section}.{name}`` (warns once)."
    return property(getter, setter, doc=doc)


for _flat, (_section, _name) in FLAT_KEY_MAP.items():
    setattr(HorseConfig, _flat, _flat_shim(_flat, _section, _name))
del _flat, _section, _name
