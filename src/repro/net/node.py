"""Nodes: hosts and switches.

A :class:`Host` is a traffic endpoint with a MAC/IPv4 identity.  A
:class:`Switch` owns an OpenFlow pipeline (flow tables, group table,
meter table) that both the flow-level and packet-level engines consult.
The pipeline itself lives in :mod:`repro.openflow.switch`; the node class
here is the topological object.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from ..errors import PortError
from .address import IPv4Address, MacAddress
from .link import Port

if TYPE_CHECKING:  # pragma: no cover
    from ..openflow.switch import OpenFlowPipeline


class Node:
    """Base class of all topology nodes."""

    __slots__ = ("name", "ports", "metadata")

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("node name must be non-empty")
        self.name = name
        self.ports: Dict[int, Port] = {}
        #: Free-form annotations (e.g. IXP member info, tier labels).
        self.metadata: Dict[str, object] = {}

    def add_port(self, number: Optional[int] = None) -> Port:
        """Create a new port; auto-numbers from 1 when ``number`` is None."""
        if number is None:
            number = max(self.ports, default=0) + 1
        if number in self.ports:
            raise PortError(f"port {number} already exists on {self.name}")
        port = Port(self, number)
        self.ports[number] = port
        return port

    def port(self, number: int) -> Port:
        """Look up a port by number."""
        try:
            return self.ports[number]
        except KeyError:
            raise PortError(f"no port {number} on node {self.name}") from None

    @property
    def connected_ports(self) -> List[Port]:
        return [p for p in self.ports.values() if p.connected]

    @property
    def is_switch(self) -> bool:
        return isinstance(self, Switch)

    @property
    def is_host(self) -> bool:
        return isinstance(self, Host)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} ports={len(self.ports)}>"


class Host(Node):
    """A traffic endpoint with MAC and IPv4 identity."""

    __slots__ = ("mac", "ip")

    def __init__(self, name: str, mac: MacAddress, ip: IPv4Address) -> None:
        super().__init__(name)
        self.mac = MacAddress(mac)
        self.ip = IPv4Address(ip)

    @property
    def uplink_port(self) -> Port:
        """The host's single attachment port (hosts are single-homed by
        convention; multi-homed hosts can address ports explicitly)."""
        connected = self.connected_ports
        if not connected:
            raise PortError(f"host {self.name} has no connected port")
        return connected[0]


class Switch(Node):
    """An SDN switch identified by a datapath id, owning an OpenFlow
    pipeline installed by :class:`repro.openflow.switch.OpenFlowPipeline`.

    The pipeline attribute is assigned by the topology when the switch is
    added (keeping this module free of an openflow import cycle).
    """

    __slots__ = ("dpid", "pipeline")

    def __init__(self, name: str, dpid: int) -> None:
        super().__init__(name)
        if dpid < 0:
            raise ValueError(f"dpid must be >= 0, got {dpid}")
        self.dpid = dpid
        self.pipeline: Optional["OpenFlowPipeline"] = None
