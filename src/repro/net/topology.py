"""The topology container.

Owns every node and link, provides path computation (shortest path, all
equal-cost shortest paths, k-shortest simple paths), adjacency queries
used by the engines, and link failure/recovery — the "Topology" building
block of the poster's data plane.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import networkx as nx

from ..errors import LinkError, NodeNotFoundError, TopologyError
from .address import IPv4Address, MacAddress, ip_from_index, mac_from_index
from .link import Link, LinkDirection, Port
from .node import Host, Node, Switch

NodeRef = Union[str, Node]


class Topology:
    """A mutable network topology of hosts, switches, and duplex links.

    Examples
    --------
    >>> topo = Topology()
    >>> s1 = topo.add_switch("s1")
    >>> h1 = topo.add_host("h1")
    >>> h2 = topo.add_host("h2")
    >>> _ = topo.add_link("h1", "s1")
    >>> _ = topo.add_link("h2", "s1")
    >>> [n.name for n in topo.shortest_path("h1", "h2")]
    ['h1', 's1', 'h2']
    """

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._links: List[Link] = []
        self._next_dpid = 1
        self._next_host_index = 0
        #: Adjacency: node name -> {neighbor name: list of links}
        self._adj: Dict[str, Dict[str, List[Link]]] = {}
        self._path_cache: Dict[Tuple[str, str], List[List[str]]] = {}

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def add_switch(self, name: Optional[str] = None, dpid: Optional[int] = None) -> Switch:
        """Create a switch; dpid defaults to the next unused id."""
        if dpid is None:
            dpid = self._next_dpid
        self._next_dpid = max(self._next_dpid, dpid + 1)
        if name is None:
            name = f"s{dpid}"
        switch = Switch(name, dpid)
        self._register(switch)
        return switch

    def add_host(
        self,
        name: Optional[str] = None,
        mac: Optional[MacAddress] = None,
        ip: Optional[IPv4Address] = None,
    ) -> Host:
        """Create a host; MAC/IP default deterministically from an index."""
        index = self._next_host_index
        self._next_host_index += 1
        if name is None:
            name = f"h{index + 1}"
        host = Host(
            name,
            mac if mac is not None else mac_from_index(index),
            ip if ip is not None else ip_from_index(index),
        )
        self._register(host)
        return host

    def _register(self, node: Node) -> None:
        if node.name in self._nodes:
            raise TopologyError(f"duplicate node name: {node.name}")
        self._nodes[node.name] = node
        self._adj[node.name] = {}
        self._path_cache.clear()

    def node(self, ref: NodeRef) -> Node:
        """Resolve a node by name or pass a node through."""
        if isinstance(ref, Node):
            return ref
        try:
            return self._nodes[ref]
        except KeyError:
            raise NodeNotFoundError(f"no node named {ref!r} in {self.name}") from None

    def switch(self, ref: NodeRef) -> Switch:
        node = self.node(ref)
        if not isinstance(node, Switch):
            raise TopologyError(f"{node.name} is not a switch")
        return node

    def host(self, ref: NodeRef) -> Host:
        node = self.node(ref)
        if not isinstance(node, Host):
            raise TopologyError(f"{node.name} is not a host")
        return node

    def switch_by_dpid(self, dpid: int) -> Switch:
        for node in self._nodes.values():
            if isinstance(node, Switch) and node.dpid == dpid:
                return node
        raise NodeNotFoundError(f"no switch with dpid {dpid}")

    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes.values())

    @property
    def hosts(self) -> List[Host]:
        return [n for n in self._nodes.values() if isinstance(n, Host)]

    @property
    def switches(self) -> List[Switch]:
        return [n for n in self._nodes.values() if isinstance(n, Switch)]

    @property
    def links(self) -> List[Link]:
        return list(self._links)

    def __contains__(self, ref: NodeRef) -> bool:
        name = ref.name if isinstance(ref, Node) else ref
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    # Link management
    # ------------------------------------------------------------------
    def add_link(
        self,
        a: NodeRef,
        b: NodeRef,
        capacity_bps: float = 1e9,
        delay_s: float = 1e-6,
        port_a: Optional[int] = None,
        port_b: Optional[int] = None,
    ) -> Link:
        """Connect two nodes with a new duplex link, creating ports."""
        node_a = self.node(a)
        node_b = self.node(b)
        if node_a is node_b:
            raise LinkError(f"self-loop on {node_a.name} is not allowed")
        pa = node_a.add_port(port_a)
        pb = node_b.add_port(port_b)
        link = Link(pa, pb, capacity_bps=capacity_bps, delay_s=delay_s)
        self._links.append(link)
        self._adj[node_a.name].setdefault(node_b.name, []).append(link)
        self._adj[node_b.name].setdefault(node_a.name, []).append(link)
        self._path_cache.clear()
        return link

    def links_between(self, a: NodeRef, b: NodeRef) -> List[Link]:
        """All parallel links between two nodes (possibly empty)."""
        name_a = self.node(a).name
        name_b = self.node(b).name
        return list(self._adj.get(name_a, {}).get(name_b, []))

    def link_between(self, a: NodeRef, b: NodeRef) -> Link:
        """The unique link between two nodes; raises if zero or many."""
        links = self.links_between(a, b)
        if not links:
            raise LinkError(f"no link between {self.node(a).name} and {self.node(b).name}")
        if len(links) > 1:
            raise LinkError(
                f"{len(links)} parallel links between "
                f"{self.node(a).name} and {self.node(b).name}; use links_between"
            )
        return links[0]

    def neighbors(self, ref: NodeRef, up_only: bool = True) -> List[Node]:
        """Adjacent nodes, optionally restricted to up links."""
        name = self.node(ref).name
        result = []
        for other, links in self._adj[name].items():
            if not up_only or any(l.up for l in links):
                result.append(self._nodes[other])
        return result

    def egress_port(self, src: NodeRef, dst: NodeRef) -> Port:
        """The port on ``src`` whose (first up) link leads to ``dst``."""
        links = self.links_between(src, dst)
        src_node = self.node(src)
        for link in links:
            if not link.up:
                continue
            if link.port_a.node is src_node:
                return link.port_a
            return link.port_b
        raise LinkError(
            f"no up link from {src_node.name} to {self.node(dst).name}"
        )

    def directions(self) -> Iterator[LinkDirection]:
        """Iterate every link direction in the topology."""
        for link in self._links:
            yield from link.directions

    def edge_ports(self) -> List[Tuple[Switch, int]]:
        """(switch, port-number) pairs whose link attaches a host.

        These are the fabric's ingress points — where traffic genuinely
        enters — used by the data-plane static analyzer to seed its
        forwarding-graph walks.
        """
        points: List[Tuple[Switch, int]] = []
        for switch in self.switches:
            for number, port in sorted(switch.ports.items()):
                peer = port.peer
                if peer is not None and isinstance(peer.node, Host):
                    points.append((switch, number))
        return points

    def attachment(self, host: NodeRef) -> Tuple[Switch, int]:
        """The switch-side (switch, port-number) where a host plugs in.

        Resolves the host's uplink to the port on the adjacent switch —
        the port-to-link resolution the analyzer (and reactive apps)
        need to reason about where a host's traffic enters the fabric.
        """
        uplink = self.host(host).uplink_port
        peer = uplink.peer
        if peer is None or not isinstance(peer.node, Switch):
            raise TopologyError(
                f"host {self.host(host).name} is not attached to a switch"
            )
        return peer.node, peer.number

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def fail_link(self, a: NodeRef, b: NodeRef) -> Link:
        """Administratively bring down the (unique) link between a and b."""
        link = self.link_between(a, b)
        link.set_up(False)
        self._path_cache.clear()
        return link

    def restore_link(self, a: NodeRef, b: NodeRef) -> Link:
        """Bring the (unique) link between a and b back up."""
        link = self.link_between(a, b)
        link.set_up(True)
        self._path_cache.clear()
        return link

    # ------------------------------------------------------------------
    # Path computation
    # ------------------------------------------------------------------
    def shortest_path(self, src: NodeRef, dst: NodeRef) -> List[Node]:
        """One hop-count shortest path over up links (BFS, deterministic
        by insertion order).  Raises TopologyError when unreachable."""
        paths = self.equal_cost_paths(src, dst, limit=1)
        return [self._nodes[n] for n in paths[0]]

    def equal_cost_paths(
        self, src: NodeRef, dst: NodeRef, limit: Optional[int] = None
    ) -> List[List[str]]:
        """All hop-count-shortest paths (names), up to ``limit``.

        Results are cached until the topology mutates; ECMP apps rely on
        the stable ordering for deterministic hashing.
        """
        src_name = self.node(src).name
        dst_name = self.node(dst).name
        key = (src_name, dst_name)
        if key not in self._path_cache:
            self._path_cache[key] = self._bfs_all_shortest(src_name, dst_name)
        paths = self._path_cache[key]
        if not paths:
            raise TopologyError(f"no path from {src_name} to {dst_name}")
        if limit is not None:
            return [list(p) for p in paths[:limit]]
        return [list(p) for p in paths]

    def _bfs_all_shortest(self, src: str, dst: str) -> List[List[str]]:
        if src == dst:
            return [[src]]
        # BFS computing distance and predecessor sets.
        dist: Dict[str, int] = {src: 0}
        preds: Dict[str, List[str]] = {src: []}
        frontier = [src]
        while frontier and dst not in dist:
            next_frontier: List[str] = []
            for name in frontier:
                for other, links in self._adj[name].items():
                    if not any(l.up for l in links):
                        continue
                    if other not in dist:
                        dist[other] = dist[name] + 1
                        preds[other] = [name]
                        next_frontier.append(other)
                    elif dist[other] == dist[name] + 1:
                        preds[other].append(name)
            frontier = next_frontier
        if dst not in dist:
            return []
        # Unwind predecessor DAG into explicit paths.
        paths: List[List[str]] = []
        stack: List[Tuple[str, List[str]]] = [(dst, [dst])]
        while stack:
            name, suffix = stack.pop()
            if name == src:
                paths.append(list(reversed(suffix)))
                continue
            for pred in preds[name]:
                stack.append((pred, suffix + [pred]))
        paths.sort()
        return paths

    def k_shortest_paths(self, src: NodeRef, dst: NodeRef, k: int) -> List[List[str]]:
        """Up to ``k`` shortest simple paths by hop count (Yen-style via
        repeated Dijkstra on a copy; adequate for control-plane use)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        src_name = self.node(src).name
        dst_name = self.node(dst).name
        graph = self.to_networkx(up_only=True)
        try:
            generator = nx.shortest_simple_paths(graph, src_name, dst_name)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            raise TopologyError(f"no path from {src_name} to {dst_name}") from None
        paths: List[List[str]] = []
        try:
            for path in generator:
                paths.append(path)
                if len(paths) >= k:
                    break
        except nx.NetworkXNoPath:
            pass
        if not paths:
            raise TopologyError(f"no path from {src_name} to {dst_name}")
        return paths

    def path_links(self, path: Sequence[NodeRef]) -> List[LinkDirection]:
        """The transmit link-directions along a node path."""
        names = [self.node(p).name for p in path]
        result: List[LinkDirection] = []
        for a, b in zip(names, names[1:]):
            port = self.egress_port(a, b)
            assert port.link is not None
            result.append(port.link.direction_from(port))
        return result

    # ------------------------------------------------------------------
    # Interop / summary
    # ------------------------------------------------------------------
    def to_networkx(self, up_only: bool = False) -> "nx.Graph":
        """Export to a networkx graph (node names, capacity/delay attrs)."""
        graph = nx.MultiGraph() if self._has_parallel_links() else nx.Graph()
        for node in self._nodes.values():
            graph.add_node(node.name, kind=type(node).__name__.lower())
        for link in self._links:
            if up_only and not link.up:
                continue
            a, b = link.endpoints
            graph.add_edge(
                a.name, b.name, capacity_bps=link.capacity_bps, delay_s=link.delay_s
            )
        return graph

    def _has_parallel_links(self) -> bool:
        return any(
            len(links) > 1 for nbrs in self._adj.values() for links in nbrs.values()
        )

    def summary(self) -> dict:
        """Counts and aggregate capacity, for logs and experiment records."""
        return {
            "name": self.name,
            "hosts": len(self.hosts),
            "switches": len(self.switches),
            "links": len(self._links),
            "total_capacity_bps": sum(l.capacity_bps for l in self._links),
        }

    def __repr__(self) -> str:
        s = self.summary()
        return (
            f"<Topology {s['name']!r} hosts={s['hosts']} "
            f"switches={s['switches']} links={s['links']}>"
        )


def invalidate_paths_on_change(topology: Topology) -> None:
    """Explicitly clear the path cache (e.g. after manual link edits)."""
    topology._path_cache.clear()  # private-ok: same-module helper
