"""Topology generators.

Standard shapes used across the test suite, examples, and benchmarks:
linear chains, stars, balanced trees, k-ary fat-trees, leaf-spine Clos
fabrics, full meshes, and Waxman random graphs.  The IXP fabric generator
(the paper's evaluation substrate) lives in :mod:`repro.ixp.fabric` and
builds on these primitives.
"""

from __future__ import annotations

import math
from typing import Optional

from ..errors import TopologyError
from ..sim.rng import RngRegistry
from .topology import Topology

#: Default host access-link capacity (1 Gbps) and core multiplier.
DEFAULT_HOST_BPS = 1e9
DEFAULT_DELAY_S = 10e-6


def linear(
    num_switches: int,
    hosts_per_switch: int = 1,
    capacity_bps: float = DEFAULT_HOST_BPS,
    delay_s: float = DEFAULT_DELAY_S,
) -> Topology:
    """A chain of switches, each with ``hosts_per_switch`` hosts.

    ``s1 - s2 - ... - sN`` with hosts hanging off each switch.
    """
    if num_switches < 1:
        raise TopologyError(f"need >= 1 switch, got {num_switches}")
    topo = Topology(name=f"linear-{num_switches}x{hosts_per_switch}")
    switches = [topo.add_switch(f"s{i + 1}") for i in range(num_switches)]
    for left, right in zip(switches, switches[1:]):
        topo.add_link(left, right, capacity_bps=capacity_bps, delay_s=delay_s)
    for i, switch in enumerate(switches):
        for j in range(hosts_per_switch):
            host = topo.add_host(f"h{i * hosts_per_switch + j + 1}")
            topo.add_link(host, switch, capacity_bps=capacity_bps, delay_s=delay_s)
    return topo


def single_switch(
    num_hosts: int,
    capacity_bps: float = DEFAULT_HOST_BPS,
    delay_s: float = DEFAULT_DELAY_S,
) -> Topology:
    """One switch with ``num_hosts`` hosts (a star)."""
    if num_hosts < 1:
        raise TopologyError(f"need >= 1 host, got {num_hosts}")
    topo = Topology(name=f"star-{num_hosts}")
    switch = topo.add_switch("s1")
    for i in range(num_hosts):
        host = topo.add_host(f"h{i + 1}")
        topo.add_link(host, switch, capacity_bps=capacity_bps, delay_s=delay_s)
    return topo


def pods(
    num_pods: int,
    hosts_per_pod: int = 4,
    capacity_bps: float = DEFAULT_HOST_BPS,
    delay_s: float = DEFAULT_DELAY_S,
) -> Topology:
    """Disjoint star pods: ``num_pods`` independent single-switch cells.

    Pod ``p`` has switch ``p{p}s`` and hosts ``p{p}h0 .. p{p}h{n-1}``
    (the naming the benchmark harness uses).  There are no inter-pod
    links, so with pod-local traffic the pods are fully independent —
    the ideal substrate for the sharded runtime's speedup gate and any
    embarrassingly-parallel scaling study.
    """
    if num_pods < 1 or hosts_per_pod < 1:
        raise TopologyError(
            f"need >= 1 pod and >= 1 host per pod, got {num_pods}, {hosts_per_pod}"
        )
    topo = Topology(name=f"pods-{num_pods}x{hosts_per_pod}")
    for p in range(num_pods):
        switch = topo.add_switch(f"p{p}s")
        for h in range(hosts_per_pod):
            host = topo.add_host(f"p{p}h{h}")
            topo.add_link(host, switch, capacity_bps=capacity_bps, delay_s=delay_s)
    return topo


def tree(
    depth: int,
    fanout: int,
    capacity_bps: float = DEFAULT_HOST_BPS,
    delay_s: float = DEFAULT_DELAY_S,
) -> Topology:
    """A balanced tree of switches with hosts at the leaves.

    ``depth`` counts switch levels; leaf switches get ``fanout`` hosts.
    """
    if depth < 1 or fanout < 1:
        raise TopologyError(f"depth and fanout must be >= 1, got {depth}, {fanout}")
    topo = Topology(name=f"tree-d{depth}f{fanout}")
    counter = {"s": 0, "h": 0}

    def build(level: int):
        counter["s"] += 1
        switch = topo.add_switch(f"s{counter['s']}")
        if level == depth:
            for _ in range(fanout):
                counter["h"] += 1
                host = topo.add_host(f"h{counter['h']}")
                topo.add_link(host, switch, capacity_bps=capacity_bps, delay_s=delay_s)
        else:
            for _ in range(fanout):
                child = build(level + 1)
                topo.add_link(child, switch, capacity_bps=capacity_bps, delay_s=delay_s)
        return switch

    build(1)
    return topo


def fat_tree(
    k: int,
    capacity_bps: float = DEFAULT_HOST_BPS,
    delay_s: float = DEFAULT_DELAY_S,
) -> Topology:
    """A k-ary fat-tree (Al-Fares et al.): k pods, (k/2)^2 cores,
    k^3/4 hosts.  ``k`` must be even and >= 2.
    """
    if k < 2 or k % 2:
        raise TopologyError(f"fat-tree k must be even and >= 2, got {k}")
    topo = Topology(name=f"fattree-k{k}")
    half = k // 2
    cores = [
        topo.add_switch(f"core{i + 1}") for i in range(half * half)
    ]
    host_index = 0
    for pod in range(k):
        aggs = [topo.add_switch(f"agg{pod}_{i}") for i in range(half)]
        edges = [topo.add_switch(f"edge{pod}_{i}") for i in range(half)]
        for agg in aggs:
            for edge in edges:
                topo.add_link(agg, edge, capacity_bps=capacity_bps, delay_s=delay_s)
        for i, agg in enumerate(aggs):
            for j in range(half):
                core = cores[i * half + j]
                topo.add_link(core, agg, capacity_bps=capacity_bps, delay_s=delay_s)
        for edge in edges:
            for _ in range(half):
                host_index += 1
                host = topo.add_host(f"h{host_index}")
                topo.add_link(host, edge, capacity_bps=capacity_bps, delay_s=delay_s)
    return topo


def leaf_spine(
    num_leaves: int,
    num_spines: int,
    hosts_per_leaf: int = 2,
    leaf_bps: float = DEFAULT_HOST_BPS,
    spine_bps: Optional[float] = None,
    delay_s: float = DEFAULT_DELAY_S,
) -> Topology:
    """A two-tier leaf-spine Clos: every leaf connects to every spine.

    ``spine_bps`` defaults to ``leaf_bps * hosts_per_leaf / num_spines``
    rounded up to the nearest leaf rate (a mild oversubscription knob).
    """
    if num_leaves < 1 or num_spines < 1:
        raise TopologyError("need >= 1 leaf and >= 1 spine")
    if spine_bps is None:
        spine_bps = leaf_bps * max(1, math.ceil(hosts_per_leaf / num_spines))
    topo = Topology(name=f"leafspine-{num_leaves}x{num_spines}")
    spines = [topo.add_switch(f"spine{i + 1}") for i in range(num_spines)]
    host_index = 0
    for l in range(num_leaves):
        leaf = topo.add_switch(f"leaf{l + 1}")
        for spine in spines:
            topo.add_link(leaf, spine, capacity_bps=spine_bps, delay_s=delay_s)
        for _ in range(hosts_per_leaf):
            host_index += 1
            host = topo.add_host(f"h{host_index}")
            topo.add_link(host, leaf, capacity_bps=leaf_bps, delay_s=delay_s)
    return topo


def full_mesh(
    num_switches: int,
    hosts_per_switch: int = 1,
    capacity_bps: float = DEFAULT_HOST_BPS,
    delay_s: float = DEFAULT_DELAY_S,
) -> Topology:
    """Switches pairwise connected, hosts hanging off each."""
    if num_switches < 2:
        raise TopologyError(f"need >= 2 switches, got {num_switches}")
    topo = Topology(name=f"mesh-{num_switches}")
    switches = [topo.add_switch(f"s{i + 1}") for i in range(num_switches)]
    for i, a in enumerate(switches):
        for b in switches[i + 1 :]:
            topo.add_link(a, b, capacity_bps=capacity_bps, delay_s=delay_s)
    host_index = 0
    for switch in switches:
        for _ in range(hosts_per_switch):
            host_index += 1
            host = topo.add_host(f"h{host_index}")
            topo.add_link(host, switch, capacity_bps=capacity_bps, delay_s=delay_s)
    return topo


def waxman(
    num_switches: int,
    hosts_per_switch: int = 1,
    alpha: float = 0.4,
    beta: float = 0.4,
    capacity_bps: float = DEFAULT_HOST_BPS,
    delay_s: float = DEFAULT_DELAY_S,
    seed: int = 0,
) -> Topology:
    """A Waxman random graph of switches on the unit square.

    Edge probability ``alpha * exp(-d / (beta * L))`` with L = sqrt(2).
    A spanning chain is added first so the result is always connected.
    """
    if num_switches < 2:
        raise TopologyError(f"need >= 2 switches, got {num_switches}")
    rng = RngRegistry(seed).stream("waxman")
    topo = Topology(name=f"waxman-{num_switches}")
    positions = [(rng.random(), rng.random()) for _ in range(num_switches)]
    switches = [topo.add_switch(f"s{i + 1}") for i in range(num_switches)]
    # Spanning chain for connectivity.
    for a, b in zip(switches, switches[1:]):
        topo.add_link(a, b, capacity_bps=capacity_bps, delay_s=delay_s)
    scale = math.sqrt(2.0)
    for i in range(num_switches):
        for j in range(i + 2, num_switches):  # chain already covers j == i+1
            xi, yi = positions[i]
            xj, yj = positions[j]
            dist = math.hypot(xi - xj, yi - yj)
            if rng.random() < alpha * math.exp(-dist / (beta * scale)):
                topo.add_link(
                    switches[i], switches[j], capacity_bps=capacity_bps, delay_s=delay_s
                )
    host_index = 0
    for switch in switches:
        for _ in range(hosts_per_switch):
            host_index += 1
            host = topo.add_host(f"h{host_index}")
            topo.add_link(host, switch, capacity_bps=capacity_bps, delay_s=delay_s)
    return topo
