"""Links and ports.

A :class:`Link` is a full-duplex cable between two ports with a capacity
(bits per second) and a propagation delay.  Each direction is modelled as
an independent :class:`LinkDirection` that carries its own utilization
bookkeeping, because the flow-level engine allocates bandwidth per
direction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from ..errors import LinkError, PortError

if TYPE_CHECKING:  # pragma: no cover
    from .node import Node


class Port:
    """A numbered attachment point on a node.

    Ports carry OpenFlow-style rx/tx counters; the engines update them as
    traffic crosses the port.
    """

    __slots__ = (
        "node",
        "number",
        "link",
        "up",
        "rx_packets",
        "tx_packets",
        "rx_bytes",
        "tx_bytes",
        "rx_dropped",
        "tx_dropped",
    )

    def __init__(self, node: "Node", number: int) -> None:
        if number < 1:
            raise PortError(f"port numbers start at 1, got {number}")
        self.node = node
        self.number = number
        self.link: Optional[Link] = None
        self.up = True
        self.rx_packets = 0
        self.tx_packets = 0
        self.rx_bytes = 0
        self.tx_bytes = 0
        self.rx_dropped = 0
        self.tx_dropped = 0

    @property
    def connected(self) -> bool:
        return self.link is not None

    @property
    def peer(self) -> Optional["Port"]:
        """The port at the other end of the attached link, if any."""
        if self.link is None:
            return None
        return self.link.other_port(self)

    def stats(self) -> dict:
        """A snapshot of this port's counters (OpenFlow port-stats shape)."""
        return {
            "port_no": self.number,
            "rx_packets": self.rx_packets,
            "tx_packets": self.tx_packets,
            "rx_bytes": self.rx_bytes,
            "tx_bytes": self.tx_bytes,
            "rx_dropped": self.rx_dropped,
            "tx_dropped": self.tx_dropped,
        }

    def reset_stats(self) -> None:
        self.rx_packets = self.tx_packets = 0
        self.rx_bytes = self.tx_bytes = 0
        self.rx_dropped = self.tx_dropped = 0

    def __repr__(self) -> str:
        return f"<Port {self.node.name}:{self.number}>"


class LinkDirection:
    """One direction of a link: ``src_port`` → ``dst_port``.

    The flow-level engine writes ``allocated_bps`` (sum of max-min rates
    crossing this direction); the statistics collector samples
    :attr:`utilization` from it.
    """

    __slots__ = ("link", "src_port", "dst_port", "allocated_bps")

    def __init__(self, link: "Link", src_port: Port, dst_port: Port) -> None:
        self.link = link
        self.src_port = src_port
        self.dst_port = dst_port
        self.allocated_bps = 0.0

    @property
    def capacity_bps(self) -> float:
        return self.link.capacity_bps

    @property
    def delay_s(self) -> float:
        return self.link.delay_s

    @property
    def up(self) -> bool:
        return self.link.up

    @property
    def utilization(self) -> float:
        """Allocated share of capacity in [0, 1+] (can exceed 1 only if a
        caller bypasses the fair-share solver)."""
        if self.link.capacity_bps <= 0:
            return 0.0
        return self.allocated_bps / self.link.capacity_bps

    @property
    def key(self) -> Tuple[str, int, str, int]:
        """A hashable identity: (src node, src port, dst node, dst port)."""
        return (
            self.src_port.node.name,
            self.src_port.number,
            self.dst_port.node.name,
            self.dst_port.number,
        )

    def __repr__(self) -> str:
        return (
            f"<LinkDirection {self.src_port.node.name}:{self.src_port.number}"
            f"->{self.dst_port.node.name}:{self.dst_port.number}>"
        )


class Link:
    """A full-duplex link between two ports.

    Parameters
    ----------
    port_a, port_b:
        The endpoints.  Both must be unconnected.
    capacity_bps:
        Line rate of each direction, in bits per second.
    delay_s:
        One-way propagation delay in seconds.
    """

    __slots__ = ("port_a", "port_b", "capacity_bps", "delay_s", "up", "_ab", "_ba")

    def __init__(
        self,
        port_a: Port,
        port_b: Port,
        capacity_bps: float = 1e9,
        delay_s: float = 1e-6,
    ) -> None:
        if capacity_bps <= 0:
            raise LinkError(f"link capacity must be > 0, got {capacity_bps}")
        if delay_s < 0:
            raise LinkError(f"link delay must be >= 0, got {delay_s}")
        if port_a.connected or port_b.connected:
            raise LinkError(
                f"cannot link already-connected port(s): {port_a!r}, {port_b!r}"
            )
        if port_a is port_b:
            raise LinkError("cannot link a port to itself")
        self.port_a = port_a
        self.port_b = port_b
        self.capacity_bps = float(capacity_bps)
        self.delay_s = float(delay_s)
        self.up = True
        port_a.link = self
        port_b.link = self
        self._ab = LinkDirection(self, port_a, port_b)
        self._ba = LinkDirection(self, port_b, port_a)

    def other_port(self, port: Port) -> Port:
        """The endpoint opposite ``port``."""
        if port is self.port_a:
            return self.port_b
        if port is self.port_b:
            return self.port_a
        raise LinkError(f"{port!r} is not an endpoint of {self!r}")

    def direction_from(self, port: Port) -> LinkDirection:
        """The transmit direction leaving ``port``."""
        if port is self.port_a:
            return self._ab
        if port is self.port_b:
            return self._ba
        raise LinkError(f"{port!r} is not an endpoint of {self!r}")

    @property
    def directions(self) -> Tuple[LinkDirection, LinkDirection]:
        return (self._ab, self._ba)

    def set_up(self, up: bool) -> None:
        """Administratively raise/lower the link (both directions)."""
        self.up = up

    @property
    def endpoints(self) -> Tuple["Node", "Node"]:
        return (self.port_a.node, self.port_b.node)

    def __repr__(self) -> str:
        a, b = self.port_a, self.port_b
        state = "up" if self.up else "DOWN"
        return (
            f"<Link {a.node.name}:{a.number}<->{b.node.name}:{b.number} "
            f"{self.capacity_bps / 1e9:.3g}Gbps {state}>"
        )
