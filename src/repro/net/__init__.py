"""Network substrate: addresses, nodes, links, topology, generators."""

from .address import (
    IPv4Address,
    IPv4Network,
    MacAddress,
    ip_from_index,
    mac_from_index,
)
from .io import (
    load_topology,
    save_graphml,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)
from .link import Link, LinkDirection, Port
from .node import Host, Node, Switch
from .topology import Topology

__all__ = [
    "Host",
    "IPv4Address",
    "IPv4Network",
    "Link",
    "LinkDirection",
    "MacAddress",
    "Node",
    "Port",
    "Switch",
    "Topology",
    "ip_from_index",
    "load_topology",
    "mac_from_index",
    "save_graphml",
    "save_topology",
    "topology_from_dict",
    "topology_to_dict",
]
