"""MAC and IPv4 address types.

Implemented from scratch (no ``ipaddress`` import) so that match fields,
prefixes, and wildcards behave exactly as the OpenFlow abstraction needs,
and so addresses hash/compare as cheap integers inside hot lookup paths.
"""

from __future__ import annotations

import re
from typing import Iterator, Tuple, Union

from ..errors import AddressError

_MAC_RE = re.compile(r"^([0-9a-fA-F]{2}[:\-]){5}[0-9a-fA-F]{2}$")
_IPV4_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")


class MacAddress:
    """A 48-bit MAC address.

    Accepts ``"aa:bb:cc:dd:ee:ff"`` (or ``-`` separated) strings, raw
    integers, or another :class:`MacAddress`.

    Examples
    --------
    >>> str(MacAddress("00:00:00:00:00:01"))
    '00:00:00:00:00:01'
    >>> int(MacAddress(1))
    1
    """

    __slots__ = ("value",)

    BROADCAST_VALUE = (1 << 48) - 1

    def __init__(self, value: Union[str, int, "MacAddress"]) -> None:
        if isinstance(value, MacAddress):
            self.value = value.value
        elif isinstance(value, int):
            if not 0 <= value < (1 << 48):
                raise AddressError(f"MAC integer out of range: {value}")
            self.value = value
        elif isinstance(value, str):
            if not _MAC_RE.match(value):
                raise AddressError(f"invalid MAC address string: {value!r}")
            self.value = int(value.replace("-", ":").replace(":", ""), 16)
        else:
            raise AddressError(f"cannot build MAC from {type(value).__name__}")

    @classmethod
    def broadcast(cls) -> "MacAddress":
        """The all-ones broadcast address ff:ff:ff:ff:ff:ff."""
        return cls(cls.BROADCAST_VALUE)

    @property
    def is_broadcast(self) -> bool:
        return self.value == self.BROADCAST_VALUE

    @property
    def is_multicast(self) -> bool:
        """True when the I/G bit (LSB of the first octet) is set."""
        return bool((self.value >> 40) & 1)

    def __int__(self) -> int:
        return self.value

    def __str__(self) -> str:
        raw = f"{self.value:012x}"
        return ":".join(raw[i : i + 2] for i in range(0, 12, 2))

    def __repr__(self) -> str:
        return f"MacAddress('{self}')"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MacAddress):
            return self.value == other.value
        if isinstance(other, (int, str)):
            try:
                return self.value == MacAddress(other).value
            except AddressError:
                return NotImplemented
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.value)

    def __lt__(self, other: "MacAddress") -> bool:
        return self.value < other.value


class IPv4Address:
    """A 32-bit IPv4 address.

    Examples
    --------
    >>> str(IPv4Address("10.0.0.1"))
    '10.0.0.1'
    >>> IPv4Address("10.0.0.1") in IPv4Network("10.0.0.0/24")
    True
    """

    __slots__ = ("value",)

    def __init__(self, value: Union[str, int, "IPv4Address"]) -> None:
        if isinstance(value, IPv4Address):
            self.value = value.value
        elif isinstance(value, int):
            if not 0 <= value < (1 << 32):
                raise AddressError(f"IPv4 integer out of range: {value}")
            self.value = value
        elif isinstance(value, str):
            match = _IPV4_RE.match(value)
            if not match:
                raise AddressError(f"invalid IPv4 address string: {value!r}")
            octets = [int(g) for g in match.groups()]
            if any(o > 255 for o in octets):
                raise AddressError(f"IPv4 octet out of range in {value!r}")
            self.value = (
                (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]
            )
        else:
            raise AddressError(f"cannot build IPv4 from {type(value).__name__}")

    def __int__(self) -> int:
        return self.value

    def __str__(self) -> str:
        v = self.value
        return f"{v >> 24}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def __repr__(self) -> str:
        return f"IPv4Address('{self}')"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self.value == other.value
        if isinstance(other, (int, str)):
            try:
                return self.value == IPv4Address(other).value
            except AddressError:
                return NotImplemented
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.value)

    def __lt__(self, other: "IPv4Address") -> bool:
        return self.value < other.value

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address(self.value + offset)


class IPv4Network:
    """An IPv4 prefix (address + mask length) supporting containment tests.

    Examples
    --------
    >>> net = IPv4Network("192.168.1.0/24")
    >>> net.contains(IPv4Address("192.168.1.77"))
    True
    >>> net.num_addresses
    256
    """

    __slots__ = ("network", "prefix_len", "mask")

    def __init__(self, spec: Union[str, Tuple[Union[str, int, IPv4Address], int]]) -> None:
        if isinstance(spec, str):
            if "/" not in spec:
                raise AddressError(f"network spec must contain '/': {spec!r}")
            addr_part, _, len_part = spec.partition("/")
            address = IPv4Address(addr_part)
            try:
                prefix_len = int(len_part)
            except ValueError:
                raise AddressError(f"invalid prefix length in {spec!r}") from None
        else:
            address = IPv4Address(spec[0])
            prefix_len = int(spec[1])
        if not 0 <= prefix_len <= 32:
            raise AddressError(f"prefix length out of range: {prefix_len}")
        self.prefix_len = prefix_len
        self.mask = ((1 << prefix_len) - 1) << (32 - prefix_len) if prefix_len else 0
        self.network = IPv4Address(int(address) & self.mask)

    @property
    def num_addresses(self) -> int:
        return 1 << (32 - self.prefix_len)

    def contains(self, address: Union[str, int, IPv4Address]) -> bool:
        """True when ``address`` falls inside this prefix."""
        return (int(IPv4Address(address)) & self.mask) == int(self.network)

    def __contains__(self, address: Union[str, int, IPv4Address]) -> bool:
        return self.contains(address)

    def hosts(self) -> Iterator[IPv4Address]:
        """Iterate the usable host addresses (skips network/broadcast for
        prefixes shorter than /31)."""
        base = int(self.network)
        if self.prefix_len >= 31:
            for offset in range(self.num_addresses):
                yield IPv4Address(base + offset)
        else:
            for offset in range(1, self.num_addresses - 1):
                yield IPv4Address(base + offset)

    def __str__(self) -> str:
        return f"{self.network}/{self.prefix_len}"

    def __repr__(self) -> str:
        return f"IPv4Network('{self}')"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Network):
            return (
                self.network == other.network and self.prefix_len == other.prefix_len
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.network, self.prefix_len))


def mac_from_index(index: int) -> MacAddress:
    """Deterministically map a small integer to a locally-administered MAC.

    Used by topology generators to hand out stable host addresses.
    """
    if index < 0 or index >= (1 << 46):
        raise AddressError(f"index out of range for MAC generation: {index}")
    # Set the locally-administered bit (0x02) in the first octet.
    return MacAddress((0x02 << 40) | index)


def ip_from_index(index: int, base: str = "10.0.0.0") -> IPv4Address:
    """Deterministically map a small integer to an IPv4 address above ``base``."""
    base_value = int(IPv4Address(base))
    value = base_value + index + 1
    if value >= (1 << 32):
        raise AddressError(f"index {index} overflows IPv4 space from {base}")
    return IPv4Address(value)
