"""Topology serialization.

Round-trip topologies through a plain-JSON dict schema (stable,
version-tagged) and export to networkx-compatible GraphML for use with
external tooling.  Host addresses, switch dpids, link capacities/delays,
and administrative link state all survive the round trip; attached
OpenFlow pipelines do not (rules are controller state, not topology).
"""

from __future__ import annotations

import json
from typing import IO, Union

from ..errors import TopologyError
from .address import IPv4Address, MacAddress
from .topology import Topology

#: Schema version written into every document.
SCHEMA_VERSION = 1


def topology_to_dict(topology: Topology) -> dict:
    """Serialize a topology to a JSON-compatible dict.

    Examples
    --------
    >>> from repro.net.generators import linear
    >>> doc = topology_to_dict(linear(2))
    >>> doc["version"], len(doc["nodes"]), len(doc["links"])
    (1, 4, 3)
    """
    nodes = []
    for host in topology.hosts:
        nodes.append(
            {
                "name": host.name,
                "kind": "host",
                "mac": str(host.mac),
                "ip": str(host.ip),
                "metadata": dict(host.metadata),
            }
        )
    for switch in topology.switches:
        nodes.append(
            {
                "name": switch.name,
                "kind": "switch",
                "dpid": switch.dpid,
                "metadata": dict(switch.metadata),
            }
        )
    links = []
    for link in topology.links:
        links.append(
            {
                "a": link.port_a.node.name,
                "a_port": link.port_a.number,
                "b": link.port_b.node.name,
                "b_port": link.port_b.number,
                "capacity_bps": link.capacity_bps,
                "delay_s": link.delay_s,
                "up": link.up,
            }
        )
    return {
        "version": SCHEMA_VERSION,
        "name": topology.name,
        "nodes": nodes,
        "links": links,
    }


def topology_from_dict(doc: dict) -> Topology:
    """Rebuild a topology from :func:`topology_to_dict` output."""
    version = doc.get("version")
    if version != SCHEMA_VERSION:
        raise TopologyError(
            f"unsupported topology schema version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    topology = Topology(name=doc.get("name", "topology"))
    for node in doc.get("nodes", ()):
        kind = node.get("kind")
        if kind == "host":
            host = topology.add_host(
                node["name"],
                mac=MacAddress(node["mac"]),
                ip=IPv4Address(node["ip"]),
            )
            host.metadata.update(node.get("metadata", {}))
        elif kind == "switch":
            switch = topology.add_switch(node["name"], dpid=node["dpid"])
            switch.metadata.update(node.get("metadata", {}))
        else:
            raise TopologyError(f"unknown node kind {kind!r}")
    for item in doc.get("links", ()):
        link = topology.add_link(
            item["a"],
            item["b"],
            capacity_bps=item["capacity_bps"],
            delay_s=item["delay_s"],
            port_a=item.get("a_port"),
            port_b=item.get("b_port"),
        )
        if not item.get("up", True):
            link.set_up(False)
    return topology


def save_topology(topology: Topology, destination: Union[str, IO[str]]) -> None:
    """Write a topology to a JSON file (path or open text handle)."""
    doc = topology_to_dict(topology)
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            json.dump(doc, handle, indent=2)
    else:
        json.dump(doc, destination, indent=2)


def load_topology(source: Union[str, IO[str]]) -> Topology:
    """Read a topology from a JSON file (path or open text handle)."""
    if isinstance(source, str):
        with open(source) as handle:
            doc = json.load(handle)
    else:
        doc = json.load(source)
    return topology_from_dict(doc)


def save_graphml(topology: Topology, path: str) -> None:
    """Export to GraphML via networkx (for Gephi/igraph/etc.).

    Lossy relative to the JSON schema: port numbers are attributes and
    host addresses are strings, sufficient for visualization.
    """
    import networkx as nx

    graph = nx.Graph(name=topology.name)
    for host in topology.hosts:
        graph.add_node(host.name, kind="host", mac=str(host.mac), ip=str(host.ip))
    for switch in topology.switches:
        graph.add_node(switch.name, kind="switch", dpid=switch.dpid)
    for link in topology.links:
        graph.add_edge(
            link.port_a.node.name,
            link.port_b.node.name,
            capacity_bps=float(link.capacity_bps),
            delay_s=float(link.delay_s),
            a_port=link.port_a.number,
            b_port=link.port_b.number,
            up=link.up,
        )
    nx.write_graphml(graph, path)
