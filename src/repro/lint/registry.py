"""The pluggable rule registry.

A *rule* is a class with a stable id, a severity, a one-line
description, and a :meth:`Rule.check` method that yields findings for
one parsed module.  Rules self-register at import time via the
:func:`register` decorator; :func:`all_rules` returns them in id order.
Future PRs extend the linter by dropping a module into
``repro/lint/rules/`` — the framework discovers everything registered
there.

Rule ids are grouped by family prefix::

    DET...   determinism (wall clock, RNG, unordered iteration)
    SNAP...  snapshot/checkpoint safety
    TEL...   telemetry zero-cost guards
    PRIV...  cross-module private-member access
    EVT...   event-handler hygiene
    DEP...   deprecated-API usage (flat HorseConfig keys)
    LINT...  the linter's own hygiene (e.g. reason-less suppressions)
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Iterator, List, Tuple, Type

from ..errors import HorseError
from .context import ModuleContext
from .findings import LintFinding

_RULE_ID = re.compile(r"^[A-Z]+[0-9]{3}$")

_REGISTRY: Dict[str, "Rule"] = {}


class LintConfigError(HorseError):
    """Bad linter configuration (unknown rule id, bad baseline...)."""


class Rule:
    """Base class for lint rules.

    Class attributes
    ----------------
    id:
        Stable id (``DET001``); never renumbered once shipped.
    name:
        Short kebab-case slug used in SARIF rule metadata.
    severity:
        Default severity for findings this rule emits.
    description:
        One-line rationale shown by ``repro lint --list-rules``.
    scopes:
        Path components (package directory names) the rule is confined
        to; an empty tuple applies everywhere.  A module matches when
        any of its path components equals a scope name, so fixture
        trees can opt into scoped rules by directory layout.
    """

    id: str = ""
    name: str = ""
    severity: str = "error"
    description: str = ""
    scopes: Tuple[str, ...] = ()

    def applies(self, module: ModuleContext) -> bool:
        if not self.scopes:
            return True
        return any(part in self.scopes for part in module.path_parts)

    def check(self, module: ModuleContext) -> Iterator[LintFinding]:
        raise NotImplementedError

    def finding(
        self,
        module: ModuleContext,
        line: int,
        message: str,
        column: int = 0,
        severity: str | None = None,
    ) -> LintFinding:
        return LintFinding(
            rule=self.id,
            severity=severity or self.severity,
            message=message,
            file=module.path,
            line=line,
            column=column,
        )


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and add one rule to the registry."""
    rule = cls()
    if not _RULE_ID.match(rule.id or ""):
        raise LintConfigError(
            f"rule id {rule.id!r} does not match FAMILY###"
        )
    if rule.id in _REGISTRY:
        raise LintConfigError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, in id order (imports the built-ins)."""
    from . import rules as _builtin  # noqa: F401 (registration side effect)

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def select_rules(
    select: Iterable[str] = (), ignore: Iterable[str] = ()
) -> List[Rule]:
    """Filter the registry by id or id-prefix.

    ``select=('DET',)`` keeps the determinism family;
    ``ignore=('DET003',)`` drops one rule.  Unknown selectors raise, so
    a typo in CI fails loudly instead of silently linting nothing.
    """
    rules = all_rules()
    known = {rule.id for rule in rules}

    def matches(rule_id: str, selector: str) -> bool:
        return rule_id == selector or rule_id.startswith(selector)

    for selector in list(select) + list(ignore):
        if not any(matches(rule_id, selector) for rule_id in known):
            raise LintConfigError(
                f"unknown rule or family: {selector!r} "
                f"(known: {', '.join(sorted(known))})"
            )
    if select:
        rules = [
            r for r in rules if any(matches(r.id, s) for s in select)
        ]
    if ignore:
        rules = [
            r for r in rules if not any(matches(r.id, s) for s in ignore)
        ]
    return rules
