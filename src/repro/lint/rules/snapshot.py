"""Snapshot-safety rules (SNAP...).

Checkpoint/restore pickles the whole ``Horse`` object graph.  Two
static properties keep that contract honest:

* no object reachable from the graph may hold an unpicklable attribute
  (lambda, open handle, lock, live generator) unless the class scrubs
  it in ``__getstate__``/``__reduce__``;
* every process-global id counter needs watermark plumbing (a
  ``reset_*`` rewind for sweep-job isolation and an ``advance_*`` bump
  for restore), or ids allocated after a restore collide with restored
  objects.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..context import ModuleContext
from ..findings import LintFinding
from ..registry import Rule, register

#: Constructors whose results never survive a pickle round trip.
UNPICKLABLE_CALLS = {
    "threading.Lock": "a lock",
    "threading.RLock": "a lock",
    "threading.Condition": "a condition variable",
    "threading.Event": "a threading event",
    "threading.Semaphore": "a semaphore",
    "threading.BoundedSemaphore": "a semaphore",
    "multiprocessing.Lock": "a lock",
    "multiprocessing.RLock": "a lock",
}


def _class_defines(cls: ast.ClassDef, *names: str) -> bool:
    return any(
        isinstance(node, ast.FunctionDef) and node.name in names
        for node in cls.body
    )


@register
class UnpicklableAttributeRule(Rule):
    id = "SNAP001"
    name = "no-unpicklable-attributes"
    severity = "error"
    description = (
        "instance attribute holds an unpicklable value (lambda, open "
        "handle, lock, generator); checkpointing the object graph will "
        "fail — scrub it in __getstate__ or store picklable state"
    )
    #: The packages whose classes are reachable from the Horse snapshot
    #: graph (runtime/pool infrastructure lives outside the graph).
    scopes = (
        "sim",
        "flowsim",
        "pktsim",
        "openflow",
        "net",
        "control",
        "stats",
        "telemetry",
        "core",
        "traffic",
        "ixp",
        "wire",
    )

    def check(self, module: ModuleContext) -> Iterator[LintFinding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            what = self._unpicklable(module, node.value)
            if what is None:
                continue
            cls = module.enclosing_class(node)
            if cls is not None and _class_defines(
                cls, "__getstate__", "__reduce__", "__reduce_ex__"
            ):
                # The class already owns its pickling story.
                continue
            yield self.finding(
                module,
                node.lineno,
                f"self.{target.attr} holds {what}, which does not "
                f"survive checkpoint pickling; scrub it in __getstate__ "
                f"or keep picklable state",
                column=node.col_offset,
            )

    @staticmethod
    def _unpicklable(
        module: ModuleContext, value: ast.expr
    ) -> Optional[str]:
        if isinstance(value, ast.Lambda):
            return "a lambda"
        if isinstance(value, ast.GeneratorExp):
            return "a live generator"
        if isinstance(value, ast.Call):
            if isinstance(value.func, ast.Name) and value.func.id == "open":
                return "an open file handle"
            if isinstance(value.func, ast.Name) and value.func.id == "iter":
                return "a live iterator"
            origin = module.imports.resolve_call(value.func)
            if origin in UNPICKLABLE_CALLS:
                return UNPICKLABLE_CALLS[origin]
        return None


@register
class CounterWatermarkRule(Rule):
    id = "SNAP002"
    name = "id-counter-watermark"
    severity = "error"
    description = (
        "module-level itertools.count() id counter lacks watermark "
        "plumbing (reset_* + advance_* functions); restored runs would "
        "reuse ids of restored objects"
    )
    scopes = ()

    def check(self, module: ModuleContext) -> Iterator[LintFinding]:
        counters = []
        for node in module.tree.body:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            if (
                isinstance(value, ast.Call)
                and module.imports.resolve_call(value.func)
                == "itertools.count"
            ):
                counters.append((target.id, node))
        if not counters:
            return
        resets, advances = self._watermark_functions(module)
        for name, node in counters:
            missing = []
            if name not in resets:
                missing.append("reset_*")
            if name not in advances:
                missing.append("advance_*")
            if missing:
                yield self.finding(
                    module,
                    node.lineno,
                    f"id counter {name} has no {' / '.join(missing)} "
                    f"watermark function; sweep isolation and checkpoint "
                    f"restore cannot manage it",
                    column=node.col_offset,
                )

    @staticmethod
    def _watermark_functions(module: ModuleContext):
        """Names of counters referenced (via ``global``) by reset_*/
        advance_* functions in this module."""
        resets: set = set()
        advances: set = set()
        for node in module.tree.body:
            if not isinstance(node, ast.FunctionDef):
                continue
            is_reset = node.name.startswith("reset_")
            is_advance = node.name.startswith("advance_")
            if not (is_reset or is_advance):
                continue
            referenced: set = set()
            for sub in ast.walk(node):
                if isinstance(sub, ast.Global):
                    referenced.update(sub.names)
            if is_reset:
                resets.update(referenced)
            if is_advance:
                advances.update(referenced)
        return resets, advances
