"""Cross-module private-member access rules (PRIV...).

The observation-API redesign promoted every cross-module touch point to
a public name; these rules keep it that way.  They are the framework
port of ``tools/check_private_access.py`` (which now delegates here):

* PRIV001 — ``obj._name`` attribute access where ``obj`` is anything
  but the literal ``self`` or ``cls``: the static over-approximation of
  "another module's private member".
* PRIV002 — ``from x import _name``: importing a private name is
  cross-module by definition (relative imports of private *sibling
  modules* inside one package are allowed).

Same-class access through another instance (``other._seq`` in
``__lt__``) is rare and legitimate; mark those lines with
``# repro: noqa[PRIV001] - <why>`` (the legacy ``# private-ok`` marker
is still honored).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import LEGACY_PRIVATE_OK, ModuleContext
from ..findings import LintFinding
from ..registry import Rule, register

#: (receiver name, attribute) pairs that are documented APIs despite the
#: leading underscore — not another *repro* module's private member.
ALLOWED_PAIRS = {("os", "_exit")}


def _is_private(name: str) -> bool:
    return (
        name.startswith("_")
        and name != "_"
        and not (name.startswith("__") and name.endswith("__"))
    )


def _legacy_suppressed(module: ModuleContext, line: int) -> bool:
    return LEGACY_PRIVATE_OK in module.line_text(line)


@register
class PrivateAttributeRule(Rule):
    id = "PRIV001"
    name = "no-private-attribute-access"
    severity = "error"
    description = (
        "cross-module access to a _private attribute; promote the "
        "member to a public name"
    )
    scopes = ()

    def check(self, module: ModuleContext) -> Iterator[LintFinding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if not _is_private(node.attr):
                continue
            value = node.value
            if isinstance(value, ast.Name) and value.id in ("self", "cls"):
                continue
            if (
                isinstance(value, ast.Name)
                and (value.id, node.attr) in ALLOWED_PAIRS
            ):
                continue
            if _legacy_suppressed(module, node.lineno):
                continue
            receiver = (
                value.id
                if isinstance(value, ast.Name)
                else type(value).__name__.lower()
            )
            yield self.finding(
                module,
                node.lineno,
                f"private attribute access: {receiver}.{node.attr}; "
                f"promote the member to a public name",
                column=node.col_offset,
            )


@register
class PrivateImportRule(Rule):
    id = "PRIV002"
    name = "no-private-imports"
    severity = "error"
    description = (
        "`from x import _name` imports a private member across modules"
    )
    scopes = ()

    def check(self, module: ModuleContext) -> Iterator[LintFinding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            for alias in node.names:
                if not _is_private(alias.name):
                    continue
                if _legacy_suppressed(module, node.lineno):
                    continue
                origin = node.module or "." * node.level
                yield self.finding(
                    module,
                    node.lineno,
                    f"private import: from {origin} import {alias.name}",
                    column=node.col_offset,
                )
