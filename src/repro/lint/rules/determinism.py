"""Determinism rules (DET...).

The whole value of flow-level simulation — bitwise-reproducible sweeps,
trustworthy differential tests, checkpoint round trips — rests on
simulation state never depending on the host: no wall-clock reads, no
process-global RNG, no iteration order borrowed from hash tables.
These rules flag the three ways that property gets lost in practice.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from ..context import ModuleContext
from ..findings import LintFinding
from ..registry import Rule, register

#: Packages whose code computes simulation state (the poster's "temporally
#: ordered set of inputs"); wall-clock and set-order hazards live here.
SIM_STATE_SCOPES = ("sim", "flowsim", "pktsim", "runtime", "core", "wire")

#: Dotted call origins that read the host clock.
WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: ``numpy.random`` helpers that are fine: explicitly-seeded generator
#: construction, not draws from the process-global state.
NP_RANDOM_ALLOWED = {"default_rng", "Generator", "SeedSequence", "RandomState"}

#: ``random`` module members that are fine: seeded stream construction
#: and non-drawing helpers.
RANDOM_ALLOWED = {"Random"}


@register
class WallClockRule(Rule):
    id = "DET001"
    name = "no-wall-clock"
    severity = "error"
    description = (
        "simulation-state code reads the host clock; time must come from "
        "the kernel (sim.now) or the event being fired"
    )
    scopes = SIM_STATE_SCOPES

    def check(self, module: ModuleContext) -> Iterator[LintFinding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = module.imports.resolve_call(node.func)
            if origin in WALL_CLOCK_CALLS:
                yield self.finding(
                    module,
                    node.lineno,
                    f"wall-clock read {origin}(): simulation state must "
                    f"derive time from the kernel clock (sim.now)",
                    column=node.col_offset,
                )


@register
class GlobalRngRule(Rule):
    id = "DET002"
    name = "no-global-rng"
    severity = "error"
    description = (
        "draw from the process-global RNG (random.* / numpy.random.*); "
        "use a named stream from RngRegistry so seeds stay independent"
    )
    # Process-global RNG is forbidden everywhere in the package: even
    # analysis helpers feed reproducible reports.
    scopes = ()

    def check(self, module: ModuleContext) -> Iterator[LintFinding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = module.imports.resolve_call(node.func)
            if origin is None:
                continue
            flagged = self._classify(origin)
            if flagged is not None:
                yield self.finding(
                    module,
                    node.lineno,
                    flagged,
                    column=node.col_offset,
                )

    @staticmethod
    def _classify(origin: str) -> Optional[str]:
        parts = origin.split(".")
        if parts[0] == "random" and len(parts) == 2:
            member = parts[1]
            if member in RANDOM_ALLOWED:
                return None
            if member == "SystemRandom":
                return (
                    "random.SystemRandom is entropy-backed and can never "
                    "reproduce; use a seeded random.Random stream"
                )
            return (
                f"module-level random.{member}() draws from the "
                f"process-global RNG; use a named RngRegistry stream"
            )
        if parts[:2] == ["numpy", "random"] and len(parts) == 3:
            member = parts[2]
            if member in NP_RANDOM_ALLOWED:
                return None
            return (
                f"numpy.random.{member}() uses the unseeded global "
                f"generator; use RngRegistry.np_stream / "
                f"numpy.random.default_rng(seed)"
            )
        return None


def _is_set_expr_literal(node: ast.expr) -> bool:
    """Syntactically-recognizable set expression."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # a | b etc. only counts when an operand is itself a set.
        return _is_set_expr_literal(node.left) or _is_set_expr_literal(
            node.right
        )
    return False


#: Builtins whose result does not depend on element order: a set-fed
#: comprehension passed straight into one of these is deterministic.
#: (``sum`` is deliberately absent — float accumulation order matters.)
ORDER_INSENSITIVE_CONSUMERS = {
    "sorted",
    "min",
    "max",
    "any",
    "all",
    "len",
    "set",
    "frozenset",
}


def _is_set_annotation(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Name):
        return target.id in ("Set", "set", "FrozenSet", "frozenset")
    if isinstance(target, ast.Attribute):
        return target.attr in ("Set", "FrozenSet", "AbstractSet")
    return False


@register
class SetIterationRule(Rule):
    id = "DET003"
    name = "no-unordered-iteration"
    severity = "error"
    description = (
        "iteration over a set feeds simulation state or event ordering; "
        "iterate sorted(...) (or another deterministic order) instead"
    )
    scopes = ("sim", "flowsim", "pktsim", "runtime", "wire")

    def check(self, module: ModuleContext) -> Iterator[LintFinding]:
        set_attrs = self._set_attributes(module)
        for node in ast.walk(module.tree):
            iters: Tuple[ast.expr, ...] = ()
            if isinstance(node, ast.For):
                iters = (node.iter,)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                if self._feeds_order_insensitive_consumer(module, node):
                    continue
                iters = tuple(gen.iter for gen in node.generators)
            for it in iters:
                reason = self._is_set_expr(module, it, set_attrs)
                if reason:
                    yield self.finding(
                        module,
                        it.lineno,
                        f"iterating {reason} has no deterministic order; "
                        f"wrap it in sorted(...) or keep an insertion-"
                        f"ordered structure",
                        column=it.col_offset,
                    )

    # -- helpers -------------------------------------------------------
    @staticmethod
    def _feeds_order_insensitive_consumer(
        module: ModuleContext, comp: ast.expr
    ) -> bool:
        """A comprehension passed directly to sorted()/min()/... is fine."""
        parent = module.parent(comp)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in ORDER_INSENSITIVE_CONSUMERS
            and comp in parent.args
        )

    def _set_attributes(self, module: ModuleContext) -> Dict[str, Set[str]]:
        """Per-class map of ``self.X`` attributes that hold sets."""
        table: Dict[str, Set[str]] = {}
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            attrs: Set[str] = set()
            for sub in ast.walk(node):
                target: Optional[ast.expr] = None
                is_set = False
                if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                    target = sub.targets[0]
                    is_set = _is_set_expr_literal(sub.value)
                elif isinstance(sub, ast.AnnAssign):
                    target = sub.target
                    is_set = _is_set_annotation(sub.annotation) or (
                        sub.value is not None
                        and _is_set_expr_literal(sub.value)
                    )
                if (
                    is_set
                    and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attrs.add(target.attr)
            if attrs:
                table[node.name] = attrs
        return table

    def _local_set_names(self, func: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for sub in ast.walk(func):
            target = None
            is_set = False
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target = sub.targets[0]
                is_set = _is_set_expr_literal(sub.value)
            elif isinstance(sub, ast.AnnAssign):
                target = sub.target
                is_set = _is_set_annotation(sub.annotation) or (
                    sub.value is not None and _is_set_expr_literal(sub.value)
                )
            if is_set and isinstance(target, ast.Name):
                names.add(target.id)
        # Parameters annotated as sets count too.
        if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg in list(func.args.args) + list(func.args.kwonlyargs):
                if _is_set_annotation(arg.annotation):
                    names.add(arg.arg)
        return names

    def _is_set_expr(
        self,
        module: ModuleContext,
        node: ast.expr,
        set_attrs: Dict[str, Set[str]],
    ) -> Optional[str]:
        """Classify an iterated expression; returns a description or None."""
        if _is_set_expr_literal(node):
            return "a set expression"
        if isinstance(node, ast.Name):
            func = module.enclosing_function(node)
            if func is not None and node.id in self._local_set_names(func):
                return f"the set {node.id!r}"
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            cls = module.enclosing_class(node)
            if cls is not None and node.attr in set_attrs.get(cls.name, ()):
                return f"the set attribute self.{node.attr}"
        return None
