"""Built-in rule plugins.

Importing this package registers every built-in rule with
:mod:`repro.lint.registry`.  Add a module here (or import your own
anywhere before calling :func:`repro.lint.run_lint`) to extend the
linter — the framework discovers whatever the registry holds.
"""

from . import deprecation, determinism, handlers, private, snapshot, telemetry

__all__ = [
    "deprecation",
    "determinism",
    "handlers",
    "private",
    "snapshot",
    "telemetry",
]
