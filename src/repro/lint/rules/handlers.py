"""Event-handler hygiene rules (EVT...).

Kernel callbacks run in the middle of the event loop: mutating topology
there directly (``topology.fail_link(...)`` from a ``fire`` method or a
periodic tick) bypasses the engine's documented mutation points — the
engine never invalidates its route cache, never marks solver links
dirty, and never raises port-status to the controller, so the
simulation silently diverges from the rule tables.  Link churn must be
scheduled through the engine's input events (``fail_link_at`` /
``restore_link_at``), whose handlers (``on_link_state``) own the
bookkeeping.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..context import ModuleContext
from ..findings import LintFinding
from ..registry import Rule, register

#: Topology-mutating methods.
MUTATORS = {
    "fail_link",
    "restore_link",
    "add_link",
    "add_switch",
    "add_host",
}

#: Receiver names that look like a topology reference.
TOPOLOGY_NAMES = {"topology", "topo", "_topology"}

#: Handler names that ARE the documented mutation points: the engine
#: methods the LinkFailure/LinkRecovery input events dispatch to.
DOCUMENTED_MUTATION_POINTS = {"on_link_state"}


def _mentions_topology(node: ast.expr) -> bool:
    """True when the call receiver chain passes through a topology ref."""
    current = node
    while isinstance(current, ast.Attribute):
        if current.attr in TOPOLOGY_NAMES:
            return True
        current = current.value
    return isinstance(current, ast.Name) and current.id in TOPOLOGY_NAMES


def _is_kernel_callback(func: ast.FunctionDef) -> bool:
    """Heuristic: does this function run from the event loop?

    Matches ``fire`` methods (Event subclasses), ``on_*`` engine
    handlers, ``*_tick``/``*_callback`` periodic callbacks, and any
    function whose first non-self parameter is named ``sim`` (the
    kernel passes itself to every callback).
    """
    name = func.name
    if name == "fire" or name.lstrip("_").startswith("on_"):
        return True
    if name.endswith(("_tick", "_callback", "_cb")):
        return True
    params = [arg.arg for arg in func.args.args]
    if params and params[0] in ("self", "cls"):
        params = params[1:]
    return bool(params) and params[0] == "sim"


@register
class TopologyMutationRule(Rule):
    id = "EVT001"
    name = "no-topology-mutation-in-handlers"
    severity = "error"
    description = (
        "kernel callback mutates topology directly instead of routing "
        "through the engine's documented mutation points "
        "(fail_link_at/restore_link_at -> on_link_state)"
    )
    scopes = ("sim", "flowsim", "pktsim", "control", "runtime")

    def check(self, module: ModuleContext) -> Iterator[LintFinding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute) and func.attr in MUTATORS
            ):
                continue
            if not _mentions_topology(func.value):
                continue
            enclosing = self._enclosing_callback(module, node)
            if enclosing is None:
                continue
            if enclosing.name in DOCUMENTED_MUTATION_POINTS:
                continue
            yield self.finding(
                module,
                node.lineno,
                f"kernel callback {enclosing.name}() mutates topology "
                f"via .{func.attr}(); schedule an engine input event "
                f"(fail_link_at / restore_link_at) so on_link_state "
                f"does the bookkeeping",
                column=node.col_offset,
            )

    @staticmethod
    def _enclosing_callback(
        module: ModuleContext, node: ast.AST
    ) -> Optional[ast.FunctionDef]:
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, ast.FunctionDef) and _is_kernel_callback(
                ancestor
            ):
                return ancestor
        return None
