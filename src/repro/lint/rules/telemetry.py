"""Telemetry zero-cost-guard rule (TEL...).

The observation API's contract is that disabled telemetry costs one
attribute read per site: every ``trace_bus.emit(...)`` /
``profiler.add(...)`` call must be dominated by an ``is not None``
check of the same receiver.  An unguarded emission crashes when
telemetry is off (the slot holds ``None``) or — worse — silently forces
every hot-path event through attribute machinery the <5% overhead gate
exists to forbid.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..context import ModuleContext
from ..findings import LintFinding
from ..registry import Rule, register

#: Receiver names that hold a maybe-None telemetry sink.
GUARDED_RECEIVERS = {"trace_bus", "_trace_bus", "profiler", "_profiler"}

#: Emission methods on those receivers.
EMIT_METHODS = {"emit", "span", "add", "timed"}


def _receiver_key(node: ast.expr) -> Optional[str]:
    """Canonical text of a guarded receiver expression, or None."""
    if isinstance(node, ast.Name) and node.id in GUARDED_RECEIVERS:
        return node.id
    if (
        isinstance(node, ast.Attribute)
        and node.attr in GUARDED_RECEIVERS
        and isinstance(node.value, ast.Name)
    ):
        return f"{node.value.id}.{node.attr}"
    return None


def _test_guards(test: ast.expr, key: str) -> bool:
    """True when ``test`` establishes that ``key`` is not None."""
    rendered = ast.unparse(test)
    if f"{key} is not None" in rendered:
        return True
    # A bare truthiness check (``if profiler:``) also guards.
    if rendered == key:
        return True
    return False


def _test_rejects(test: ast.expr, key: str) -> bool:
    """True when ``test`` is an ``is None`` check of ``key``."""
    return f"{key} is None" in ast.unparse(test)


def _ends_control_flow(body) -> bool:
    if not body:
        return False
    tail = body[-1]
    return isinstance(tail, (ast.Return, ast.Raise, ast.Continue, ast.Break))


@register
class UnguardedEmissionRule(Rule):
    id = "TEL001"
    name = "zero-cost-guard"
    severity = "error"
    description = (
        "telemetry emission (trace_bus/profiler) not wrapped in the "
        "zero-cost `is not None` guard; crashes when telemetry is "
        "disabled and defeats the <5% overhead gate"
    )
    scopes = ()

    def applies(self, module: ModuleContext) -> bool:
        # The telemetry package itself implements the sinks: the bus
        # emitting on itself is the one legitimate unguarded caller.
        parts = module.path_parts
        for index, part in enumerate(parts[:-1]):
            if part == "repro" and parts[index + 1] == "telemetry":
                return False
        return True

    def check(self, module: ModuleContext) -> Iterator[LintFinding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute) and func.attr in EMIT_METHODS
            ):
                continue
            key = _receiver_key(func.value)
            if key is None:
                continue
            if self._guarded(module, node, key):
                continue
            yield self.finding(
                module,
                node.lineno,
                f"{key}.{func.attr}(...) is not guarded by "
                f"`{key} is not None`; telemetry slots hold None when "
                f"disabled",
                column=node.col_offset,
            )

    def _guarded(
        self, module: ModuleContext, node: ast.Call, key: str
    ) -> bool:
        # (a) an enclosing if/while/ternary establishes `key is not None`.
        child: ast.AST = node
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, (ast.If, ast.While)):
                in_else = (
                    hasattr(ancestor, "orelse") and child in ancestor.orelse
                )
                if not in_else and _test_guards(ancestor.test, key):
                    return True
                if in_else and _test_rejects(ancestor.test, key):
                    return True
            elif isinstance(ancestor, ast.IfExp):
                if child is ancestor.body and _test_guards(ancestor.test, key):
                    return True
                if child is ancestor.orelse and _test_rejects(
                    ancestor.test, key
                ):
                    return True
            elif isinstance(ancestor, ast.Assert):
                if _test_guards(ancestor.test, key):
                    return True
            # (b) an earlier sibling `if key is None: return/raise/...`
            # dominates everything after it in the same block.
            for block in ("body", "orelse", "finalbody"):
                statements = getattr(ancestor, block, None)
                if not statements or child not in statements:
                    continue
                position = statements.index(child)
                for before in statements[:position]:
                    if (
                        isinstance(before, ast.If)
                        and _test_rejects(before.test, key)
                        and _ends_control_flow(before.body)
                    ):
                        return True
                    if isinstance(before, ast.Assert) and _test_guards(
                        before.test, key
                    ):
                        return True
            child = ancestor
        return False
