"""Deprecated-API usage rule (DEP...).

The configuration redesign consolidated ``HorseConfig``'s flat
runtime knobs (``hybrid_select``, ``wire_listen``,
``checkpoint_path``, ...) into nested section dataclasses
(``config.hybrid.select``, ``config.wire.listen``,
``config.checkpoint.path``).  The flat spellings still work through
warn-once shims for external callers, but first-party code must use
the nested surface: a shimmed read in ``src/`` would hide a
deprecation warning from the user who actually needs to see it, and
keeps dead API alive past its removal date.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..findings import LintFinding
from ..registry import Rule, register

#: The deprecated flat spellings and their nested replacements — kept
#: in sync with ``repro.core.config.FLAT_KEY_MAP`` by
#: ``tests/test_config_api.py``.
FLAT_KEYS = {
    "hybrid_select": "hybrid.select",
    "hybrid_sync_interval_s": "hybrid.sync_interval_s",
    "wire_listen": "wire.listen",
    "wire_client": "wire.client",
    "wire_client_routes": "wire.client_routes",
    "wire_sync_quantum_s": "wire.sync_quantum_s",
    "wire_latency_budget_s": "wire.latency_budget_s",
    "wire_dilation": "wire.dilation",
    "monitor_interval_s": "telemetry.monitor_interval_s",
    "monitor_threshold": "telemetry.monitor_threshold",
    "monitor_mode": "telemetry.monitor_mode",
    "monitor_push_min_delta_bytes": "telemetry.monitor_push_min_delta_bytes",
    "link_sample_interval_s": "telemetry.link_sample_interval_s",
    "trace_path": "telemetry.trace_path",
    "profile": "telemetry.profile",
    "checkpoint_path": "checkpoint.path",
    "checkpoint_interval_s": "checkpoint.interval_s",
}

#: Receivers we treat as holding a HorseConfig for attribute reads.
CONFIG_RECEIVERS = {"config", "cfg", "horse_config"}


def _is_config_receiver(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in CONFIG_RECEIVERS
    if isinstance(node, ast.Attribute):
        return node.attr in CONFIG_RECEIVERS
    return False


@register
class DeprecatedFlatConfigRule(Rule):
    id = "DEP001"
    name = "flat-config-key"
    severity = "error"
    description = (
        "deprecated flat HorseConfig key used in first-party code; "
        "use the nested section (config.hybrid/.wire/.telemetry/"
        ".checkpoint/.shard) instead"
    )
    scopes = ()

    def applies(self, module: ModuleContext) -> bool:
        # The config module defines the shims; it may spell them.
        parts = module.path_parts
        for index, part in enumerate(parts[:-1]):
            if part == "repro" and parts[index + 1 :] in (
                ("core", "config"),
            ):
                return False
        return True

    def check(self, module: ModuleContext) -> Iterator[LintFinding]:
        for node in ast.walk(module.tree):
            # HorseConfig(hybrid_select=...) style construction.
            if isinstance(node, ast.Call):
                callee = node.func
                name = (
                    callee.id
                    if isinstance(callee, ast.Name)
                    else callee.attr
                    if isinstance(callee, ast.Attribute)
                    else None
                )
                if name != "HorseConfig":
                    continue
                for keyword in node.keywords:
                    replacement = FLAT_KEYS.get(keyword.arg or "")
                    if replacement:
                        yield self.finding(
                            module,
                            keyword.value.lineno,
                            f"HorseConfig({keyword.arg}=...) is deprecated; "
                            f"pass the nested form ({replacement})",
                            column=keyword.value.col_offset,
                        )
            # config.hybrid_select style attribute reads.
            elif isinstance(node, ast.Attribute):
                replacement = FLAT_KEYS.get(node.attr)
                if replacement and _is_config_receiver(node.value):
                    yield self.finding(
                        module,
                        node.lineno,
                        f"reading deprecated flat key .{node.attr}; "
                        f"use .{replacement}",
                        column=node.col_offset,
                    )
