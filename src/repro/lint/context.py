"""Per-module parse context shared by every rule.

One :class:`ModuleContext` is built per linted file: the parsed AST, a
parent map (rules walk *up* to find enclosing guards/functions), the
source lines, the import alias table, and the ``# repro: noqa[...]``
suppression map.  Building these once keeps an N-rule run at one parse
per file.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

#: ``# repro: noqa[DET001]`` or ``# repro: noqa[DET001,TEL001] - reason``.
NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa\[([A-Za-z0-9_,\s*]+)\]\s*(?:[-:]\s*(?P<reason>\S.*))?"
)

#: Legacy suppression marker honored by the PRIV rules (predates the
#: framework; new code should use ``# repro: noqa[PRIV001] - reason``).
LEGACY_PRIVATE_OK = "private-ok"


class Suppression:
    """One parsed noqa comment: the rule ids it covers and its reason."""

    __slots__ = ("rules", "reason", "line")

    def __init__(self, rules: Set[str], reason: Optional[str], line: int) -> None:
        self.rules = rules
        self.reason = reason
        self.line = line

    def covers(self, rule_id: str) -> bool:
        return "*" in self.rules or rule_id in self.rules


class ModuleContext:
    """Everything rules need to know about one parsed module."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines: List[str] = source.splitlines()
        #: Normalized path components ("src", "repro", "flowsim", ...)
        #: with the trailing filename included minus extension.
        parts = re.split(r"[\\/]", path)
        if parts and parts[-1].endswith(".py"):
            parts[-1] = parts[-1][:-3]
        self.path_parts: Tuple[str, ...] = tuple(p for p in parts if p)
        self._parent: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self._parent[child] = node
        self.suppressions: Dict[int, Suppression] = self._parse_noqa()
        self.imports = ImportTable(tree)

    # ------------------------------------------------------------------
    # Tree navigation
    # ------------------------------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parent.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The chain from ``node``'s parent up to the module."""
        current = self._parent.get(node)
        while current is not None:
            yield current
            current = self._parent.get(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.FunctionDef | ast.AsyncFunctionDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    # ------------------------------------------------------------------
    # Suppressions
    # ------------------------------------------------------------------
    def _parse_noqa(self) -> Dict[int, Suppression]:
        table: Dict[int, Suppression] = {}
        for index, text in enumerate(self.lines, start=1):
            match = NOQA_PATTERN.search(text)
            if match is None:
                continue
            rules = {
                part.strip()
                for part in match.group(1).split(",")
                if part.strip()
            }
            table[index] = Suppression(rules, match.group("reason"), index)
        return table

    def suppression_at(self, line: int) -> Optional[Suppression]:
        return self.suppressions.get(line)

    def line_text(self, line: int) -> str:
        if 0 < line <= len(self.lines):
            return self.lines[line - 1]
        return ""


class ImportTable:
    """Resolved import aliases of one module.

    Maps local names to the dotted origin they refer to, so rules can
    recognize ``import time as _time`` / ``from datetime import
    datetime`` without hard-coding alias spellings.
    """

    def __init__(self, tree: ast.Module) -> None:
        #: local alias -> dotted module path ("_time" -> "time")
        self.modules: Dict[str, str] = {}
        #: local name -> "module.attr" ("perf_counter" -> "time.perf_counter")
        self.names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.names[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
                    # ``from numpy import random`` binds a module too.
                    self.modules.setdefault(
                        alias.asname or alias.name,
                        f"{node.module}.{alias.name}",
                    )

    def resolve_call(self, func: ast.expr) -> Optional[str]:
        """Dotted origin of a called expression, or None.

        ``_time.perf_counter`` -> ``time.perf_counter`` under
        ``import time as _time``; ``perf_counter`` -> same under
        ``from time import perf_counter``; ``np.random.rand`` ->
        ``numpy.random.rand`` under ``import numpy as np``.
        """
        chain: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            root = node.id
            if chain:
                base = self.modules.get(root)
                if base is None and root in self.names:
                    base = self.names[root]
                if base is None:
                    return None
                return ".".join([base] + list(reversed(chain)))
            return self.names.get(root)
        return None
