"""Typed findings produced by the simulation-correctness linter.

A :class:`LintFinding` is one static defect in the *code* (a wall-clock
read in simulation state, an unpicklable attribute, an unguarded
telemetry emission ...), the source-level sibling of the data-plane
:class:`repro.analysis.findings.Finding`.  Both render to the same
JSON/SARIF envelope (rule id, severity, location, message, fingerprint
— see :func:`repro.analysis.findings.envelope`), so CI can merge the
``repro analyze`` and ``repro lint`` reports into one stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..analysis.findings import (
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    envelope,
    fingerprint_of,
    sarif_document,
    severity_rank,
)

__all__ = [
    "LintFinding",
    "LintReport",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "SEVERITY_INFO",
]


@dataclass(frozen=True)
class LintFinding:
    """One source-level finding.

    Attributes
    ----------
    rule:
        Stable rule id (``DET001``, ``SNAP002``, ...).
    severity:
        ``error`` / ``warning`` / ``info`` — shared vocabulary with the
        data-plane analyzer.
    message:
        Human-readable one-line description.
    file:
        Path of the offending module, as given on the command line.
    line / column:
        1-based line and 0-based column of the offending node.
    """

    rule: str
    severity: str
    message: str
    file: str
    line: int
    column: int = 0

    def location(self) -> Dict[str, object]:
        return {"file": self.file, "line": self.line, "column": self.column}

    @property
    def fingerprint(self) -> str:
        return fingerprint_of(self.rule, self.location(), self.message)

    def to_envelope(self) -> Dict[str, object]:
        return envelope(self.rule, self.severity, self.message, self.location())

    def __str__(self) -> str:
        return (
            f"{self.file}:{self.line}:{self.column + 1}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )


@dataclass
class LintReport:
    """The full result of one lint run."""

    findings: List[LintFinding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: int = 0
    #: Findings suppressed by ``# repro: noqa[...]`` comments.
    suppressed: int = 0
    #: Findings filtered by the baseline file.
    baselined: int = 0

    @property
    def errors(self) -> List[LintFinding]:
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> List[LintFinding]:
        return [f for f in self.findings if f.severity == SEVERITY_WARNING]

    @property
    def ok(self) -> bool:
        return not self.findings

    def by_rule(self, rule: str) -> List[LintFinding]:
        return [f for f in self.findings if f.rule == rule]

    def sorted_findings(self) -> List[LintFinding]:
        return sorted(
            self.findings,
            key=lambda f: (f.file, f.line, f.column, f.rule, f.message),
        )

    def extend(self, findings: List[LintFinding]) -> None:
        self.findings.extend(findings)

    def exit_code(self, strict: bool = False) -> int:
        """CI gate semantics, shared with ``repro analyze``: the exit
        status reports findings only when ``strict`` is set; otherwise
        findings flow to the report (text/JSON/SARIF) and the command
        exits 0 so CI can merge reports before gating."""
        if strict and self.findings:
            return 1
        return 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "files_checked": self.files_checked,
            "rules_run": self.rules_run,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "findings": [f.to_envelope() for f in self.sorted_findings()],
        }

    def to_sarif(self) -> Dict[str, object]:
        """SARIF 2.1.0 document (same run shape as ``repro analyze``)."""
        from .registry import all_rules

        known = {rule.id: rule for rule in all_rules()}
        used = sorted({f.rule for f in self.findings})
        rules = [
            {
                "id": rule_id,
                "name": known[rule_id].name if rule_id in known else rule_id,
                "description": (
                    known[rule_id].description if rule_id in known else ""
                ),
            }
            for rule_id in used
        ]
        return sarif_document(
            [f.to_envelope() for f in self.sorted_findings()],
            rules,
            tool_name="repro-lint",
        )

    def summary_text(self) -> str:
        lines = [
            f"checked {self.files_checked} file(s) against "
            f"{self.rules_run} rule(s)"
            + (
                f" ({self.suppressed} suppressed, {self.baselined} baselined)"
                if self.suppressed or self.baselined
                else ""
            )
        ]
        if not self.findings:
            lines.append("no findings: simulation-correctness lint clean")
            return "\n".join(lines)
        for finding in self.sorted_findings():
            lines.append(str(finding))
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.findings) - len(self.errors) - len(self.warnings)} info"
        )
        return "\n".join(lines)

    def severity_rank(self, severity: str) -> int:
        return severity_rank(severity)
