"""Simulation-correctness lint framework.

A pluggable AST-based static analyzer for the *code* of the simulator,
the source-level sibling of :mod:`repro.analysis` (which verifies the
installed forwarding state).  Five built-in rule families enforce the
invariants the runtime differential suites otherwise discover hours
late: determinism (DET...), snapshot safety (SNAP...), telemetry
zero-cost guards (TEL...), cross-module private access (PRIV...), and
event-handler hygiene (EVT...).

Quick use::

    from repro.lint import run_lint
    report = run_lint(["src/repro"])
    assert report.ok, report.summary_text()

or from the command line::

    repro lint src/ --format sarif --strict

Both tools share one finding envelope (rule id, severity, location,
message, fingerprint — :func:`repro.analysis.findings.envelope`), so CI
merges their JSON/SARIF reports into a single stream.
"""

from .context import ModuleContext
from .engine import (
    iter_python_files,
    lint_source,
    load_baseline,
    run_lint,
    write_baseline,
)
from .findings import LintFinding, LintReport
from .registry import (
    LintConfigError,
    Rule,
    all_rules,
    register,
    select_rules,
)

__all__ = [
    "LintConfigError",
    "LintFinding",
    "LintReport",
    "ModuleContext",
    "Rule",
    "all_rules",
    "iter_python_files",
    "lint_source",
    "load_baseline",
    "register",
    "run_lint",
    "select_rules",
    "write_baseline",
]
