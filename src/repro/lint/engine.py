"""The lint driver: walk files, run rules, apply suppressions/baseline.

:func:`run_lint` is the programmatic entry point behind ``repro lint``:

>>> from repro.lint import run_lint
>>> report = run_lint(["src/repro"])          # doctest: +SKIP
>>> report.ok                                  # doctest: +SKIP
True

Suppression semantics
---------------------
A finding is dropped when its line carries ``# repro: noqa[RULE]`` (or
``noqa[*]``) naming its rule id.  The comment should carry a reason
(``# repro: noqa[DET001] - profiler wall clock, never feeds sim state``);
a reason-less suppression is itself reported as LINT002 so intentional
exceptions stay documented.

Baseline semantics
------------------
A baseline file is a JSON document of known-finding fingerprints;
findings whose fingerprint appears there are counted but not reported.
The shipped baseline is empty — the codebase lints clean — and exists
so downstream forks can adopt the linter incrementally.
"""

from __future__ import annotations

import ast
import json
import os
from typing import Iterable, List, Optional, Sequence

from .context import ModuleContext
from .findings import LintFinding, LintReport
from .registry import LintConfigError, Rule, select_rules

#: Rule id reserved for unparsable files.
SYNTAX_RULE = "LINT001"
#: Rule id reserved for reason-less suppressions.
BARE_NOQA_RULE = "LINT002"

BASELINE_VERSION = 1


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` paths."""
    found: List[str] = []
    for root in paths:
        if os.path.isfile(root):
            found.append(root)
            continue
        if not os.path.isdir(root):
            raise LintConfigError(f"no such file or directory: {root}")
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(
                d for d in dirnames if d != "__pycache__"
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    found.append(os.path.join(dirpath, filename))
    return found


def load_baseline(path: str) -> set:
    """Read a baseline file -> set of fingerprints."""
    with open(path) as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "fingerprints" not in document:
        raise LintConfigError(
            f"baseline {path}: expected an object with a 'fingerprints' list"
        )
    return set(document["fingerprints"])


def write_baseline(path: str, report: LintReport) -> int:
    """Persist every current finding's fingerprint; returns the count."""
    fingerprints = sorted({f.fingerprint for f in report.findings})
    with open(path, "w") as handle:
        json.dump(
            {"version": BASELINE_VERSION, "fingerprints": fingerprints},
            handle,
            indent=2,
        )
        handle.write("\n")
    return len(fingerprints)


def lint_source(
    path: str,
    source: str,
    rules: Sequence[Rule],
    report: LintReport,
) -> None:
    """Lint one in-memory module into ``report`` (testing seam)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.findings.append(
            LintFinding(
                rule=SYNTAX_RULE,
                severity="error",
                message=f"file does not parse: {exc.msg}",
                file=path,
                line=exc.lineno or 1,
                column=(exc.offset or 1) - 1,
            )
        )
        return
    module = ModuleContext(path, source, tree)
    kept: List[LintFinding] = []
    used_suppressions: set = set()
    for rule in rules:
        if not rule.applies(module):
            continue
        for finding in rule.check(module):
            suppression = module.suppression_at(finding.line)
            if suppression is not None and suppression.covers(finding.rule):
                report.suppressed += 1
                used_suppressions.add(suppression.line)
                continue
            kept.append(finding)
    # A suppression that fires without a reason string is itself a
    # finding: intentional exceptions must say why they are exceptions.
    for line, suppression in module.suppressions.items():
        if line in used_suppressions and not suppression.reason:
            kept.append(
                LintFinding(
                    rule=BARE_NOQA_RULE,
                    severity="warning",
                    message=(
                        "suppression without a reason: append "
                        "'- <why this is an intentional exception>'"
                    ),
                    file=path,
                    line=line,
                )
            )
    report.findings.extend(kept)


def run_lint(
    paths: Sequence[str],
    select: Iterable[str] = (),
    ignore: Iterable[str] = (),
    baseline: Optional[str] = None,
) -> LintReport:
    """Lint ``paths`` and return the aggregated report."""
    rules = select_rules(select=select, ignore=ignore)
    report = LintReport(rules_run=len(rules))
    for path in iter_python_files(paths):
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        lint_source(path, source, rules, report)
        report.files_checked += 1
    if baseline is not None:
        known = load_baseline(baseline)
        if known:
            fresh = []
            for finding in report.findings:
                if finding.fingerprint in known:
                    report.baselined += 1
                else:
                    fresh.append(finding)
            report.findings = fresh
    return report
