"""Hybrid flow/packet co-simulation.

Operator-selected *foreground* flows run at packet granularity inside
flow-level *background* traffic on the same kernel and clock.  See
:mod:`repro.hybrid.engine` for the coupling model.
"""

from .engine import HybridEngine
from .selection import SelectionPolicy

__all__ = ["HybridEngine", "SelectionPolicy"]
