"""Foreground selection policies for the hybrid engine.

A selection spec decides which submitted flows run at packet
granularity (the *foreground*) while the rest stay in the fluid model.
Specs are plain strings so they travel through scenario JSON and the
CLI unchanged:

``none``
    No foreground; the hybrid engine degrades to pure flow-level.
``all``
    Every flow is foreground (pure packet-level with the coupler on).
``top:K``
    The K highest-demand flows (ties broken by lower flow id).  Needs
    the full submitted set, so classification happens at run start;
    flows submitted later join the foreground when their demand
    exceeds the finalized threshold.
``match:field=value[,field=value...]``
    Flows whose headers (or ``src``/``dst`` host names) match every
    given field.  Values compare against ``str(field value)``, so
    ``match:tp_dst=80`` and ``match:ip_dst=10.0.0.2`` both work.

The parsed policy is plain data (no closures), so hybrid checkpoints
stay picklable.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from ..errors import SimulationError
from ..flowsim.flow import Flow
from ..openflow.headers import HeaderFields

#: Header fields a match spec may reference, plus the two pseudo-fields
#: resolved against the flow itself rather than its headers.
_MATCH_FIELDS = tuple(f.name for f in dataclasses.fields(HeaderFields))
_PSEUDO_FIELDS = ("src", "dst")


class SelectionPolicy:
    """Parsed foreground-selection spec (picklable plain data)."""

    __slots__ = ("spec", "kind", "top_k", "fields")

    def __init__(self, spec: Optional[str]) -> None:
        self.spec = spec if spec else "none"
        self.top_k = 0
        self.fields: Tuple[Tuple[str, str], ...] = ()
        text = self.spec.strip()
        if text in ("none", "all"):
            self.kind = text
        elif text.startswith("top:"):
            self.kind = "top"
            try:
                self.top_k = int(text[len("top:"):])
            except ValueError:
                raise SimulationError(f"bad top-K selection spec {spec!r}") from None
            if self.top_k < 0:
                raise SimulationError(f"top-K must be >= 0, got {self.top_k}")
        elif text.startswith("match:"):
            self.kind = "match"
            pairs: List[Tuple[str, str]] = []
            for clause in text[len("match:"):].split(","):
                field, sep, value = clause.partition("=")
                field = field.strip()
                if not sep or not field or not value:
                    raise SimulationError(
                        f"bad match clause {clause!r} in selection spec {spec!r}"
                    )
                if field not in _MATCH_FIELDS and field not in _PSEUDO_FIELDS:
                    raise SimulationError(
                        f"unknown match field {field!r}; expected one of "
                        f"{_MATCH_FIELDS + _PSEUDO_FIELDS}"
                    )
                pairs.append((field, value.strip()))
            if not pairs:
                raise SimulationError(f"empty match selection spec {spec!r}")
            self.fields = tuple(pairs)
        else:
            raise SimulationError(
                f"unknown selection spec {spec!r}; expected none, all, "
                f"top:K, or match:field=value[,...]"
            )

    @property
    def deferred(self) -> bool:
        """True when classification needs the full submitted set."""
        return self.kind == "top"

    def matches(self, flow: Flow) -> bool:
        """Immediate (non-deferred) classification of one flow."""
        if self.kind == "none":
            return False
        if self.kind == "all":
            return True
        if self.kind == "match":
            for field, want in self.fields:
                if field in _PSEUDO_FIELDS:
                    actual = getattr(flow, field)
                else:
                    actual = getattr(flow.headers, field)
                if actual is None or str(actual) != want:
                    return False
            return True
        raise SimulationError(
            f"selection {self.spec!r} is deferred; use pick_top()"
        )

    def pick_top(self, flows: List[Flow]) -> List[Flow]:
        """The top-K flows by demand (ties broken by lower flow id)."""
        ranked = sorted(flows, key=lambda f: (-f.demand_bps, f.flow_id))
        return ranked[: self.top_k]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SelectionPolicy {self.spec!r}>"
