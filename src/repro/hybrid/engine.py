"""The hybrid flow/packet co-simulation engine.

Couples a flow-level :class:`~repro.flowsim.engine.FlowLevelEngine`
(the *background*) with a packet-level
:class:`~repro.pktsim.engine.PacketLevelEngine` (the *foreground*) on
one kernel and clock.  A :class:`~repro.hybrid.selection.SelectionPolicy`
decides which submitted flows run at packet granularity; everything
else stays in the fluid model.

Coupling model
--------------
Two one-way couplings, resolved at a configurable sync cadence:

background -> foreground
    Every packet transmission samples the *residual* capacity of its
    link direction: the configured rate minus the fair-share load of
    background flows on that direction (floored at
    ``RESIDUAL_FLOOR`` of the configured rate so the foreground never
    fully stalls).  Foreground packets therefore serialize slower on
    links the background congests.

foreground -> background
    Each sync tick measures every foreground flow's achieved rate and
    feeds it into the fair-share solver as an external demand along the
    flow's current route.  Inelastic (CBR) foreground flows enter
    *pinned* — granted off the top before progressive filling — while
    elastic foreground flows compete at a demand slightly above their
    measured rate so they can probe for more.

The empty-foreground case schedules nothing extra: the sync tick is
created lazily when the first foreground flow is dispatched, so
``select="none"`` is event-for-event identical to pure flow-level
simulation (the differential harness asserts this bitwise).

All scheduled callbacks and the queue-level ``capacity_fn`` are bound
methods of this engine, keeping hybrid checkpoints picklable.
"""

from __future__ import annotations

import logging
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import SimulationError
from ..flowsim.engine import FlowLevelEngine
from ..flowsim.flow import Flow, FlowState
from ..net.link import LinkDirection
from ..net.topology import Topology
from ..pktsim.engine import PacketLevelEngine
from ..sim.event import CallbackEvent
from ..sim.kernel import Simulator
from .selection import SelectionPolicy

logger = logging.getLogger(__name__)

#: Fraction of a link's configured rate the foreground always keeps,
#: however much background load the solver reports.  Guards against a
#: zero transmit rate (infinite tx_time) on fully saturated links.
RESIDUAL_FLOOR = 0.01

#: Headroom multiplier applied to a measured elastic foreground rate
#: before it enters the solver: demanding slightly more than achieved
#: lets a queue-limited flow probe upward instead of locking in a
#: transient dip.
DEMAND_GROWTH = 1.25

#: Elastic foreground demands never fall below this fraction of the
#: flow's nominal demand, so an idle-measured flow keeps a foothold in
#: the fair-share computation.
DEMAND_FLOOR_FRACTION = 0.01


class HybridEngine:
    """Co-simulates selected flows at packet granularity inside
    flow-level background traffic.

    Parameters
    ----------
    select:
        Foreground selection spec (see
        :class:`~repro.hybrid.selection.SelectionPolicy`).
    sync_interval_s:
        Cadence of the foreground/background coupling exchange.
    solver:
        Background fair-share solver mode; ``"vector"`` is rejected
        because the coupling needs the incremental solver's external
        demand bookkeeping.
    Remaining parameters mirror the two sub-engines.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        control: Optional[object] = None,
        select: str = "none",
        sync_interval_s: float = 0.05,
        solver: Optional[str] = None,
        route_cache: bool = True,
        mean_packet_bytes: int = 1000,
        max_hops: int = 64,
        mtu_bytes: int = 1500,
        queue_capacity_packets: int = 100,
    ) -> None:
        if sync_interval_s <= 0:
            raise SimulationError(
                f"hybrid sync interval must be > 0, got {sync_interval_s}"
            )
        if solver == "vector":
            raise SimulationError(
                "hybrid engine needs the incremental solver's external-demand "
                "support; solver='vector' is not compatible"
            )
        self.sim = sim
        self.topology = topology
        self.control = control
        self.policy = SelectionPolicy(select)
        self.sync_interval_s = sync_interval_s
        self.background = FlowLevelEngine(
            sim,
            topology,
            control=control,
            max_hops=max_hops,
            mean_packet_bytes=mean_packet_bytes,
            solver=solver,
            route_cache=route_cache,
        )
        self.foreground = PacketLevelEngine(
            sim,
            topology,
            control=control,
            mtu_bytes=mtu_bytes,
            queue_capacity_packets=queue_capacity_packets,
            max_hops=max_hops,
            capacity_fn=self._residual_capacity,
        )
        #: Every submitted flow in submission order (both classes);
        #: snapshots and result assembly read this.
        self.flows: Dict[int, Flow] = {}
        # Foreground membership.  A Dict (not a set) so iteration order
        # is insertion order — DET003 forbids bare set iteration in
        # simulation scopes.
        self._fg: Dict[int, Flow] = {}
        # Flows buffered until a deferred (top-K) policy can rank the
        # full submitted set at run start.
        self._pending: List[Flow] = []
        # Demand threshold fixed by finalize() for deferred policies:
        # late-submitted flows join the foreground above it.  None until
        # finalized; +inf when top:0 selected nothing.
        self._threshold: Optional[float] = None
        self._finalized = False
        # flow_id -> (t, bytes_sent) at the last sync; presence marks a
        # flow currently coupled into the background solver.
        self._measured: Dict[int, Tuple[float, float]] = {}
        self._sync_scheduled = False
        # Persistent sync timer, re-armed via Simulator.reschedule after
        # each firing (one push per tick, no per-tick allocation).
        self._sync_event: Optional[CallbackEvent] = None
        self.stats = {
            "syncs": 0,
            "foreground_flows": 0,
            "background_flows": 0,
            "external_updates": 0,
        }

    # ------------------------------------------------------------------
    # Submission and classification
    # ------------------------------------------------------------------
    def submit(self, flow: Flow) -> Flow:
        """Route a flow to the foreground or background engine."""
        if flow.flow_id in self.flows:
            raise SimulationError(f"flow {flow.flow_id} submitted twice")
        self.flows[flow.flow_id] = flow
        if self.policy.deferred and not self._finalized:
            self._pending.append(flow)
            return flow
        self._dispatch(flow, self._classify(flow))
        return flow

    def submit_all(self, flows: Iterable[Flow]) -> List[Flow]:
        return [self.submit(f) for f in flows]

    def finalize(self) -> None:
        """Classify deferred submissions; idempotent, called at run
        start (late submits then classify against the fixed threshold)."""
        if self._finalized:
            return
        self._finalized = True
        if not self.policy.deferred:
            return
        picked = self.policy.pick_top(self._pending)
        self._threshold = (
            min(f.demand_bps for f in picked) if picked else float("inf")
        )
        picked_ids = {f.flow_id for f in picked}
        pending, self._pending = self._pending, []
        for flow in pending:
            self._dispatch(flow, flow.flow_id in picked_ids)

    def _classify(self, flow: Flow) -> bool:
        if self.policy.deferred:
            # Post-finalize late submission: at or above the K-th
            # ranked demand means it would have been picked.
            return flow.demand_bps >= self._threshold
        return self.policy.matches(flow)

    def _dispatch(self, flow: Flow, is_foreground: bool) -> None:
        if is_foreground:
            self._fg[flow.flow_id] = flow
            self.stats["foreground_flows"] += 1
            self.foreground.submit(flow)
            self._ensure_sync()
        else:
            self.stats["background_flows"] += 1
            self.background.submit(flow)

    # ------------------------------------------------------------------
    # Coupling
    # ------------------------------------------------------------------
    def _residual_capacity(self, direction: LinkDirection) -> float:
        """Link rate minus flow-level background load, floored so the
        foreground always keeps RESIDUAL_FLOOR of the configured rate."""
        capacity = direction.capacity_bps
        residual = capacity - self.background.background_load(direction)
        floor = capacity * RESIDUAL_FLOOR
        return residual if residual > floor else floor

    def _ensure_sync(self) -> None:
        # Lazy: select="none" must schedule nothing so the background
        # engine's event sequence matches pure flowsim bitwise.
        if self._sync_scheduled:
            return
        self._sync_scheduled = True
        event = CallbackEvent(
            self.sim.now + self.sync_interval_s, self._sync_timer
        )
        event.daemon = True  # an idle sync loop must not keep run() alive
        self._sync_event = self.sim.schedule(event)

    def _sync_timer(self, sim: Simulator) -> None:
        """Recurring sync driver: run one tick, then re-arm the timer.

        Re-arming after the callback (not before) keeps the kernel
        sequence-number consumption identical to the periodic-event
        formulation this replaced, so event orderings are unchanged.
        """
        self._sync_tick(sim, sim.now)
        self._sync_event = sim.reschedule(
            self._sync_event, sim.now + self.sync_interval_s
        )

    def _sync_tick(self, sim: Simulator, t: float) -> None:
        self.stats["syncs"] += 1
        bus = self.foreground.trace_bus
        if bus is not None:
            with bus.span(
                "hybrid.sync", foreground=len(self._fg), coupled=len(self._measured)
            ):
                self._sync_once(t)
        else:
            self._sync_once(t)

    def _sync_once(self, now: float) -> None:
        """One coupling exchange: measure foreground rates, refresh the
        solver's external demands, recompute background fair shares."""
        updated = False
        for flow_id in sorted(self._fg):
            flow = self._fg[flow_id]
            if flow.finished:
                if flow_id in self._measured:
                    del self._measured[flow_id]
                    self.background.clear_external_demand(("fg", flow_id))
                    updated = True
                continue
            if flow.state == FlowState.PENDING:
                continue
            demand = self._measure_demand(flow, now)
            self._measured[flow_id] = (now, flow.bytes_sent)
            route = self.background.probe_route(flow)
            self.background.set_external_demand(
                ("fg", flow_id),
                demand,
                route.directions,
                pinned=not flow.elastic,
                weight=flow.weight,
            )
            self.stats["external_updates"] += 1
            updated = True
        if updated:
            self.background.recompute_rates()

    def _measure_demand(self, flow: Flow, now: float) -> float:
        """Solver-side demand for one active foreground flow."""
        if not flow.elastic:
            # CBR traffic injects at its nominal rate regardless of
            # congestion; pin exactly that.
            return flow.demand_bps
        last = self._measured.get(flow.flow_id)
        if last is None:
            # First sight: assume the nominal demand until measured.
            return flow.demand_bps
        t_last, bytes_last = last
        dt = now - t_last
        if dt <= 0.0:
            return flow.demand_bps
        achieved = (flow.bytes_sent - bytes_last) * 8.0 / dt
        demand = achieved * DEMAND_GROWTH
        floor = flow.demand_bps * DEMAND_FLOOR_FRACTION
        if demand < floor:
            demand = floor
        return demand if demand < flow.demand_bps else flow.demand_bps

    # ------------------------------------------------------------------
    # Control-plane protocol (fan-out to the owning sub-engine)
    # ------------------------------------------------------------------
    def notify_rules_changed(self, dpid: int) -> None:
        self.background.notify_rules_changed(dpid)

    def apply_packet_out(self, message, ports: List[int]) -> None:
        if message.flow_id in self._fg:
            self.foreground.apply_packet_out(message, ports)
        else:
            self.background.apply_packet_out(message, ports)

    def sync_statistics(self, now: Optional[float] = None) -> None:
        self.background.sync_statistics(now)

    def enable_entry_expiry(self, interval: float = 1.0) -> None:
        self.background.enable_entry_expiry(interval)

    def fail_link_at(self, time: float, a: str, b: str) -> None:
        self.background.fail_link_at(time, a, b)

    def restore_link_at(self, time: float, a: str, b: str) -> None:
        self.background.restore_link_at(time, a, b)

    def finish(self) -> None:
        self.background.finish()

    # ------------------------------------------------------------------
    # Telemetry plumbing (fan out to both sub-engines)
    # ------------------------------------------------------------------
    @property
    def trace_bus(self):
        return self.foreground.trace_bus

    @trace_bus.setter
    def trace_bus(self, bus) -> None:
        self.foreground.trace_bus = bus
        self.background.trace_bus = bus

    @property
    def profiler(self):
        return self.foreground.profiler

    @profiler.setter
    def profiler(self, profiler) -> None:
        self.foreground.profiler = profiler
        self.background.profiler = profiler

    @property
    def observers(self) -> list:
        """Flow lifecycle observers live on the background engine."""
        return self.background.observers

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Merged outcome counters across both traffic classes."""
        bg = self.background.summary()
        fg = self.foreground.summary()
        out = dict(bg)
        out["total_flows"] = len(self.flows)
        for key in ("bytes_sent", "bytes_delivered", "bytes_dropped"):
            out[key] = bg[key] + fg[key]
        out["foreground"] = fg
        out["syncs"] = self.stats["syncs"]
        out["foreground_flows"] = self.stats["foreground_flows"]
        out["background_flows"] = self.stats["background_flows"]
        return out

    def engine_stats(self) -> dict:
        """Engine internals for run diagnostics (deterministic)."""
        out = {
            "engine": "hybrid",
            "select": self.policy.spec,
            "sync_interval_s": self.sync_interval_s,
        }
        out.update(self.stats)
        out["foreground_engine"] = self.foreground.engine_stats()
        out["background_engine"] = self.background.engine_stats()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<HybridEngine select={self.policy.spec!r} "
            f"fg={len(self._fg)} flows={len(self.flows)}>"
        )
