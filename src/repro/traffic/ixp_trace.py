"""Synthetic IXP traffic traces.

The paper evaluates Horse "using real data from the IXP itself"; that
data is proprietary, so this module synthesizes traces with the same
statistical structure (the substitution documented in DESIGN.md):

* **gravity** pair demands from skewed member weights,
* **role asymmetry** — content members source toward eyeballs,
* **peering filtering** through the route server,
* **diurnal modulation** across replay epochs,
* **heavy-tailed flow sizes** with a web-dominated application mix.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..errors import TrafficError
from ..flowsim.flow import Flow
from ..ixp.fabric import IxpFabric
from .flowgen import FlowGenConfig, FlowGenerator
from .matrix import TrafficMatrix
from .replay import TrafficReplay

#: Demand multiplier by (src kind, dst kind): content pushes to
#: eyeballs, little eyeball-to-eyeball traffic.
ROLE_FACTORS: Dict[Tuple[str, str], float] = {
    ("content", "eyeball"): 4.0,
    ("content", "transit"): 1.5,
    ("content", "content"): 0.5,
    ("eyeball", "content"): 0.5,
    ("eyeball", "eyeball"): 0.2,
    ("eyeball", "transit"): 0.5,
    ("transit", "eyeball"): 1.5,
    ("transit", "content"): 0.8,
    ("transit", "transit"): 1.0,
}


def ixp_gravity_matrix(
    fabric: IxpFabric,
    total_bps: float,
    respect_peering: bool = True,
) -> TrafficMatrix:
    """Gravity matrix over member routers with role asymmetry.

    demand(a→b) ∝ weight(a) · weight(b) · role_factor(kind_a, kind_b),
    normalized to ``total_bps``, restricted to pairs the route server
    allows when ``respect_peering``.
    """
    if total_bps <= 0:
        raise TrafficError(f"total_bps must be > 0, got {total_bps}")
    members = fabric.members
    allowed = fabric.route_server.peering_matrix() if respect_peering else None
    raw: Dict[Tuple[str, str], float] = {}
    for a in members:
        for b in members:
            if a.asn == b.asn:
                continue
            pair = (a.host_name, b.host_name)
            if allowed is not None and not allowed.get(pair, False):
                continue
            factor = ROLE_FACTORS.get((a.kind, b.kind), 1.0)
            raw[pair] = a.weight * b.weight * factor
    total_raw = sum(raw.values())
    if total_raw <= 0:
        raise TrafficError("no permitted member pairs (peering too restrictive?)")
    return TrafficMatrix(
        {pair: total_bps * v / total_raw for pair, v in raw.items()}
    )


class IxpTraceSynthesizer:
    """Generate replayable IXP traces.

    Parameters
    ----------
    fabric:
        The built IXP.
    peak_total_bps:
        Fabric-wide offered load at the diurnal peak.
    flow_config:
        Flow-size / app-mix knobs (see :class:`FlowGenConfig`).

    Examples
    --------
    synth = IxpTraceSynthesizer(fabric, peak_total_bps=200e9)
    flows = synth.trace(rng, epochs=24, epoch_duration_s=10.0)
    """

    def __init__(
        self,
        fabric: IxpFabric,
        peak_total_bps: float,
        flow_config: Optional[FlowGenConfig] = None,
    ) -> None:
        self.fabric = fabric
        self.peak_matrix = ixp_gravity_matrix(fabric, peak_total_bps)
        self.flow_config = flow_config or FlowGenConfig()

    def replay(
        self, epochs: int = 24, epoch_duration_s: float = 10.0
    ) -> TrafficReplay:
        """The diurnal replay schedule over the peak matrix."""
        return TrafficReplay(
            self.peak_matrix,
            epochs=epochs,
            epoch_duration_s=epoch_duration_s,
        )

    def trace(
        self,
        rng: random.Random,
        epochs: int = 24,
        epoch_duration_s: float = 10.0,
    ) -> List[Flow]:
        """A full Poisson flow trace across the diurnal cycle."""
        return self.replay(epochs, epoch_duration_s).generate_flows(
            self.fabric.topology, rng, config=self.flow_config
        )

    def steady_flows(
        self,
        rng: random.Random,
        duration_s: float,
        load_fraction: float = 1.0,
    ) -> List[Flow]:
        """Steady offered load at ``load_fraction`` of peak for
        ``duration_s`` — the workload for scaling experiments."""
        generator = FlowGenerator(
            self.fabric.topology, rng, config=self.flow_config
        )
        return generator.from_matrix(
            self.peak_matrix.scaled(load_fraction), horizon_s=duration_s
        )
