"""Epoch-based traffic replay with diurnal modulation.

The poster's evaluation plan replays an IXP's behaviour "over time".
Without the proprietary trace we replay a *shape*: a base traffic matrix
scaled per epoch by a diurnal profile (two-peak day typical of eyeball-
heavy fabrics), realized as Poisson flow arrivals per epoch.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..errors import TrafficError
from ..flowsim.flow import Flow
from ..net.topology import Topology
from .flowgen import FlowGenConfig, FlowGenerator
from .matrix import TrafficMatrix


def diurnal_profile(hour: float) -> float:
    """Relative load at an hour of day, in [~0.3, 1.0].

    A smooth two-peak curve: a midday shoulder and a stronger evening
    peak around 21:00, with a deep night trough around 04:00 — the
    canonical IXP daily pattern.
    """
    h = hour % 24.0
    evening = math.exp(-((h - 21.0) ** 2) / (2 * 3.0**2))
    midday = 0.6 * math.exp(-((h - 13.0) ** 2) / (2 * 4.0**2))
    base = 0.30
    value = base + (1.0 - base) * min(1.0, evening + midday)
    return value


@dataclass
class Epoch:
    """One replay epoch: a start time, a duration, and a scale factor."""

    start_s: float
    duration_s: float
    scale: float


class TrafficReplay:
    """Replay a base matrix across epochs.

    Parameters
    ----------
    base_matrix:
        The peak-hour matrix; each epoch offers ``base × scale``.
    profile:
        hour -> relative scale; defaults to :func:`diurnal_profile`.
    epoch_duration_s:
        Simulated seconds per epoch.  To keep experiments tractable a
        "day" can be compressed: 24 epochs × 10 s each replays a full
        diurnal cycle in 240 simulated seconds.
    """

    def __init__(
        self,
        base_matrix: TrafficMatrix,
        epochs: int = 24,
        epoch_duration_s: float = 10.0,
        profile: Optional[Callable[[float], float]] = None,
        start_hour: float = 0.0,
    ) -> None:
        if epochs < 1:
            raise TrafficError(f"need >= 1 epoch, got {epochs}")
        if epoch_duration_s <= 0:
            raise TrafficError(f"epoch duration must be > 0, got {epoch_duration_s}")
        self.base_matrix = base_matrix
        self.profile = profile or diurnal_profile
        self.epochs: List[Epoch] = []
        hours_per_epoch = 24.0 / epochs
        for i in range(epochs):
            hour = start_hour + i * hours_per_epoch
            self.epochs.append(
                Epoch(
                    start_s=i * epoch_duration_s,
                    duration_s=epoch_duration_s,
                    scale=self.profile(hour),
                )
            )

    @property
    def total_duration_s(self) -> float:
        last = self.epochs[-1]
        return last.start_s + last.duration_s

    def matrix_for_epoch(self, index: int) -> TrafficMatrix:
        """The scaled matrix offered during one epoch."""
        epoch = self.epochs[index]
        return self.base_matrix.scaled(epoch.scale)

    def generate_flows(
        self,
        topology: Topology,
        rng: random.Random,
        config: Optional[FlowGenConfig] = None,
    ) -> List[Flow]:
        """Poisson flow arrivals for the whole replay."""
        generator = FlowGenerator(topology, rng, config=config)
        flows: List[Flow] = []
        for i, epoch in enumerate(self.epochs):
            flows.extend(
                generator.from_matrix(
                    self.matrix_for_epoch(i),
                    horizon_s=epoch.duration_s,
                    start_s=epoch.start_s,
                )
            )
        flows.sort(key=lambda f: f.start_time)
        return flows

    def generate_constant_flows(
        self, topology: Topology, rng: random.Random
    ) -> List[Flow]:
        """One continuous flow per (pair, epoch) at the epoch demand —
        deterministic replay for accuracy-sensitive comparisons."""
        generator = FlowGenerator(topology, rng)
        flows: List[Flow] = []
        for i, epoch in enumerate(self.epochs):
            flows.extend(
                generator.constant_rate_flows(
                    self.matrix_for_epoch(i),
                    duration_s=epoch.duration_s,
                    start_s=epoch.start_s,
                )
            )
        flows.sort(key=lambda f: f.start_time)
        return flows
