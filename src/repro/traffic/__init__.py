"""Traffic: distributions, matrices, flow generation, replay, IXP traces."""

from .distributions import (
    BoundedPareto,
    Constant,
    Empirical,
    Exponential,
    LogNormal,
    MiceElephants,
    Sampler,
    Uniform,
    weighted_choice,
    zipf_weights,
)
from .flowgen import DEFAULT_APP_MIX, FlowGenConfig, FlowGenerator
from .ixp_trace import IxpTraceSynthesizer, ixp_gravity_matrix
from .matrix import TrafficMatrix
from .replay import Epoch, TrafficReplay, diurnal_profile
from .trace_io import (
    flow_from_record,
    flow_to_record,
    iter_trace,
    load_trace,
    save_trace,
)

__all__ = [
    "BoundedPareto",
    "Constant",
    "DEFAULT_APP_MIX",
    "Empirical",
    "Epoch",
    "Exponential",
    "FlowGenConfig",
    "FlowGenerator",
    "IxpTraceSynthesizer",
    "LogNormal",
    "MiceElephants",
    "Sampler",
    "TrafficMatrix",
    "TrafficReplay",
    "Uniform",
    "diurnal_profile",
    "flow_from_record",
    "flow_to_record",
    "iter_trace",
    "ixp_gravity_matrix",
    "load_trace",
    "save_trace",
    "weighted_choice",
    "zipf_weights",
]
