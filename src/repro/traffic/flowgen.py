"""Flow generation from traffic matrices.

Turns a :class:`~repro.traffic.matrix.TrafficMatrix` into a schedule of
:class:`~repro.flowsim.flow.Flow` objects: per pair, flows arrive as a
Poisson process whose rate matches the pair's offered load given the
flow-size distribution (λ = demand / (mean_size · 8)); each flow's
header tuple carries the real host addresses plus sampled application
ports, so application-based policies see realistic fields.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import TrafficError
from ..flowsim.flow import Flow
from ..net.topology import Topology
from ..openflow.headers import AppPort, EthType, HeaderFields, IpProto
from .distributions import MiceElephants, Sampler, weighted_choice
from .matrix import TrafficMatrix

#: Default application mix (dst-port, weight): mostly web, per IXP lore.
DEFAULT_APP_MIX: Tuple[Tuple[int, float], ...] = (
    (AppPort.HTTPS, 0.45),
    (AppPort.HTTP, 0.30),
    (AppPort.RTMP, 0.15),
    (AppPort.DNS, 0.05),
    (AppPort.SSH, 0.05),
)


@dataclass
class FlowGenConfig:
    """Knobs for :class:`FlowGenerator`.

    Attributes
    ----------
    mean_flow_bytes:
        Used to derive per-pair arrival rates from offered bps.  Must be
        consistent with ``size_sampler`` when one is given (the default
        sampler is calibrated to ~this mean).
    demand_factor:
        A flow's demand (peak rate) = pair demand × factor, bounded to
        [min_demand_bps, max_demand_bps]: flows can burst above the
        average pair rate, like real sources.
    udp_fraction:
        Fraction of flows that are inelastic (CBR).
    app_weights:
        Optional QoS class weights by destination port: flows of that
        application get the weight for weighted max-min sharing (e.g.
        ``{AppPort.RTMP: 4.0}`` prioritizes streaming 4:1).
    """

    mean_flow_bytes: float = 200e3
    demand_factor: float = 4.0
    min_demand_bps: float = 1e6
    max_demand_bps: float = 10e9
    udp_fraction: float = 0.1
    app_mix: Tuple[Tuple[int, float], ...] = DEFAULT_APP_MIX
    app_weights: Optional[Dict[int, float]] = None


class FlowGenerator:
    """Generate flow schedules from a matrix over a topology.

    Examples
    --------
    gen = FlowGenerator(topology, rng)
    flows = gen.from_matrix(tm, horizon_s=10.0)
    """

    def __init__(
        self,
        topology: Topology,
        rng: random.Random,
        config: Optional[FlowGenConfig] = None,
        size_sampler: Optional[Sampler] = None,
    ) -> None:
        self.topology = topology
        self.rng = rng
        self.config = config or FlowGenConfig()
        self.size_sampler = size_sampler or MiceElephants(
            rng,
            mice_mean_bytes=self.config.mean_flow_bytes / 10.0,
            elephant_min_bytes=self.config.mean_flow_bytes,
            elephant_max_bytes=self.config.mean_flow_bytes * 1000.0,
        )
        self._ephemeral = 49152

    # ------------------------------------------------------------------
    def from_matrix(
        self,
        matrix: TrafficMatrix,
        horizon_s: float,
        start_s: float = 0.0,
    ) -> List[Flow]:
        """Poisson flow arrivals realizing the matrix over a horizon."""
        if horizon_s <= 0:
            raise TrafficError(f"horizon must be > 0, got {horizon_s}")
        flows: List[Flow] = []
        for (src, dst), demand_bps in matrix.pairs():
            flows.extend(
                self._pair_flows(src, dst, demand_bps, start_s, horizon_s)
            )
        flows.sort(key=lambda f: f.start_time)
        return flows

    def constant_rate_flows(
        self,
        matrix: TrafficMatrix,
        duration_s: float,
        start_s: float = 0.0,
    ) -> List[Flow]:
        """One continuous flow per pair at exactly the pair demand.

        The deterministic alternative to Poisson sampling: useful for
        accuracy experiments where both engines must see identical,
        steady offered load.
        """
        flows = []
        for (src, dst), demand_bps in matrix.pairs():
            flows.append(
                self._make_flow(
                    src,
                    dst,
                    start=start_s,
                    demand_bps=demand_bps,
                    size_bytes=None,
                    duration_s=duration_s,
                    elastic=True,
                )
            )
        return flows

    def _pair_flows(
        self, src: str, dst: str, demand_bps: float, start: float, horizon: float
    ) -> List[Flow]:
        config = self.config
        mean_size_bits = config.mean_flow_bytes * 8.0
        arrival_rate = demand_bps / mean_size_bits  # flows per second
        if arrival_rate <= 0:
            return []
        flows: List[Flow] = []
        t = start + self.rng.expovariate(arrival_rate)
        end = start + horizon
        while t < end:
            size = max(64, int(self.size_sampler.sample()))
            demand = min(
                max(demand_bps * config.demand_factor, config.min_demand_bps),
                config.max_demand_bps,
            )
            elastic = self.rng.random() >= config.udp_fraction
            flows.append(
                self._make_flow(
                    src,
                    dst,
                    start=t,
                    demand_bps=demand,
                    size_bytes=size,
                    duration_s=None,
                    elastic=elastic,
                )
            )
            t += self.rng.expovariate(arrival_rate)
        return flows

    # ------------------------------------------------------------------
    def _make_flow(
        self,
        src: str,
        dst: str,
        start: float,
        demand_bps: float,
        size_bytes: Optional[int],
        duration_s: Optional[float],
        elastic: bool,
    ) -> Flow:
        src_host = self.topology.host(src)
        dst_host = self.topology.host(dst)
        apps, weights = zip(*self.config.app_mix)
        dst_port = weighted_choice(self.rng, list(apps), list(weights))
        src_port = self._next_ephemeral()
        proto = IpProto.TCP if elastic else IpProto.UDP
        headers = HeaderFields(
            eth_src=src_host.mac,
            eth_dst=dst_host.mac,
            eth_type=EthType.IPV4,
            ip_src=src_host.ip,
            ip_dst=dst_host.ip,
            ip_proto=proto,
            tp_src=src_port,
            tp_dst=dst_port,
        )
        weight = 1.0
        if self.config.app_weights:
            weight = self.config.app_weights.get(dst_port, 1.0)
        return Flow(
            headers=headers,
            src=src,
            dst=dst,
            demand_bps=demand_bps,
            size_bytes=size_bytes,
            duration_s=duration_s,
            start_time=start,
            elastic=elastic,
            weight=weight,
        )

    def _next_ephemeral(self) -> int:
        port = self._ephemeral
        self._ephemeral += 1
        if self._ephemeral > 65535:
            self._ephemeral = 49152
        return port
