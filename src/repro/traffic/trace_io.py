"""Flow trace persistence (JSONL).

Generated workloads can be saved and replayed byte-identically across
processes and machines — the reproducibility piece of "replaying its
behavior over time".  One JSON object per line keeps arbitrarily large
traces streamable.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Iterator, List, Union

from ..errors import TrafficError
from ..flowsim.flow import Flow
from ..net.address import IPv4Address, MacAddress
from ..openflow.headers import HeaderFields

#: Format tag written as the first line of every trace file.
TRACE_HEADER = {"format": "horse-trace", "version": 1}


def _headers_to_dict(headers: HeaderFields) -> dict:
    out = {}
    for name in (
        "eth_src",
        "eth_dst",
        "eth_type",
        "vlan_vid",
        "ip_src",
        "ip_dst",
        "ip_proto",
        "tp_src",
        "tp_dst",
    ):
        value = getattr(headers, name)
        if value is None:
            continue
        if isinstance(value, (MacAddress, IPv4Address)):
            out[name] = str(value)
        else:
            out[name] = value
    return out


def _headers_from_dict(doc: dict) -> HeaderFields:
    kwargs = dict(doc)
    for name in ("eth_src", "eth_dst"):
        if name in kwargs:
            kwargs[name] = MacAddress(kwargs[name])
    for name in ("ip_src", "ip_dst"):
        if name in kwargs:
            kwargs[name] = IPv4Address(kwargs[name])
    return HeaderFields(**kwargs)


def flow_to_record(flow: Flow) -> dict:
    """The workload-defining fields of a flow (no runtime state)."""
    return {
        "src": flow.src,
        "dst": flow.dst,
        "demand_bps": flow.demand_bps,
        "size_bytes": flow.size_bytes,
        "duration_s": flow.duration_s,
        "start_time": flow.start_time,
        "elastic": flow.elastic,
        "weight": flow.weight,
        "headers": _headers_to_dict(flow.headers),
    }


def flow_from_record(record: dict) -> Flow:
    """Rebuild a schedulable flow from :func:`flow_to_record` output."""
    return Flow(
        headers=_headers_from_dict(record["headers"]),
        src=record["src"],
        dst=record["dst"],
        demand_bps=record["demand_bps"],
        size_bytes=record["size_bytes"],
        duration_s=record["duration_s"],
        start_time=record["start_time"],
        elastic=record.get("elastic", True),
        weight=record.get("weight", 1.0),
    )


def save_trace(flows: Iterable[Flow], destination: Union[str, IO[str]]) -> int:
    """Write flows as JSONL; returns the number written."""
    own = isinstance(destination, str)
    handle = open(destination, "w") if own else destination
    count = 0
    try:
        handle.write(json.dumps(TRACE_HEADER) + "\n")
        for flow in flows:
            handle.write(json.dumps(flow_to_record(flow)) + "\n")
            count += 1
    finally:
        if own:
            handle.close()
    return count


def iter_trace(source: Union[str, IO[str]]) -> Iterator[Flow]:
    """Stream flows back from a JSONL trace."""
    own = isinstance(source, str)
    handle = open(source) if own else source
    try:
        first = handle.readline()
        if not first:
            raise TrafficError("empty trace file")
        header = json.loads(first)
        if header.get("format") != "horse-trace":
            raise TrafficError(f"not a horse trace: header {header!r}")
        if header.get("version") != 1:
            raise TrafficError(f"unsupported trace version {header.get('version')}")
        for line in handle:
            line = line.strip()
            if line:
                yield flow_from_record(json.loads(line))
    finally:
        if own:
            handle.close()


def load_trace(source: Union[str, IO[str]]) -> List[Flow]:
    """Load an entire trace into memory."""
    return list(iter_trace(source))
