"""Samplers for arrival processes and flow sizes.

Everything draws from a named stream of a
:class:`~repro.sim.rng.RngRegistry`, so traffic is reproducible and
independent of other stochastic components.  The heavy-tailed flow-size
mix (mice and elephants) follows the shape reported in IXP/datacenter
measurement studies: most flows are small, most bytes live in a few
large flows.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import List, Sequence, Tuple

from ..errors import TrafficError


class Sampler:
    """Base class: a callable drawing one positive float per call."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng

    def sample(self) -> float:
        raise NotImplementedError

    def __call__(self) -> float:
        return self.sample()


class Constant(Sampler):
    """Always the same value."""

    def __init__(self, rng: random.Random, value: float) -> None:
        super().__init__(rng)
        if value <= 0:
            raise TrafficError(f"constant must be > 0, got {value}")
        self.value = float(value)

    def sample(self) -> float:
        return self.value


class Uniform(Sampler):
    """Uniform on [low, high]."""

    def __init__(self, rng: random.Random, low: float, high: float) -> None:
        super().__init__(rng)
        if not 0 < low <= high:
            raise TrafficError(f"need 0 < low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self) -> float:
        return self.rng.uniform(self.low, self.high)


class Exponential(Sampler):
    """Exponential with the given mean (inter-arrival times)."""

    def __init__(self, rng: random.Random, mean: float) -> None:
        super().__init__(rng)
        if mean <= 0:
            raise TrafficError(f"mean must be > 0, got {mean}")
        self.mean = mean

    def sample(self) -> float:
        return self.rng.expovariate(1.0 / self.mean)


class LogNormal(Sampler):
    """Log-normal parameterized by its (linear-scale) mean and sigma."""

    def __init__(self, rng: random.Random, mean: float, sigma: float = 1.0) -> None:
        super().__init__(rng)
        if mean <= 0 or sigma <= 0:
            raise TrafficError(f"need mean, sigma > 0; got {mean}, {sigma}")
        # E[X] = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2
        self.mu = math.log(mean) - sigma * sigma / 2.0
        self.sigma = sigma

    def sample(self) -> float:
        return self.rng.lognormvariate(self.mu, self.sigma)


class BoundedPareto(Sampler):
    """Pareto truncated to [minimum, maximum] (elephant flow tails)."""

    def __init__(
        self,
        rng: random.Random,
        alpha: float,
        minimum: float,
        maximum: float,
    ) -> None:
        super().__init__(rng)
        if alpha <= 0:
            raise TrafficError(f"alpha must be > 0, got {alpha}")
        if not 0 < minimum < maximum:
            raise TrafficError(f"need 0 < min < max, got [{minimum}, {maximum}]")
        self.alpha = alpha
        self.minimum = minimum
        self.maximum = maximum

    def sample(self) -> float:
        # Inverse-CDF sampling of the bounded Pareto.
        u = self.rng.random()
        a, l, h = self.alpha, self.minimum, self.maximum
        ha = h**-a
        la = l**-a
        return (-(u * ha - u * la - ha)) ** (-1.0 / a)


class Empirical(Sampler):
    """Inverse-CDF sampling from (value, cumulative_probability) points.

    Points must be sorted by probability, ending at probability 1.0.
    Values between points are linearly interpolated.
    """

    def __init__(
        self, rng: random.Random, points: Sequence[Tuple[float, float]]
    ) -> None:
        super().__init__(rng)
        if not points:
            raise TrafficError("empirical CDF needs at least one point")
        probs = [p for _, p in points]
        if probs != sorted(probs) or abs(probs[-1] - 1.0) > 1e-9:
            raise TrafficError("CDF probabilities must be sorted and end at 1.0")
        self.values = [v for v, _ in points]
        self.probs = probs

    def sample(self) -> float:
        u = self.rng.random()
        index = bisect.bisect_left(self.probs, u)
        if index == 0:
            return self.values[0]
        # Interpolate between the surrounding points.
        p0, p1 = self.probs[index - 1], self.probs[index]
        v0, v1 = self.values[index - 1], self.values[index]
        if p1 == p0:
            return v1
        frac = (u - p0) / (p1 - p0)
        return v0 + frac * (v1 - v0)


class MiceElephants(Sampler):
    """The canonical bimodal flow-size mix.

    ``mice_fraction`` of flows are small (log-normal around
    ``mice_mean_bytes``); the rest are heavy (bounded Pareto up to
    ``elephant_max_bytes``).  Defaults follow common measurement
    shapes: 80%% mice around 20 KB, elephants 1 MB–1 GB, alpha 1.2.
    """

    def __init__(
        self,
        rng: random.Random,
        mice_fraction: float = 0.8,
        mice_mean_bytes: float = 20e3,
        elephant_min_bytes: float = 1e6,
        elephant_max_bytes: float = 1e9,
        alpha: float = 1.2,
    ) -> None:
        super().__init__(rng)
        if not 0 <= mice_fraction <= 1:
            raise TrafficError(f"mice_fraction must be in [0,1], got {mice_fraction}")
        self.mice_fraction = mice_fraction
        self.mice = LogNormal(rng, mice_mean_bytes, sigma=1.0)
        self.elephants = BoundedPareto(
            rng, alpha, elephant_min_bytes, elephant_max_bytes
        )

    def sample(self) -> float:
        if self.rng.random() < self.mice_fraction:
            return max(64.0, self.mice.sample())
        return self.elephants.sample()


def weighted_choice(rng: random.Random, items: Sequence, weights: Sequence[float]):
    """Pick one item with probability proportional to its weight."""
    if len(items) != len(weights) or not items:
        raise TrafficError("items and weights must be equal-length and non-empty")
    total = float(sum(weights))
    if total <= 0:
        raise TrafficError("weights must sum to > 0")
    point = rng.random() * total
    cumulative = 0.0
    for item, weight in zip(items, weights):
        cumulative += weight
        if point < cumulative:
            return item
    return items[-1]


def zipf_weights(n: int, exponent: float = 1.0) -> List[float]:
    """Zipf-like weights 1/k^s for k=1..n, normalized to sum to 1."""
    if n < 1:
        raise TrafficError(f"need n >= 1, got {n}")
    raw = [1.0 / (k**exponent) for k in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]
