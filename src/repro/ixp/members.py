"""IXP members.

A member is an AS connected to the peering fabric through a router port.
Members carry a traffic weight (their share of fabric traffic — drawn
from a Zipf-like distribution, as member sizes at real IXPs are heavily
skewed), a port capacity class, and the prefixes they originate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import TrafficError
from ..net.address import IPv4Network
from ..traffic.distributions import zipf_weights

#: Standard IXP port capacity classes (bps).
PORT_CLASSES = (1e9, 10e9, 100e9)


@dataclass
class Member:
    """One IXP member AS.

    Attributes
    ----------
    asn:
        Autonomous system number (synthetic).
    name:
        Display name; also the member router's host name in the topology
        (prefixed when built into a fabric).
    weight:
        Relative share of fabric traffic (sums to 1 across members).
    port_bps:
        Access port capacity.
    prefixes:
        IPv4 prefixes the member originates.
    kind:
        'eyeball' | 'content' | 'transit' — drives traffic asymmetry in
        the synthetic trace (content sends, eyeballs receive).
    """

    asn: int
    name: str
    weight: float
    port_bps: float
    prefixes: List[IPv4Network] = field(default_factory=list)
    kind: str = "transit"
    host_name: Optional[str] = None  # set when attached to a fabric

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise TrafficError(f"member weight must be >= 0, got {self.weight}")
        if self.port_bps <= 0:
            raise TrafficError(f"member port must be > 0 bps, got {self.port_bps}")


def synthesize_members(
    count: int,
    rng: random.Random,
    zipf_exponent: float = 1.0,
    content_fraction: float = 0.2,
    eyeball_fraction: float = 0.4,
) -> List[Member]:
    """Create a skewed member population.

    Weights follow a Zipf law; bigger members get faster ports (the top
    decile 100G, the next three deciles 10G, the rest 1G) — matching the
    shape of public IXP member lists.
    """
    if count < 2:
        raise TrafficError(f"an IXP needs >= 2 members, got {count}")
    weights = zipf_weights(count, exponent=zipf_exponent)
    members: List[Member] = []
    for i, weight in enumerate(weights):
        rank = i / count
        if rank < 0.1:
            port = PORT_CLASSES[2]
        elif rank < 0.4:
            port = PORT_CLASSES[1]
        else:
            port = PORT_CLASSES[0]
        draw = rng.random()
        if draw < content_fraction:
            kind = "content"
        elif draw < content_fraction + eyeball_fraction:
            kind = "eyeball"
        else:
            kind = "transit"
        # One /20 per member from a documentation-style space.
        prefix = IPv4Network((f"{100 + (i >> 8)}.{(i & 0xFF)}.0.0", 20))
        members.append(
            Member(
                asn=64512 + i,
                name=f"as{64512 + i}",
                weight=weight,
                port_bps=port,
                prefixes=[prefix],
                kind=kind,
            )
        )
    return members
