"""IXP peering-fabric builder.

Builds the evaluation substrate the poster proposes: "an SDN model based
on the topology of one of the largest Internet Exchange Points".  Real
IXP layouts are two-tier: member routers attach to *edge* switches,
which interconnect through a *core* (Figure 1 of the poster).  The
builder creates that fabric, attaches a skewed member population, and
registers everyone at a route server.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import TopologyError
from ..net.topology import Topology
from ..sim.rng import RngRegistry
from .members import Member, synthesize_members
from .route_server import RouteServer


@dataclass
class IxpFabric:
    """A built IXP: topology + members + route server.

    Attributes
    ----------
    topology:
        Hosts are member routers (named ``m<asn>``); switches are the
        edge (``edge<i>``) and core (``core<i>``) layers.
    members:
        Member records with ``host_name`` filled in.
    route_server:
        All members registered with open (announce-all) policies.
    """

    topology: Topology
    members: List[Member]
    route_server: RouteServer
    edge_names: List[str] = field(default_factory=list)
    core_names: List[str] = field(default_factory=list)

    def member_by_host(self, host_name: str) -> Member:
        for member in self.members:
            if member.host_name == host_name:
                return member
        raise TopologyError(f"no member with host {host_name!r}")

    def member_weights(self) -> Dict[str, float]:
        """host name -> traffic weight (for gravity matrices)."""
        return {m.host_name: m.weight for m in self.members}

    def core_directions(self):
        """Every edge<->core link direction (the fabric's hot links)."""
        core = set(self.core_names)
        edge = set(self.edge_names)
        for direction in self.topology.directions():
            a = direction.src_port.node.name
            b = direction.dst_port.node.name
            if (a in edge and b in core) or (a in core and b in edge):
                yield direction

    def summary(self) -> dict:
        out = self.topology.summary()
        out["members"] = len(self.members)
        out["edges"] = len(self.edge_names)
        out["cores"] = len(self.core_names)
        return out


def build_ixp(
    num_members: int,
    num_edges: Optional[int] = None,
    num_cores: Optional[int] = None,
    members_per_edge: int = 16,
    oversubscription: float = 2.0,
    seed: int = 0,
    access_delay_s: float = 5e-6,
    fabric_delay_s: float = 2e-6,
    members: Optional[List[Member]] = None,
) -> IxpFabric:
    """Build a two-tier IXP peering fabric.

    Parameters
    ----------
    num_members:
        Member count (ignored when ``members`` is given explicitly).
    num_edges / num_cores:
        Default: enough edges for ``members_per_edge`` members each, and
        ``max(2, edges // 2)`` cores.
    oversubscription:
        Edge uplink capacity = attached member capacity / cores /
        oversubscription (at least the fastest attached member port).

    Examples
    --------
    >>> fabric = build_ixp(8)
    >>> fabric.summary()["members"]
    8
    """
    rng = RngRegistry(seed).stream("ixp-members")
    if members is None:
        members = synthesize_members(num_members, rng)
    else:
        members = list(members)
        num_members = len(members)
    if num_edges is None:
        num_edges = max(2, math.ceil(num_members / members_per_edge))
    if num_cores is None:
        num_cores = max(2, num_edges // 2)
    if num_edges < 1 or num_cores < 1:
        raise TopologyError("need >= 1 edge and >= 1 core switch")

    topo = Topology(name=f"ixp-{num_members}m-{num_edges}e-{num_cores}c")
    cores = [topo.add_switch(f"core{i + 1}") for i in range(num_cores)]
    edges = [topo.add_switch(f"edge{i + 1}") for i in range(num_edges)]

    # Interleave members across edges so big members spread out (they
    # are ordered by weight, descending).
    per_edge_capacity = [0.0] * num_edges
    route_server = RouteServer()
    for index, member in enumerate(members):
        edge_index = index % num_edges
        edge = edges[edge_index]
        host = topo.add_host(f"m{member.asn}")
        member.host_name = host.name
        topo.add_link(
            host,
            edge,
            capacity_bps=member.port_bps,
            delay_s=access_delay_s,
        )
        per_edge_capacity[edge_index] += member.port_bps
        route_server.register(member)

    # Edge uplinks: capacity sized from attached members.
    for edge_index, edge in enumerate(edges):
        fastest = max(
            (m.port_bps for i, m in enumerate(members) if i % num_edges == edge_index),
            default=1e9,
        )
        uplink = max(
            fastest,
            per_edge_capacity[edge_index] / num_cores / oversubscription,
        )
        for core in cores:
            topo.add_link(edge, core, capacity_bps=uplink, delay_s=fabric_delay_s)

    return IxpFabric(
        topology=topo,
        members=members,
        route_server=route_server,
        edge_names=[e.name for e in edges],
        core_names=[c.name for c in cores],
    )
