"""The IXP route server.

Multilateral peering at IXPs is mediated by a route server: members
announce prefixes to it and attach export policies (announce to all,
an allow-list, or a block-list — the BGP-community controls route
servers implement).  Horse's route server keeps per-member RIBs and
answers the one question the simulator needs: *may traffic flow from
member A to member B?* — which filters the traffic matrix and seeds
policies (e.g. a member requesting blackholing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import ControlPlaneError
from ..net.address import IPv4Address, IPv4Network
from .members import Member


@dataclass
class ExportPolicy:
    """A member's export policy at the route server.

    mode:
        'all' (default multilateral peering), 'allow' (announce only to
        ``members``), or 'block' (announce to all except ``members``).
    """

    mode: str = "all"
    members: Set[int] = field(default_factory=set)  # ASNs

    def __post_init__(self) -> None:
        if self.mode not in ("all", "allow", "block"):
            raise ControlPlaneError(
                f"export mode must be all/allow/block, got {self.mode!r}"
            )

    def exports_to(self, asn: int) -> bool:
        if self.mode == "all":
            return True
        if self.mode == "allow":
            return asn in self.members
        return asn not in self.members


class RouteServer:
    """Per-member RIBs plus export policies.

    Examples
    --------
    rs = RouteServer()
    rs.register(member_a); rs.register(member_b)
    rs.set_export_policy(member_a.asn, ExportPolicy("block", {member_b.asn}))
    rs.peering_allowed(member_b.asn, member_a.asn)
    False
    """

    def __init__(self) -> None:
        self._members: Dict[int, Member] = {}
        self._announcements: Dict[int, List[IPv4Network]] = {}
        self._policies: Dict[int, ExportPolicy] = {}

    # ------------------------------------------------------------------
    # Session management
    # ------------------------------------------------------------------
    def register(self, member: Member) -> None:
        """Open a (modelled) BGP session and announce the member's
        prefixes."""
        if member.asn in self._members:
            raise ControlPlaneError(f"member AS{member.asn} already registered")
        self._members[member.asn] = member
        self._announcements[member.asn] = list(member.prefixes)
        self._policies[member.asn] = ExportPolicy()

    def withdraw(self, asn: int) -> None:
        """Close a member's session (prefixes withdrawn)."""
        self.require_member(asn)
        del self._members[asn]
        del self._announcements[asn]
        del self._policies[asn]

    def announce(self, asn: int, prefix: IPv4Network) -> None:
        """Announce one extra prefix for a member."""
        self.require_member(asn)
        if prefix not in self._announcements[asn]:
            self._announcements[asn].append(prefix)

    def set_export_policy(self, asn: int, policy: ExportPolicy) -> None:
        self.require_member(asn)
        self._policies[asn] = policy

    def require_member(self, asn: int) -> Member:
        """The registered member for ``asn`` (raises on unknown ASN)."""
        if asn not in self._members:
            raise ControlPlaneError(f"unknown member AS{asn}")
        return self._members[asn]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def members(self) -> List[Member]:
        return [self._members[a] for a in sorted(self._members)]

    def peering_allowed(self, src_asn: int, dst_asn: int) -> bool:
        """May traffic flow src→dst? (dst must export routes to src.)"""
        if src_asn == dst_asn:
            return False
        self.require_member(src_asn)
        self.require_member(dst_asn)
        return self._policies[dst_asn].exports_to(src_asn)

    def peering_matrix(self) -> Dict[Tuple[str, str], bool]:
        """(src host, dst host) -> allowed, for matrix filtering."""
        out: Dict[Tuple[str, str], bool] = {}
        for a in self.members:
            for b in self.members:
                if a.asn == b.asn:
                    continue
                src = a.host_name or a.name
                dst = b.host_name or b.name
                out[(src, dst)] = self.peering_allowed(a.asn, b.asn)
        return out

    def rib_for(self, asn: int) -> List[Tuple[IPv4Network, int]]:
        """The (prefix, origin ASN) routes visible to one member."""
        self.require_member(asn)
        routes: List[Tuple[IPv4Network, int]] = []
        for origin, prefixes in sorted(self._announcements.items()):
            if origin == asn:
                continue
            if not self._policies[origin].exports_to(asn):
                continue
            for prefix in prefixes:
                routes.append((prefix, origin))
        return routes

    def origin_of(self, address: IPv4Address) -> Optional[int]:
        """Longest-prefix-match origin ASN for an address, if any."""
        best: Optional[Tuple[int, int]] = None  # (prefix_len, asn)
        for asn, prefixes in self._announcements.items():
            for prefix in prefixes:
                if prefix.contains(address):
                    if best is None or prefix.prefix_len > best[0]:
                        best = (prefix.prefix_len, asn)
        return best[1] if best else None

    def __len__(self) -> int:
        return len(self._members)
