"""IXP model: members, route server, peering fabric, RTBH."""

from .fabric import IxpFabric, build_ixp
from .members import Member, PORT_CLASSES, synthesize_members
from .route_server import ExportPolicy, RouteServer
from .rtbh import BLACKHOLE_COMMUNITY, BlackholeRequest, RtbhCoordinator

__all__ = [
    "BLACKHOLE_COMMUNITY",
    "BlackholeRequest",
    "ExportPolicy",
    "IxpFabric",
    "Member",
    "PORT_CLASSES",
    "RouteServer",
    "RtbhCoordinator",
    "build_ixp",
    "synthesize_members",
]
