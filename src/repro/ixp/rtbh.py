"""Remotely-triggered blackholing (RTBH) through the route server.

Real IXP members request DDoS mitigation by announcing the victim
prefix tagged with the BLACKHOLE community (RFC 7999); the route server
propagates it and the fabric drops matching traffic.  Horse models the
signalling side here: members announce/withdraw blackhole requests at
the route server, and the :class:`RtbhCoordinator` translates them into
drop rules through a :class:`~repro.control.apps.blackhole.BlackholeApp`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from ..errors import ControlPlaneError
from ..net.address import IPv4Network
from .route_server import RouteServer

#: RFC 7999 well-known BLACKHOLE community.
BLACKHOLE_COMMUNITY = (65535, 666)


@dataclass(frozen=True)
class BlackholeRequest:
    """A member's request to drop traffic toward one of its prefixes."""

    asn: int
    prefix: IPv4Network

    def __repr__(self) -> str:
        return f"<BlackholeRequest AS{self.asn} {self.prefix}>"


class RtbhCoordinator:
    """Bridge route-server blackhole announcements to data-plane drops.

    Parameters
    ----------
    route_server:
        Used to verify the requesting member exists and actually
        originates the prefix (members may only blackhole their own
        space — the standard RTBH safety rule).
    blackhole_app:
        The controller app that installs/removes the drop rules.  It
        must already be attached to a started controller.

    Examples
    --------
    rtbh = RtbhCoordinator(fabric.route_server, blackhole_app)
    rtbh.announce(member.asn, member.prefixes[0])   # drops installed
    rtbh.withdraw(member.asn, member.prefixes[0])   # drops removed
    """

    def __init__(self, route_server: RouteServer, blackhole_app) -> None:
        self.route_server = route_server
        self.blackhole_app = blackhole_app
        self._active: Set[BlackholeRequest] = set()
        #: Audit log of (time-free) accepted announcements/withdrawals.
        self.log: List[Tuple[str, BlackholeRequest]] = []

    # ------------------------------------------------------------------
    def announce(self, asn: int, prefix: IPv4Network) -> BlackholeRequest:
        """A member announces ``prefix`` with the BLACKHOLE community."""
        self._validate_origin(asn, prefix)
        request = BlackholeRequest(asn=asn, prefix=prefix)
        if request in self._active:
            raise ControlPlaneError(f"{request!r} already active")
        self._active.add(request)
        self.blackhole_app.add_target(prefix)
        self.log.append(("announce", request))
        return request

    def withdraw(self, asn: int, prefix: IPv4Network) -> None:
        """The member withdraws the blackhole announcement."""
        request = BlackholeRequest(asn=asn, prefix=prefix)
        if request not in self._active:
            raise ControlPlaneError(f"no active blackhole for {request!r}")
        self._active.remove(request)
        self.blackhole_app.remove_target(prefix)
        self.log.append(("withdraw", request))

    def _validate_origin(self, asn: int, prefix: IPv4Network) -> None:
        member = self.route_server.require_member(asn)
        covered = any(
            own.prefix_len <= prefix.prefix_len and own.contains(prefix.network)
            for own in member.prefixes
        )
        if not covered:
            raise ControlPlaneError(
                f"AS{asn} may only blackhole its own space; "
                f"{prefix} is not within {[str(p) for p in member.prefixes]}"
            )

    # ------------------------------------------------------------------
    @property
    def active(self) -> List[BlackholeRequest]:
        return sorted(
            self._active, key=lambda r: (r.asn, int(r.prefix.network))
        )

    def is_blackholed(self, asn: int, prefix: IPv4Network) -> bool:
        return BlackholeRequest(asn=asn, prefix=prefix) in self._active
