"""Summary metrics: fairness, errors, percentiles, comparisons.

The accuracy experiment (E3) quantifies how close flow-level statistics
come to packet-level ground truth; these helpers define the comparison
metrics used throughout the benchmarks.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np


def jain_fairness(rates: Sequence[float]) -> float:
    """Jain's fairness index in (0, 1]; 1 means perfectly equal.

    Examples
    --------
    >>> jain_fairness([5, 5, 5])
    1.0
    >>> round(jain_fairness([10, 0, 0]), 3)
    0.333
    """
    values = np.asarray(list(rates), dtype=float)
    if values.size == 0:
        return 1.0
    denom = values.size * float(np.sum(values**2))
    if denom == 0:
        return 1.0
    return float(np.sum(values)) ** 2 / denom


def relative_error(measured: float, reference: float) -> float:
    """|measured - reference| / reference (0 when both are ~zero)."""
    if abs(reference) < 1e-12:
        return 0.0 if abs(measured) < 1e-12 else float("inf")
    return abs(measured - reference) / abs(reference)


def mean_relative_error(
    measured: Mapping, reference: Mapping, keys: Sequence = None
) -> float:
    """Mean relative error over shared (or given) keys."""
    if keys is None:
        keys = sorted(set(measured) & set(reference))
    if not keys:
        return 0.0
    errors = [relative_error(measured[k], reference[k]) for k in keys]
    finite = [e for e in errors if e != float("inf")]
    return float(np.mean(finite)) if finite else float("inf")


def rmse(measured: Sequence[float], reference: Sequence[float]) -> float:
    """Root-mean-square error between paired samples."""
    a = np.asarray(list(measured), dtype=float)
    b = np.asarray(list(reference), dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        return 0.0
    return float(np.sqrt(np.mean((a - b) ** 2)))


def percentiles(
    values: Sequence[float], qs: Sequence[float] = (50, 90, 99)
) -> Dict[float, float]:
    """Selected percentiles as a dict."""
    if not values:
        return {q: 0.0 for q in qs}
    arr = np.asarray(list(values), dtype=float)
    return {q: float(np.percentile(arr, q)) for q in qs}


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """count/mean/p50/p90/p99/max for a sample."""
    if not values:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
    arr = np.asarray(list(values), dtype=float)
    return {
        "count": int(arr.size),
        "mean": float(np.mean(arr)),
        "p50": float(np.percentile(arr, 50)),
        "p90": float(np.percentile(arr, 90)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(np.max(arr)),
    }


def speedup(baseline_s: float, measured_s: float) -> float:
    """baseline / measured (how many times faster measured is)."""
    if measured_s <= 0:
        return float("inf")
    return baseline_s / measured_s
