"""Simple time series storage with resampling."""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple

import numpy as np


class TimeSeries:
    """An append-only (time, value) series.

    Times must be non-decreasing (enforced), matching simulation order.

    Examples
    --------
    >>> ts = TimeSeries("util")
    >>> ts.append(0.0, 0.1); ts.append(1.0, 0.3)
    >>> ts.mean()
    0.2
    """

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def append(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time went backwards in series {self.name!r}: "
                f"{time} < {self.times[-1]}"
            )
        self.times.append(float(time))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    # ------------------------------------------------------------------
    def to_numpy(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times), np.asarray(self.values)

    def value_at(self, time: float) -> Optional[float]:
        """Last value at or before ``time`` (step interpolation)."""
        index = bisect.bisect_right(self.times, time) - 1
        if index < 0:
            return None
        return self.values[index]

    def window(self, start: float, end: float) -> "TimeSeries":
        """Points with start <= t < end."""
        out = TimeSeries(self.name)
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_left(self.times, end)
        out.times = self.times[lo:hi]
        out.values = self.values[lo:hi]
        return out

    def resample(self, interval: float, end: Optional[float] = None) -> "TimeSeries":
        """Step-resample onto a regular grid (last-value-holds)."""
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        out = TimeSeries(self.name)
        if not self.times:
            return out
        stop = end if end is not None else self.times[-1]
        t = self.times[0]
        while t <= stop:
            value = self.value_at(t)
            if value is not None:
                out.append(t, value)
            t += interval
        return out

    # ------------------------------------------------------------------
    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else 0.0

    def maximum(self) -> float:
        return float(np.max(self.values)) if self.values else 0.0

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.values, q)) if self.values else 0.0

    def time_weighted_mean(self, until: Optional[float] = None) -> float:
        """Mean weighting each value by how long it held."""
        if not self.times:
            return 0.0
        times = list(self.times)
        values = list(self.values)
        end = until if until is not None else times[-1]
        total = 0.0
        duration = 0.0
        for i, value in enumerate(values):
            t0 = times[i]
            t1 = times[i + 1] if i + 1 < len(times) else end
            dt = max(0.0, t1 - t0)
            total += value * dt
            duration += dt
        return total / duration if duration > 0 else values[-1]

    def __repr__(self) -> str:
        return f"<TimeSeries {self.name!r} n={len(self)}>"
