"""Exporting run results: CSV flow records, JSON reports, text summary.

The data any downstream analysis (pandas, gnuplot, spreadsheets) wants
from a run, without adding dependencies: per-flow records as CSV, the
whole run as a JSON document, and a human-readable one-screen summary.
"""

from __future__ import annotations

import csv
import hashlib
import json
from typing import IO, TYPE_CHECKING, Union

from ..flowsim.flow import Flow

if TYPE_CHECKING:  # pragma: no cover - avoids a core<->stats import cycle
    from ..core.results import RunResult

#: Columns of the per-flow CSV, in order.
FLOW_COLUMNS = (
    "flow_id",
    "src",
    "dst",
    "start_time",
    "end_time",
    "state",
    "terminal",
    "demand_bps",
    "size_bytes",
    "duration_s",
    "elastic",
    "bytes_sent",
    "bytes_delivered",
    "bytes_dropped",
    "fct_s",
    "goodput_bps",
    "reroutes",
)


def flow_row(flow: Flow) -> dict:
    """One CSV row for a flow."""
    fct = flow.flow_completion_time
    goodput = None
    if fct and fct > 0:
        goodput = flow.bytes_delivered * 8.0 / fct
    return {
        "flow_id": flow.flow_id,
        "src": flow.src,
        "dst": flow.dst,
        "start_time": flow.start_time,
        "end_time": flow.end_time,
        "state": flow.state.value,
        "terminal": flow.route.terminal.value if flow.route else None,
        "demand_bps": flow.demand_bps,
        "size_bytes": flow.size_bytes,
        "duration_s": flow.duration_s,
        "elastic": flow.elastic,
        "bytes_sent": round(flow.bytes_sent, 3),
        "bytes_delivered": round(flow.bytes_delivered, 3),
        "bytes_dropped": round(flow.bytes_dropped, 3),
        "fct_s": round(fct, 9) if fct is not None else None,
        "goodput_bps": round(goodput, 3) if goodput is not None else None,
        "reroutes": flow.reroutes,
    }


def flows_to_csv(result: "RunResult", destination: Union[str, IO[str]]) -> int:
    """Write every flow of a run as CSV; returns the row count."""
    own = isinstance(destination, str)
    handle = open(destination, "w", newline="") if own else destination
    try:
        writer = csv.DictWriter(handle, fieldnames=FLOW_COLUMNS)
        writer.writeheader()
        count = 0
        for flow in result.flows:
            writer.writerow(flow_row(flow))
            count += 1
        return count
    finally:
        if own:
            handle.close()


def result_to_dict(result: "RunResult") -> dict:
    """The whole run as a JSON-compatible document."""
    return {
        "wall_time_s": result.wall_time_s,
        "sim_time_s": result.sim_time_s,
        "events": result.events,
        "rule_count": result.rule_count,
        "engine_summary": dict(result.engine_summary),
        "engine_stats": dict(result.engine_stats),
        "fct_summary": result.fct_summary(),
        "fairness": result.fairness(),
        "goodput_bps": result.goodput_bps(),
        "delivered_fraction": result.delivered_fraction,
        "link_max_utilization": {
            f"{node}:{port}": value
            for (node, port), value in sorted(result.link_max_utilization.items())
        },
        "metrics": dict(result.metrics),
        "notes": list(result.notes),
        "flows": [flow_row(flow) for flow in result.flows],
    }


def run_digest(result: "RunResult") -> str:
    """A stable content digest of a run's results.

    SHA-256 over the canonical JSON encoding (sorted keys, no
    whitespace) of :func:`result_to_dict` with the wall-clock field
    removed — the only nondeterministic top-level field.  Two runs of
    the same scenario must produce the same digest; the golden-scenario
    regression tests and ``repro run --check-digest`` gate on this.
    Profiling (``profile: true``) embeds wall time in ``engine_stats``
    and breaks digest stability; leave it off for digested runs.
    Wire-control metrics (``wire.*``) are wall-clock measurements of
    the external controller and are likewise excluded, so a wire run
    that reproduces an in-proc run's behavior hashes identically.
    Kernel queue-health metrics (``sim.queue_*`` and
    ``sim.pending_raw``) describe the pending-set *implementation* —
    compaction cadence, tombstone counts — not simulated behavior, so
    they are excluded too: runs that differ only in compaction tuning
    hash identically.
    """
    doc = result_to_dict(result)
    doc.pop("wall_time_s", None)
    doc["metrics"] = {
        key: value
        for key, value in doc["metrics"].items()
        if not (
            key.startswith("wire.")
            or key.startswith("sim.queue_")
            or key == "sim.pending_raw"
        )
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def result_to_json(
    result: "RunResult", destination: Union[str, IO[str]], indent: int = 2
) -> None:
    """Write the run document as JSON."""
    doc = result_to_dict(result)
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            json.dump(doc, handle, indent=indent)
    else:
        json.dump(doc, destination, indent=indent)


def summary_text(result: "RunResult") -> str:
    """A one-screen human-readable run summary."""
    row = result.row()
    fct = result.fct_summary()
    lines = [
        "run summary",
        "-----------",
        f"simulated time     : {row['sim_time_s']} s",
        f"wall time          : {row['wall_time_s']} s "
        f"({row['events_per_s']} events/s)",
        f"events             : {row['events']}",
        f"flows              : {row['flows']} "
        f"({row['completed']} completed, "
        f"{row['delivered_frac']:.1%} delivered)",
        f"rules installed    : {row['rules']}",
        f"aggregate goodput  : {row['goodput_gbps']} Gb/s",
        f"fairness (Jain)    : {result.fairness():.3f}",
        f"FCT mean/p99       : {fct['mean']:.4g} s / {fct['p99']:.4g} s",
    ]
    if result.notes:
        lines.append("notes              : " + "; ".join(result.notes))
    return "\n".join(lines)
