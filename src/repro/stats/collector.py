"""Statistics collection across a run.

:class:`RunStatsCollector` hooks the flow-level engine's observer list
(or samples the packet engine's flows after a run) and records flow
outcomes, completion times, throughputs, and per-link utilization
series — the data every benchmark and example reports from.

:class:`~repro.core.simulator.Horse` constructs one per run and exposes
it as ``horse.collector``; construct your own only for engine-less
analysis.  The old :class:`StatsCollector` name is a deprecated alias.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Tuple

from ..flowsim.flow import Flow, FlowState
from ..net.topology import Topology
from ..sim.kernel import Simulator
from .metrics import jain_fairness, summarize
from .timeseries import TimeSeries


class RunStatsCollector:
    """Record flow outcomes and link utilization.

    Use :meth:`attach_flow_engine` for live collection from the
    flow-level engine, and/or :meth:`sample_links` (e.g. on a periodic
    event) for utilization series; :meth:`harvest_flows` works for any
    engine after the run.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self.flow_events: List[Tuple[float, str, int]] = []
        self.completed: List[Flow] = []
        self.link_utilization: Dict[Tuple[str, int], TimeSeries] = {}
        self._sim: Optional[Simulator] = None

    # ------------------------------------------------------------------
    # Live collection
    # ------------------------------------------------------------------
    def attach_flow_engine(self, engine) -> None:
        """Subscribe to a FlowLevelEngine's observer stream."""
        self._sim = engine.sim
        engine.observers.append(self._on_flow_event)

    def _on_flow_event(self, name: str, flow: Flow) -> None:
        time = self._sim.now if self._sim is not None else 0.0
        self.flow_events.append((time, name, flow.flow_id))
        if name == "completed":
            self.completed.append(flow)

    def enable_link_sampling(self, sim: Simulator, interval: float = 1.0) -> None:
        """Sample allocated utilization of every link periodically."""
        sim.every(interval, self._sample_tick)

    def _sample_tick(self, sim: Simulator, time: float) -> None:
        self.sample_links(time)

    def sample_links(self, time: float) -> None:
        """Record every direction's current allocated utilization."""
        for direction in self.topology.directions():
            key = (direction.src_port.node.name, direction.src_port.number)
            series = self.link_utilization.get(key)
            if series is None:
                series = TimeSeries(f"{key[0]}:{key[1]}")
                self.link_utilization[key] = series
            series.append(time, direction.utilization)

    # ------------------------------------------------------------------
    # Post-hoc harvesting (works with either engine)
    # ------------------------------------------------------------------
    def harvest_flows(self, flows) -> None:
        """Collect completed flows from an engine's flow map."""
        values = flows.values() if isinstance(flows, dict) else flows
        for flow in values:
            if flow.state is FlowState.COMPLETED and flow not in self.completed:
                self.completed.append(flow)

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def fct_summary(self) -> dict:
        """Flow-completion-time summary for completed volume flows."""
        fcts = [
            f.flow_completion_time
            for f in self.completed
            if f.flow_completion_time is not None
        ]
        return summarize(fcts)

    def throughput_by_flow(self) -> Dict[int, float]:
        """Average goodput (bps) per completed flow."""
        out: Dict[int, float] = {}
        for flow in self.completed:
            fct = flow.flow_completion_time
            if fct and fct > 0:
                out[flow.flow_id] = flow.bytes_delivered * 8.0 / fct
        return out

    def fairness(self) -> float:
        """Jain's index over completed-flow throughputs."""
        return jain_fairness(list(self.throughput_by_flow().values()))

    def max_link_utilization(self) -> Dict[Tuple[str, int], float]:
        return {
            key: series.maximum()
            for key, series in self.link_utilization.items()
        }

    def mean_link_utilization(self) -> Dict[Tuple[str, int], float]:
        return {
            key: series.time_weighted_mean()
            for key, series in self.link_utilization.items()
        }


class StatsCollector(RunStatsCollector):
    """Deprecated alias for :class:`RunStatsCollector`.

    Runs already own a collector: use ``horse.collector`` (and
    ``horse.telemetry`` for the unified metric/trace surface) instead of
    constructing one directly.  This shim will be removed one release
    after its introduction.
    """

    def __init__(self, topology: Topology) -> None:
        warnings.warn(
            "StatsCollector is deprecated; use horse.collector (or "
            "repro.stats.RunStatsCollector for standalone analysis)",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(topology)
