"""Statistics: time series, run collection, comparison metrics."""

from .collector import RunStatsCollector, StatsCollector
from .export import (
    flow_row,
    flows_to_csv,
    result_to_dict,
    result_to_json,
    summary_text,
)
from .metrics import (
    jain_fairness,
    mean_relative_error,
    percentiles,
    relative_error,
    rmse,
    speedup,
    summarize,
)
from .timeseries import TimeSeries

__all__ = [
    "RunStatsCollector",
    "StatsCollector",
    "flow_row",
    "flows_to_csv",
    "result_to_dict",
    "result_to_json",
    "summary_text",
    "TimeSeries",
    "jain_fairness",
    "mean_relative_error",
    "percentiles",
    "relative_error",
    "rmse",
    "speedup",
    "summarize",
]
