"""Exception hierarchy for the Horse simulator.

Every error raised by this package derives from :class:`HorseError`, so
callers can catch one type to handle any simulator failure.  Subclasses are
grouped by subsystem: simulation kernel, network model, OpenFlow pipeline,
control plane, policy handling, and traffic generation.
"""

from __future__ import annotations


class HorseError(Exception):
    """Base class for all errors raised by the Horse simulator."""


class SimulationError(HorseError):
    """Errors in the discrete-event kernel (scheduling, clock misuse)."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or on a stopped simulator."""


class TopologyError(HorseError):
    """Errors in topology construction or lookup."""


class NodeNotFoundError(TopologyError):
    """A node name or id was not present in the topology."""


class LinkError(TopologyError):
    """Invalid link construction or a reference to a missing link."""


class PortError(TopologyError):
    """Invalid port number or a port that is already connected."""


class AddressError(HorseError):
    """A MAC or IPv4 address string/integer could not be parsed."""


class OpenFlowError(HorseError):
    """Errors in the OpenFlow abstraction (tables, groups, meters)."""


class TableFullError(OpenFlowError):
    """A flow table reached its configured capacity."""


class GroupError(OpenFlowError):
    """Invalid group type, empty bucket list, or unknown group id."""


class MeterError(OpenFlowError):
    """Invalid meter configuration or unknown meter id."""


class ControlPlaneError(HorseError):
    """Errors in the controller, channel, or monitoring subsystem."""


class UnknownDatapathError(ControlPlaneError):
    """A control message referenced a datapath id not on the channel."""


class WireError(ControlPlaneError):
    """The OpenFlow wire gateway failed: a frame could not be encoded or
    decoded (bad version, unknown type, truncated or overlong body,
    out-of-range field), or the connection/handshake state is invalid."""


class PolicyError(HorseError):
    """Errors in policy specification, compilation, or composition."""


class PolicyValidationError(PolicyError):
    """A policy specification failed validation (bad field, conflict)."""


class PolicyConflictError(PolicyValidationError):
    """Two composed policies produce contradictory rules."""


class VerificationError(HorseError):
    """The data-plane static analyzer found error-severity defects
    (loops, blackholes, unrealized intents) in the installed rules."""


class TrafficError(HorseError):
    """Errors in traffic matrix or flow generator configuration."""


class ExperimentError(HorseError):
    """Errors in benchmark/experiment harness configuration."""


class CheckpointError(HorseError):
    """A simulation snapshot could not be captured, written, read, or
    restored (unpicklable state, corrupt file, version mismatch)."""


class SweepError(HorseError):
    """Errors in sweep specification, expansion, or execution."""


class TelemetryError(HorseError):
    """Errors in the telemetry subsystem (metric registration or type
    mismatches, trace sink configuration, subscription parameters)."""
