"""Capturing and resuming complete simulation states.

A :class:`SimulationSnapshot` wraps everything one :class:`~repro.core
.simulator.Horse` instance owns: the kernel (clock + pending event
set), the RNG registry, the topology with its pipelines and counters,
the engine with active flows and solver state, and the statistics
collectors.  The object graph is captured by reference, so a snapshot
taken between events is exactly the live state; serialization happens
in :mod:`repro.runtime.checkpoint`.

Two details make the round trip *bitwise* deterministic:

* Scheduled work must be pickled along with the event set.  Every
  callback the engines/channel/collector schedule is a bound method of
  a captured object (no closures), so the pending events re-bind to the
  restored objects.
* Process-global id counters (flow ids, flow-entry sequence numbers,
  packet ids) are watermarked at capture time and advanced past the
  watermark on resume, so objects created after a restore in a fresh
  process never collide with restored ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict

from .. import __version__ as _repro_version
from ..errors import CheckpointError

if TYPE_CHECKING:  # pragma: no cover - avoids a core<->runtime cycle
    from ..core.simulator import Horse

#: Version of the captured-state layout (bumped when the object graph
#: changes incompatibly; the reader refuses newer snapshots).
SNAPSHOT_VERSION = 1


def _id_watermarks(horse: "Horse") -> Dict[str, int]:
    """Highest process-global ids reachable from the simulation state."""
    max_flow = 0
    for flow_id in horse.engine.flows:
        max_flow = max(max_flow, flow_id)
    max_entry = 0
    for switch in horse.topology.switches:
        pipeline = switch.pipeline
        if pipeline is None:
            continue
        for table in pipeline.tables:
            for entry in table:
                max_entry = max(max_entry, entry.seq)
    from ..openflow.messages import xid_watermark
    from ..pktsim.packet import packet_id_watermark

    return {
        "flow_id": max_flow,
        "entry_seq": max_entry,
        "packet_id": packet_id_watermark(),
        "xid": xid_watermark(),
    }




@dataclass
class SimulationSnapshot:
    """A complete, resumable simulation state plus metadata.

    Attributes
    ----------
    horse:
        The captured simulation instance (held by reference).
    meta:
        Descriptive metadata (sim time, event count, engine, seed,
        package version) — informational, not part of the restored
        state.
    version:
        Snapshot layout version, checked on resume.
    """

    horse: "Horse"
    meta: Dict[str, Any] = field(default_factory=dict)
    version: int = SNAPSHOT_VERSION
    watermarks: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def capture(cls, horse: "Horse") -> "SimulationSnapshot":
        """Snapshot a Horse instance between events.

        The simulation must not be mid-event in a way that left
        engine-internal walk state live; in practice this means calling
        from outside :meth:`Horse.run` or from a scheduled callback
        (e.g. the periodic checkpoint tick), both of which are between
        event effects.
        """
        sim = horse.sim
        meta = {
            "snapshot_version": SNAPSHOT_VERSION,
            "repro_version": _repro_version,
            "engine": horse.config.engine,
            "seed": horse.config.seed,
            "sim_time_s": sim.now,
            "until": getattr(horse, "last_until", None),
            "events_fired": sim.fired_count,
            "events_pending": sim.pending,
            "flows": len(horse.engine.flows),
        }
        return cls(
            horse=horse, meta=meta, watermarks=_id_watermarks(horse)
        )

    def resume(self) -> "Horse":
        """Return the captured Horse, ready to continue running.

        Advances the process-global id counters past the snapshot's
        watermarks so post-restore objects get fresh ids even in a
        brand-new process.
        """
        if self.version > SNAPSHOT_VERSION:
            raise CheckpointError(
                f"snapshot version {self.version} is newer than this "
                f"build supports ({SNAPSHOT_VERSION})"
            )
        from ..flowsim.flow import advance_flow_ids
        from ..openflow.flowtable import advance_entry_seq
        from ..openflow.messages import advance_xids
        from ..pktsim.packet import advance_packet_ids

        advance_flow_ids(self.watermarks.get("flow_id", 0))
        advance_entry_seq(self.watermarks.get("entry_seq", 0))
        advance_packet_ids(self.watermarks.get("packet_id", 0))
        advance_xids(self.watermarks.get("xid", 0))
        return self.horse
