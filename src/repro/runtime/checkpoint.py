"""The versioned on-disk checkpoint format.

A checkpoint file is::

    HORSE-CKPT\\n                      magic line
    {json header}\\n                   format version, digests, metadata
    <zlib-compressed pickle payload>  the SimulationSnapshot

The header is plain JSON so tooling can inspect a checkpoint (sim time,
engine, event counts) without unpickling anything; the payload carries
its own SHA-256 so corruption is detected before unpickling.  Writes go
through a temp file + ``os.replace`` so a crash mid-write never leaves
a truncated checkpoint behind — the previous one stays intact, which is
what lets long sweep jobs checkpoint periodically and restart from the
last good state after a worker dies.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
import zlib
from typing import TYPE_CHECKING, Any, Dict

from ..errors import CheckpointError
from .snapshot import SimulationSnapshot

if TYPE_CHECKING:  # pragma: no cover
    from ..core.simulator import Horse

MAGIC = b"HORSE-CKPT\n"

#: On-disk container format version (independent of SNAPSHOT_VERSION,
#: which versions the pickled object layout).
CHECKPOINT_FORMAT_VERSION = 1

#: Pickle protocol pinned for cross-version compatibility (3.8+).
_PICKLE_PROTOCOL = 4


def save_checkpoint(horse: "Horse", path: str) -> Dict[str, Any]:
    """Capture ``horse`` and write it to ``path``; returns the header."""
    snapshot = SimulationSnapshot.capture(horse)
    return write_checkpoint(snapshot, path)


def load_checkpoint(path: str) -> "Horse":
    """Read a checkpoint and return the restored, resumable Horse."""
    return read_checkpoint(path).resume()


def write_checkpoint(snapshot: SimulationSnapshot, path: str) -> Dict[str, Any]:
    """Serialize a snapshot to the versioned container at ``path``."""
    try:
        raw = pickle.dumps(snapshot, protocol=_PICKLE_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(
            "simulation state is not serializable: "
            f"{exc}. Scheduled callbacks must be bound methods of "
            "simulation objects (no lambdas/closures), and "
            "process-based (generator) simulations cannot be "
            "checkpointed."
        ) from exc
    payload = zlib.compress(raw, level=6)
    header = {
        "format": CHECKPOINT_FORMAT_VERSION,
        "snapshot_version": snapshot.version,
        "payload_bytes": len(payload),
        "pickled_bytes": len(raw),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
        "created_unix": round(time.time(), 3),  # repro: noqa[DET001] - checkpoint metadata; not restored state
        "meta": dict(snapshot.meta),
    }
    blob = MAGIC + json.dumps(header, sort_keys=True).encode() + b"\n" + payload
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return header


def read_checkpoint_header(path: str) -> Dict[str, Any]:
    """Read and validate only the header (cheap inspection)."""
    with open(path, "rb") as handle:
        magic = handle.readline()
        if magic != MAGIC:
            raise CheckpointError(f"{path} is not a Horse checkpoint")
        try:
            header = json.loads(handle.readline().decode())
        except (ValueError, UnicodeDecodeError) as exc:
            raise CheckpointError(f"{path}: corrupt checkpoint header") from exc
    if header.get("format", 0) > CHECKPOINT_FORMAT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint format {header.get('format')} is newer "
            f"than this build supports ({CHECKPOINT_FORMAT_VERSION})"
        )
    return header


def read_checkpoint(path: str) -> SimulationSnapshot:
    """Read, verify, and unpickle a checkpoint file."""
    header = read_checkpoint_header(path)
    with open(path, "rb") as handle:
        handle.readline()  # magic
        handle.readline()  # header
        payload = handle.read()
    if len(payload) != header["payload_bytes"]:
        raise CheckpointError(
            f"{path}: truncated payload "
            f"({len(payload)} of {header['payload_bytes']} bytes)"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header["payload_sha256"]:
        raise CheckpointError(f"{path}: payload digest mismatch (corrupt file)")
    try:
        snapshot = pickle.loads(zlib.decompress(payload))
    except Exception as exc:
        raise CheckpointError(f"{path}: failed to restore snapshot: {exc}") from exc
    if not isinstance(snapshot, SimulationSnapshot):
        raise CheckpointError(
            f"{path}: payload is {type(snapshot).__name__}, "
            "expected SimulationSnapshot"
        )
    return snapshot
