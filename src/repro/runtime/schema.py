"""Scenario schema versioning: validation, and the v0 -> v1 migrator.

Scenario JSON grew the same flat-key sprawl the config did: engine
knobs at the top level (``hybrid_select``, ``wire_client``,
``monitor_interval_s``) next to a grab-bag ``runtime`` section
(``checkpoint_path``, ``wire_listen``, ``trace_path``, ...).  Schema
**v1** mirrors :class:`~repro.core.config.HorseConfig`'s nested
sections instead::

    {
      "schema_version": 1,
      "engine": "flow", "solver": "incremental", "seed": 0,
      "until": 60.0, "control": "inproc",
      "topology": {...}, "policies": {...}, "traffic": {...},
      "hybrid":    {"select": "top:4", "sync_interval_s": 0.05},
      "wire":      {"client": "learning", "listen": "127.0.0.1:0", ...},
      "telemetry": {"monitor_interval_s": 0.5, "trace_path": ..., ...},
      "checkpoint": {"path": "run.ckpt", "interval_s": 5.0},
      "shards":    {"count": 4, "quantum_s": null, "partition": "greedy"},
      "kernel":    {"queue": "heap", "compaction_threshold": 0.5}
    }

``"shards"`` also accepts a bare integer (``"shards": 4``).  Documents
without ``schema_version`` are treated as v0: :func:`ensure_v1`
migrates them in memory, warning once per deprecated key per process;
``repro migrate-scenario`` rewrites the file.  :func:`validate_scenario`
reports problems with dotted paths (``"wire.dilation: must be >= 0"``).
"""

from __future__ import annotations

import copy
import warnings
from typing import Dict, List, Set, Tuple

from ..errors import ExperimentError

SCHEMA_VERSION = 1

_NUM = (int, float)
_OPT_NUM = (int, float, type(None))
_OPT_STR = (str, type(None))

#: v0 top-level scenario key -> (v1 section, field).
V0_TOP_KEYS: Dict[str, Tuple[str, str]] = {
    "hybrid_select": ("hybrid", "select"),
    "hybrid_sync_interval_s": ("hybrid", "sync_interval_s"),
    "wire_client": ("wire", "client"),
    "monitor_interval_s": ("telemetry", "monitor_interval_s"),
    "link_sample_interval_s": ("telemetry", "link_sample_interval_s"),
}

#: v0 ``runtime`` section key -> (v1 section, field).
V0_RUNTIME_KEYS: Dict[str, Tuple[str, str]] = {
    "monitor_mode": ("telemetry", "monitor_mode"),
    "monitor_push_min_delta_bytes": ("telemetry", "monitor_push_min_delta_bytes"),
    "trace_path": ("telemetry", "trace_path"),
    "profile": ("telemetry", "profile"),
    "checkpoint_path": ("checkpoint", "path"),
    "checkpoint_interval_s": ("checkpoint", "interval_s"),
    "wire_listen": ("wire", "listen"),
    "wire_client_routes": ("wire", "client_routes"),
    "wire_sync_quantum_s": ("wire", "sync_quantum_s"),
    "wire_latency_budget_s": ("wire", "latency_budget_s"),
    "wire_dilation": ("wire", "dilation"),
}

#: v1 section -> {field: accepted types} (None values always allowed to
#: mean "use the default", matching JSON null round-trips).
SECTION_FIELDS: Dict[str, Dict[str, tuple]] = {
    "hybrid": {
        "select": (str,),
        "sync_interval_s": _NUM,
    },
    "wire": {
        "client": _OPT_STR,
        "listen": (str,),
        "client_routes": (list, type(None)),
        "sync_quantum_s": _NUM,
        "latency_budget_s": _NUM,
        "dilation": _NUM,
    },
    "telemetry": {
        "monitor_interval_s": _OPT_NUM,
        "monitor_threshold": _NUM,
        "monitor_mode": (str,),
        "monitor_push_min_delta_bytes": _NUM,
        "link_sample_interval_s": _OPT_NUM,
        "trace_path": _OPT_STR,
        "profile": (bool,),
    },
    "checkpoint": {
        "path": _OPT_STR,
        "interval_s": _OPT_NUM,
    },
    "shards": {
        "count": (int,),
        "quantum_s": _OPT_NUM,
        "partition": (str, list),
        "checkpoint_dir": _OPT_STR,
    },
    "kernel": {
        "queue": (str,),
        "compaction_threshold": _OPT_NUM,
        "min_compact_size": (int,),
    },
}

_TOP_ENUMS = {
    "engine": ("flow", "packet", "hybrid"),
    "solver": ("incremental", "full", "vector"),
    "control": ("inproc", "wire"),
}

#: Deprecated scenario keys already warned about (warn-once semantics).
_WARNED_SCENARIO_KEYS: Set[str] = set()


def reset_scenario_warnings() -> None:
    """Forget which deprecated scenario keys have warned (test hook)."""
    _WARNED_SCENARIO_KEYS.clear()


def _warn_scenario_key(old: str, section: str, field: str) -> None:
    if old in _WARNED_SCENARIO_KEYS:
        return
    _WARNED_SCENARIO_KEYS.add(old)
    warnings.warn(
        f"scenario key {old!r} is deprecated; use \"{section}\": "
        f"{{\"{field}\": ...}} (or run `repro migrate-scenario`)",
        DeprecationWarning,
        stacklevel=4,
    )


def scenario_version(doc: dict) -> int:
    """The document's declared schema version (absent = 0)."""
    version = doc.get("schema_version", 0)
    if not isinstance(version, int) or version < 0:
        raise ExperimentError(
            f"schema_version: must be a non-negative integer, got {version!r}"
        )
    return version


def migrate_scenario(doc: dict) -> Tuple[dict, List[str]]:
    """A v1 copy of ``doc``, plus a list of ``old -> new`` move notes.

    v1 documents come back unchanged (and an empty note list).  The
    input is never mutated.
    """
    version = scenario_version(doc)
    if version > SCHEMA_VERSION:
        raise ExperimentError(
            f"schema_version: {version} is newer than this build "
            f"supports ({SCHEMA_VERSION})"
        )
    out = copy.deepcopy(doc)
    if version == SCHEMA_VERSION:
        return out, []
    notes: List[str] = []

    def move(value, section: str, field: str, old: str) -> None:
        target = out.setdefault(section, {})
        if not isinstance(target, dict):
            raise ExperimentError(
                f"{section}: expected an object, got {type(target).__name__}"
            )
        # An explicit v1-style value wins over the legacy flat key.
        target.setdefault(field, value)
        notes.append(f"{old} -> {section}.{field}")

    for old, (section, field) in V0_TOP_KEYS.items():
        if old in out:
            move(out.pop(old), section, field, old)
    runtime = out.pop("runtime", None) or {}
    if not isinstance(runtime, dict):
        raise ExperimentError(
            f"runtime: expected an object, got {type(runtime).__name__}"
        )
    for old, (section, field) in V0_RUNTIME_KEYS.items():
        if old in runtime:
            move(runtime.pop(old), section, field, f"runtime.{old}")
    if runtime:
        unknown = ", ".join(sorted(runtime))
        raise ExperimentError(f"runtime: unknown key(s): {unknown}")
    out["schema_version"] = SCHEMA_VERSION
    notes.append(f"schema_version -> {SCHEMA_VERSION}")
    return out, notes


def ensure_v1(doc: dict, warn: bool = True) -> dict:
    """``doc`` migrated to v1 (a copy when migration was needed).

    With ``warn`` (the default) each legacy key found triggers a
    once-per-process :class:`DeprecationWarning` naming its new home.
    """
    if scenario_version(doc) == SCHEMA_VERSION:
        return doc
    migrated, notes = migrate_scenario(doc)
    if warn:
        for note in notes:
            old, _, new = note.partition(" -> ")
            if old == "schema_version":
                continue
            section, _, field = new.partition(".")
            _warn_scenario_key(old, section, field)
    return migrated


def _check_type(path: str, value, types: tuple) -> None:
    # bool is an int subclass; reject it where a number is expected.
    if isinstance(value, bool) and bool not in types:
        raise ExperimentError(
            f"{path}: expected {_type_names(types)}, got a boolean"
        )
    if not isinstance(value, types):
        raise ExperimentError(
            f"{path}: expected {_type_names(types)}, "
            f"got {type(value).__name__}"
        )


def _type_names(types: tuple) -> str:
    names = [
        "null" if t is type(None) else t.__name__
        for t in types
    ]
    return " or ".join(names)


def validate_scenario(doc: dict) -> None:
    """Check a v1 document's sections; raises
    :class:`~repro.errors.ExperimentError` naming the offending field
    by dotted path.  Accepts v0 documents by migrating a throwaway
    copy first, so errors always report v1 paths.
    """
    doc = ensure_v1(doc, warn=False)
    for key, allowed in _TOP_ENUMS.items():
        if key in doc and doc[key] not in allowed:
            raise ExperimentError(
                f"{key}: must be one of {', '.join(allowed)}, "
                f"got {doc[key]!r}"
            )
    if "until" in doc and doc["until"] is not None:
        _check_type("until", doc["until"], _NUM)
        if doc["until"] < 0:
            raise ExperimentError("until: must be >= 0")
    if "seed" in doc:
        _check_type("seed", doc["seed"], (int,))
    for section, fields in SECTION_FIELDS.items():
        if section not in doc:
            continue
        value = doc[section]
        if section == "shards" and isinstance(value, int):
            if isinstance(value, bool) or value < 1:
                raise ExperimentError(
                    f"shards: must be an integer >= 1, got {value!r}"
                )
            continue
        if not isinstance(value, dict):
            raise ExperimentError(
                f"{section}: expected an object, got {type(value).__name__}"
            )
        for field, fval in value.items():
            types = fields.get(field)
            if types is None:
                raise ExperimentError(f"{section}.{field}: unknown key")
            if fval is None and type(None) not in types:
                # null = "use the default" for any field in JSON.
                continue
            _check_type(f"{section}.{field}", fval, types)
    kern = doc.get("kernel")
    if isinstance(kern, dict):
        queue = kern.get("queue", "heap")
        if queue not in ("heap", "sorted"):
            raise ExperimentError(
                f"kernel.queue: must be 'heap' or 'sorted', got {queue!r}"
            )
        threshold = kern.get("compaction_threshold")
        if threshold is not None and not (0.0 < threshold <= 1.0):
            raise ExperimentError(
                "kernel.compaction_threshold: must be in (0, 1] or null"
            )
    sh = doc.get("shards")
    if isinstance(sh, dict):
        count = sh.get("count", 1)
        if isinstance(count, bool) or not isinstance(count, int) or count < 1:
            raise ExperimentError(
                f"shards.count: must be an integer >= 1, got {count!r}"
            )
        quantum = sh.get("quantum_s")
        if quantum is not None and quantum <= 0:
            raise ExperimentError("shards.quantum_s: must be > 0")


def shard_section(doc: dict) -> dict:
    """The document's ``"shards"`` value normalized to a dict
    (``"shards": 4`` means ``{"count": 4}``)."""
    value = doc.get("shards")
    if value is None:
        return {}
    if isinstance(value, bool):
        raise ExperimentError(f"shards: must be an integer >= 1, got {value!r}")
    if isinstance(value, int):
        return {"count": value}
    if isinstance(value, dict):
        return dict(value)
    raise ExperimentError(
        f"shards: expected an object or integer, got {type(value).__name__}"
    )


class Scenario:
    """A validated scenario document, ready to build or run.

    The stable object form of a scenario file: loads JSON, migrates
    legacy (v0) keys, validates with dotted-path errors, and exposes
    the builders the CLI uses, so programmatic callers and shell
    invocations construct byte-identical simulations.

    Examples
    --------
    >>> scenario = Scenario.from_file("examples/scenarios/quickstart.json")
    >>> horse, result, flows = scenario.run()
    """

    def __init__(self, doc: dict) -> None:
        self.doc = ensure_v1(doc)
        validate_scenario(self.doc)

    @classmethod
    def from_file(cls, path: str) -> "Scenario":
        import json

        with open(path) as handle:
            return cls(json.load(handle))

    def config(self, solver=None):
        """The :class:`~repro.core.config.HorseConfig` this document
        describes (``solver`` mirrors ``repro run --solver``)."""
        from .scenario import build_config

        return build_config(self.doc, solver=solver)

    def build(self, solver=None):
        """``(horse, fabric)`` with topology and policies in place but
        no traffic submitted."""
        from .scenario import build_horse

        return build_horse(self.doc, solver=solver)

    def run(self, solver=None):
        """Build, load, and run end to end; returns
        ``(horse, result, flow_count)``."""
        from .scenario import run_scenario

        return run_scenario(self.doc, solver=solver)
