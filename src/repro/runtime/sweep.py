"""Parameter sweeps: template x grid -> jobs -> one deterministic report.

A *sweep spec* is a JSON document holding a base scenario, a parameter
grid (dotted paths into the scenario), and runtime knobs::

    {
      "name": "solver-scale",
      "base": { ...scenario... },          # or "base_file": "pod.json"
      "grid": {"solver": ["incremental", "full"],
               "topology.k": [4, 6]},
      "runtime": {"seed": 7, "workers": 2, "timeout_s": 120,
                  "retries": 2, "backoff_s": 0.5,
                  "checkpoint_interval_s": 5.0}
    }

Expansion is the cartesian product of the grid in key order; job
``index`` is the product rank, and each job's RNG seed is derived as
``spawn_seed(sweep_seed, index)`` so results are independent of
execution order, worker assignment, and retries.  Jobs run on the
crash-isolated pool (:mod:`.pool`); progress is persisted to
``manifest.json`` after every job so an interrupted sweep resumes with
``repro resume DIR``, re-running only unfinished jobs.  The final
``report.json`` separates deterministic content (``results`` and
``summary`` — identical for serial and parallel execution) from
execution metadata (wall time, attempts, retries).
"""

from __future__ import annotations

import copy
import itertools
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..errors import SweepError
from ..sim.rng import spawn_seed
from .pool import run_jobs
from .scenario import reset_id_counters, run_scenario
from .schema import ensure_v1

MANIFEST_VERSION = 1

#: Exit code of a fault-injected worker crash (distinctive in logs).
FAULT_EXIT_CODE = 23


# ----------------------------------------------------------------------
# Spec and expansion
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepJob:
    """One expanded grid point: a concrete runnable scenario."""

    index: int
    params: Dict[str, Any]
    seed: int
    scenario: Dict[str, Any]


@dataclass
class SweepSpec:
    """A validated sweep document."""

    name: str
    base: Dict[str, Any]
    grid: Dict[str, List[Any]]
    runtime: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, doc: dict, *, base_dir: Optional[str] = None) -> "SweepSpec":
        if not isinstance(doc, dict):
            raise SweepError(f"sweep spec must be an object, got {type(doc).__name__}")
        base = doc.get("base")
        if base is None and "base_file" in doc:
            path = doc["base_file"]
            if base_dir is not None and not os.path.isabs(path):
                path = os.path.join(base_dir, path)
            try:
                with open(path) as handle:
                    base = json.load(handle)
            except (OSError, ValueError) as exc:
                raise SweepError(f"cannot load base_file {path!r}: {exc}") from exc
        if not isinstance(base, dict):
            raise SweepError("sweep spec needs a 'base' scenario object")
        grid = doc.get("grid") or {}
        if not isinstance(grid, dict) or not grid:
            raise SweepError("sweep spec needs a non-empty 'grid' object")
        for key, values in grid.items():
            if not isinstance(values, list) or not values:
                raise SweepError(
                    f"grid values for {key!r} must be a non-empty list"
                )
        runtime = doc.get("runtime") or {}
        if not isinstance(runtime, dict):
            raise SweepError("'runtime' must be an object")
        return cls(
            name=str(doc.get("name", "sweep")),
            base=base,
            grid={str(k): list(v) for k, v in grid.items()},
            runtime=dict(runtime),
        )

    @classmethod
    def from_file(cls, path: str) -> "SweepSpec":
        try:
            with open(path) as handle:
                doc = json.load(handle)
        except (OSError, ValueError) as exc:
            raise SweepError(f"cannot load sweep spec {path!r}: {exc}") from exc
        return cls.from_dict(doc, base_dir=os.path.dirname(os.path.abspath(path)))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "base": self.base,
            "grid": self.grid,
            "runtime": self.runtime,
        }


def _set_dotted(doc: dict, dotted: str, value: Any) -> None:
    """Set ``doc["a"]["b"]["c"]`` for dotted path ``"a.b.c"``."""
    parts = dotted.split(".")
    node = doc
    for part in parts[:-1]:
        nxt = node.get(part)
        if not isinstance(nxt, dict):
            nxt = {}
            node[part] = nxt
        node = nxt
    node[parts[-1]] = value


def expand_jobs(spec: SweepSpec) -> List[SweepJob]:
    """The cartesian product of the grid, in deterministic index order.

    Every job gets its own RNG seed via stable spawn-key hashing of
    (sweep seed, job index) — unless ``seed`` is itself a grid axis, in
    which case the grid value wins.
    """
    sweep_seed = int(spec.runtime.get("seed", spec.base.get("seed", 0)))
    keys = list(spec.grid)
    jobs: List[SweepJob] = []
    for index, combo in enumerate(itertools.product(*(spec.grid[k] for k in keys))):
        params = dict(zip(keys, combo))
        scenario = copy.deepcopy(spec.base)
        for key, value in params.items():
            _set_dotted(scenario, key, value)
        if "seed" in params:
            seed = int(params["seed"])
        else:
            seed = spawn_seed(sweep_seed, "job", index)
            scenario["seed"] = seed
        jobs.append(
            SweepJob(index=index, params=params, seed=seed, scenario=scenario)
        )
    return jobs


# ----------------------------------------------------------------------
# The per-job worker (runs in a pool child process)
# ----------------------------------------------------------------------
def _sweep_worker(payload: Dict[str, Any]) -> dict:
    """Build and run one job's scenario; return its result document.

    Top-level (not a closure) so it pickles under a spawn start method.
    Supports fault injection for the crash-isolation tests: a runtime
    ``fault`` of ``{"job": N, "crashes": K}`` hard-kills the first K
    attempts of job N.  If a periodic checkpoint from a previous
    (crashed) attempt exists, the run resumes from it instead of
    starting over.
    """
    attempt = int(payload.get("attempt", 1))
    fault = payload.get("fault") or {}
    if payload["index"] == fault.get("job") and attempt <= int(
        fault.get("crashes", 0)
    ):
        os._exit(FAULT_EXIT_CODE)

    reset_id_counters()
    scenario = ensure_v1(copy.deepcopy(payload["scenario"]), warn=False)
    # Per-phase wall clock on by default so every job manifests where its
    # time went; the spec can opt out with {"telemetry": {"profile": false}}.
    scenario.setdefault("telemetry", {}).setdefault("profile", True)
    ckpt_path = payload.get("checkpoint_path")
    interval = payload.get("checkpoint_interval_s")
    if ckpt_path and interval:
        section = scenario.setdefault("checkpoint", {})
        section["path"] = ckpt_path
        section["interval_s"] = interval

    resumed = False
    if ckpt_path and os.path.exists(ckpt_path):
        from .checkpoint import load_checkpoint

        horse = load_checkpoint(ckpt_path)
        result = horse.run(until=scenario.get("until"))
        flows = len(horse.engine.flows)
        resumed = True
    else:
        horse, result, flows = run_scenario(scenario)
    if ckpt_path and os.path.exists(ckpt_path):
        os.unlink(ckpt_path)  # done; a stale checkpoint must not leak into resume

    row = result.row()
    row.pop("wall_time_s", None)
    row.pop("events_per_s", None)
    # The per-phase profile is wall clock, so it belongs with the other
    # non-deterministic bookkeeping in "execution" — never in "result",
    # which must aggregate byte-identically across schedules.
    engine_stats = dict(result.engine_stats)
    profile = engine_stats.pop("profile", None)
    execution = {
        "attempt": attempt,
        "resumed_from_checkpoint": resumed,
        "wall_time_s": round(result.wall_time_s, 4),
    }
    if profile is not None:
        execution["profile"] = profile
    return {
        "index": payload["index"],
        "params": payload["params"],
        "seed": scenario.get("seed"),
        "result": {
            **row,
            "fct": result.fct_summary(),
            "fairness": result.fairness(),
            "engine_stats": engine_stats,
        },
        "execution": execution,
    }


# ----------------------------------------------------------------------
# Manifest + execution
# ----------------------------------------------------------------------
def _write_json(path: str, doc: dict) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def _manifest_path(out_dir: str) -> str:
    return os.path.join(out_dir, "manifest.json")


def _job_path(out_dir: str, index: int) -> str:
    return os.path.join(out_dir, "jobs", f"job-{index:04d}.json")


def _ckpt_path(out_dir: str, index: int) -> str:
    return os.path.join(out_dir, "checkpoints", f"job-{index:04d}.ckpt")


def _load_manifest(out_dir: str) -> dict:
    path = _manifest_path(out_dir)
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        raise SweepError(f"cannot load sweep manifest {path!r}: {exc}") from exc
    if doc.get("manifest_version", 0) > MANIFEST_VERSION:
        raise SweepError(
            f"manifest version {doc.get('manifest_version')} is newer than "
            f"this build supports ({MANIFEST_VERSION})"
        )
    return doc


def run_sweep(
    spec: SweepSpec,
    out_dir: str,
    *,
    workers: Optional[int] = None,
    on_event: Optional[Callable[[str, int, int, str], None]] = None,
) -> dict:
    """Execute a sweep from scratch into ``out_dir``; returns the report."""
    jobs = expand_jobs(spec)
    os.makedirs(os.path.join(out_dir, "jobs"), exist_ok=True)
    os.makedirs(os.path.join(out_dir, "checkpoints"), exist_ok=True)
    manifest = {
        "manifest_version": MANIFEST_VERSION,
        "name": spec.name,
        "spec": spec.to_dict(),
        "created_unix": round(time.time(), 3),  # repro: noqa[DET001] - manifest metadata; not job input
        "jobs": [
            {
                "index": job.index,
                "params": job.params,
                "seed": job.seed,
                "status": "pending",
                "attempts": 0,
                "error": None,
            }
            for job in jobs
        ],
    }
    _write_json(_manifest_path(out_dir), manifest)
    return _execute(spec, jobs, list(range(len(jobs))), out_dir, manifest,
                    workers=workers, on_event=on_event)


def resume_sweep(
    out_dir: str,
    *,
    workers: Optional[int] = None,
    on_event: Optional[Callable[[str, int, int, str], None]] = None,
) -> dict:
    """Re-run only the unfinished jobs of an interrupted sweep."""
    manifest = _load_manifest(out_dir)
    spec = SweepSpec.from_dict(manifest["spec"])
    jobs = expand_jobs(spec)
    if len(jobs) != len(manifest.get("jobs", [])):
        raise SweepError(
            f"manifest lists {len(manifest.get('jobs', []))} jobs but the "
            f"spec expands to {len(jobs)} — the sweep directory is stale"
        )
    pending = [
        entry["index"]
        for entry in manifest["jobs"]
        if entry.get("status") != "done"
    ]
    if not pending:
        report = aggregate_report(out_dir)
        _write_json(os.path.join(out_dir, "report.json"), report)
        return report
    return _execute(spec, jobs, pending, out_dir, manifest,
                    workers=workers, on_event=on_event)


def _execute(
    spec: SweepSpec,
    jobs: List[SweepJob],
    indices: List[int],
    out_dir: str,
    manifest: dict,
    *,
    workers: Optional[int],
    on_event: Optional[Callable[[str, int, int, str], None]],
) -> dict:
    runtime = spec.runtime
    worker_count = int(workers or runtime.get("workers", 1))
    interval = runtime.get("checkpoint_interval_s")
    fault = runtime.get("fault")
    by_index = {job.index: job for job in jobs}

    payloads: List[Dict[str, Any]] = []
    out_paths: List[str] = []
    for index in indices:
        job = by_index[index]
        payload: Dict[str, Any] = {
            "index": job.index,
            "params": job.params,
            "scenario": job.scenario,
        }
        if interval:
            payload["checkpoint_path"] = _ckpt_path(out_dir, job.index)
            payload["checkpoint_interval_s"] = interval
        if fault:
            payload["fault"] = fault
        payloads.append(payload)
        out_paths.append(_job_path(out_dir, job.index))

    entries = {entry["index"]: entry for entry in manifest["jobs"]}

    def pool_event(kind: str, position: int, attempt: int, detail: str) -> None:
        index = indices[position]
        entry = entries[index]
        if kind == "start":
            entry["status"] = "running"
            entry["attempts"] = attempt
        elif kind == "ok":
            entry["status"] = "done"
            entry["error"] = None
            _write_json(_manifest_path(out_dir), manifest)
        elif kind == "failed":
            entry["status"] = "failed"
            entry["error"] = detail
            _write_json(_manifest_path(out_dir), manifest)
        elif kind in ("crash", "timeout"):
            entry["error"] = detail
        if on_event is not None:
            on_event(kind, index, attempt, detail)

    outcomes = run_jobs(
        payloads,
        _sweep_worker,
        out_paths,
        workers=worker_count,
        timeout_s=runtime.get("timeout_s", 300.0),
        retries=int(runtime.get("retries", 2)),
        backoff_s=float(runtime.get("backoff_s", 0.5)),
        on_event=pool_event,
    )
    for position, outcome in enumerate(outcomes):
        entry = entries[indices[position]]
        entry["status"] = "done" if outcome.ok else "failed"
        entry["attempts"] = outcome.attempts
        entry["error"] = outcome.error
        entry["wall_s"] = round(outcome.wall_s, 4)
    _write_json(_manifest_path(out_dir), manifest)

    report = aggregate_report(out_dir)
    _write_json(os.path.join(out_dir, "report.json"), report)
    return report


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def aggregate_report(out_dir: str) -> dict:
    """Fold per-job results into one report, deterministically.

    Jobs are read in index order and the ``results``/``summary``
    sections depend only on job *results*, never on scheduling — a
    parallel sweep aggregates to exactly the same content as a serial
    one.  Wall-clock and retry bookkeeping live under ``execution``.
    """
    manifest = _load_manifest(out_dir)
    results: List[dict] = []
    failed: List[int] = []
    attempts: Dict[str, int] = {}
    retried: List[int] = []
    wall_total = 0.0
    for entry in sorted(manifest["jobs"], key=lambda e: e["index"]):
        index = entry["index"]
        attempts[str(index)] = entry.get("attempts", 0)
        if entry.get("attempts", 0) > 1:
            retried.append(index)
        wall_total += entry.get("wall_s", 0.0) or 0.0
        if entry.get("status") != "done":
            failed.append(index)
            continue
        path = _job_path(out_dir, index)
        try:
            with open(path) as handle:
                doc = json.load(handle)
        except (OSError, ValueError) as exc:
            raise SweepError(f"cannot read job result {path!r}: {exc}") from exc
        results.append(
            {
                "index": index,
                "params": doc.get("params", entry.get("params")),
                "seed": doc.get("seed", entry.get("seed")),
                "result": doc.get("result", {}),
            }
        )

    spec = manifest.get("spec", {})
    goodputs = [
        r["result"].get("goodput_gbps", 0.0) for r in results if r.get("result")
    ]
    summary = {
        "jobs": len(manifest["jobs"]),
        "completed": len(results),
        "failed": sorted(failed),
        "total_events": sum(r["result"].get("events", 0) for r in results),
        "total_flows": sum(r["result"].get("flows", 0) for r in results),
        "mean_goodput_gbps": (
            round(sum(goodputs) / len(goodputs), 6) if goodputs else 0.0
        ),
    }
    return {
        "name": manifest.get("name", "sweep"),
        "manifest_version": manifest.get("manifest_version", MANIFEST_VERSION),
        "grid": spec.get("grid", {}),
        "results": results,
        "summary": summary,
        "execution": {
            "attempts": attempts,
            "retried": sorted(retried),
            "wall_time_s_total": round(wall_total, 4),
        },
    }
