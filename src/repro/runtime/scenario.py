"""Scenario documents -> runnable simulations.

One JSON *scenario* describes topology, policies, traffic, engine, and
runtime knobs — everything a run needs, so experiments are shareable
files rather than scripts.  The builders here are shared by the ``repro
run`` CLI and the sweep workers: both must construct byte-identical
simulations from the same document for sweep results to be independent
of where a job executes.

Schema v1 (see :mod:`repro.runtime.schema`; legacy v0 documents with
flat ``hybrid_*``/``wire_*`` keys and a ``runtime`` section are
migrated on load with deprecation warnings)::

    {
      "schema_version": 1,
      "engine": "flow" | "packet" | "hybrid",
      "solver": "incremental" | "full" | "vector",   # flow engine only
      "route_cache": true,                           # flow engine only
      "seed": 0,
      "until": 60.0,
      "topology": {"kind": "fat-tree", "k": 4} | ... | {"file": "topo.json"},
      "policies": { ... },                   # inproc control only
      "control": "inproc" | "wire",
      "traffic":  {"kind": "matrix", ...} | {"kind": "trace", ...},
      "hybrid":   {"select": "none" | "all" | "top:K" | "match:...",
                   "sync_interval_s": 0.05},
      "wire":     {"client": null | "learning" | "static",
                   "listen": "127.0.0.1:0",
                   "sync_quantum_s": 0.05,
                   "latency_budget_s": 5.0,
                   "dilation": 0.0,
                   "client_routes": [...]},
      "telemetry": {"monitor_interval_s": null, "monitor_mode": "poll",
                    "monitor_push_min_delta_bytes": 0.0,
                    "link_sample_interval_s": null,
                    "trace_path": "run.trace.jsonl", "profile": false},
      "checkpoint": {"path": "run.ckpt", "interval_s": 5.0},
      "shards":   4 | {"count": 4, "quantum_s": null,
                       "partition": "greedy" | [[...], ...],
                       "checkpoint_dir": null}
    }
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core import Horse, HorseConfig
from ..core.results import RunResult
from ..errors import ExperimentError
from ..net.generators import fat_tree, leaf_spine, linear, pods, single_switch
from ..net.io import load_topology
from ..control.policy.spec import parse_rate
from ..traffic.flowgen import FlowGenerator
from ..traffic.matrix import TrafficMatrix
from .schema import ensure_v1, shard_section, validate_scenario


def build_topology(spec: dict):
    """Build a topology (and the IXP fabric, when applicable)."""
    if "file" in spec:
        return load_topology(spec["file"]), None
    kind = spec.get("kind")
    if kind == "fat-tree":
        return fat_tree(spec.get("k", 4)), None
    if kind == "leaf-spine":
        return (
            leaf_spine(
                spec.get("leaves", 4),
                spec.get("spines", 2),
                hosts_per_leaf=spec.get("hosts_per_leaf", 2),
            ),
            None,
        )
    if kind == "linear":
        return (
            linear(
                spec.get("switches", 2),
                hosts_per_switch=spec.get("hosts_per_switch", 1),
            ),
            None,
        )
    if kind == "star":
        return single_switch(spec.get("hosts", 4)), None
    if kind == "pods":
        return (
            pods(
                spec.get("pods", 4),
                hosts_per_pod=spec.get("hosts_per_pod", 4),
                capacity_bps=parse_rate(spec.get("capacity", "100 Mbps")),
            ),
            None,
        )
    if kind == "ixp":
        from ..ixp import build_ixp

        fabric = build_ixp(spec.get("members", 16), seed=spec.get("seed", 0))
        return fabric.topology, fabric
    raise ExperimentError(f"unknown topology kind {kind!r}")


def build_config(
    scenario: dict, solver: Optional[str] = None
) -> HorseConfig:
    """A :class:`HorseConfig` from a scenario document.

    ``solver`` overrides the scenario's choice (the ``repro run
    --solver`` flag).  Legacy (v0) documents are migrated in memory
    first, warning once per deprecated key.
    """
    validate_scenario(scenario)
    doc = ensure_v1(scenario)
    return HorseConfig(
        engine=doc.get("engine", "flow"),
        solver=solver or doc.get("solver", "incremental"),
        route_cache=doc.get("route_cache", True),
        seed=doc.get("seed", 0),
        control=doc.get("control", "inproc"),
        hybrid=doc.get("hybrid") or None,
        wire=doc.get("wire") or None,
        telemetry=doc.get("telemetry") or None,
        checkpoint=doc.get("checkpoint") or None,
        shard=shard_section(doc) or None,
        kernel=doc.get("kernel") or None,
    )


def build_horse(
    scenario: dict, solver: Optional[str] = None
) -> Tuple[Horse, object]:
    """Build the simulation a scenario describes (traffic not submitted)."""
    config = build_config(scenario, solver=solver)
    topology, fabric = build_topology(scenario.get("topology", {}))
    if config.control == "wire":
        if scenario.get("policies"):
            raise ExperimentError(
                "a wire-control scenario cannot carry in-process policies; "
                "the controller lives on the other end of the connection"
            )
        horse = Horse(topology, policies=None, config=config)
    else:
        horse = Horse(
            topology, policies=scenario.get("policies") or {}, config=config
        )
    return horse, fabric


def build_traffic(spec: dict, horse: Horse, fabric, flow_filter=None) -> int:
    """Generate and submit the scenario's traffic; returns flow count.

    ``flow_filter`` (flow -> bool) drops flows *after* generation, so
    ids stay identical to an unfiltered build — the shard runtime uses
    this to give every worker the full deterministic id sequence while
    submitting only its own domain's flows.
    """
    kind = spec.get("kind", "matrix")
    if kind == "trace":
        from ..traffic.trace_io import load_trace

        flows = load_trace(spec["file"])
        if flow_filter is not None:
            flows = [f for f in flows if flow_filter(f)]
        horse.submit_flows(flows)
        return len(flows)
    if kind == "matrix":
        model = spec.get("model", "uniform")
        total = parse_rate(spec.get("total", "1 Gbps"))
        hosts = [h.name for h in horse.topology.hosts]
        if model == "uniform":
            matrix = TrafficMatrix.uniform(hosts, total_bps=total)
        elif model == "pod-local":
            matrix = TrafficMatrix.pod_local(hosts, total_bps=total)
        elif model == "gravity-ixp":
            if fabric is None:
                raise ExperimentError("gravity-ixp traffic needs an ixp topology")
            from ..traffic.ixp_trace import ixp_gravity_matrix

            matrix = ixp_gravity_matrix(fabric, total_bps=total)
        else:
            raise ExperimentError(f"unknown matrix model {model!r}")
        generator = FlowGenerator(
            horse.topology, horse.rngs.stream("traffic")
        )
        horizon = spec.get("horizon_s", 5.0)
        if spec.get("constant_rate", False):
            flows = generator.constant_rate_flows(matrix, duration_s=horizon)
        else:
            flows = generator.from_matrix(matrix, horizon_s=horizon)
        if flow_filter is not None:
            flows = [f for f in flows if flow_filter(f)]
        horse.submit_flows(flows)
        return len(flows)
    raise ExperimentError(f"unknown traffic kind {kind!r}")


def run_scenario(
    scenario: dict, solver: Optional[str] = None
) -> Tuple[Optional[Horse], RunResult, int]:
    """Build, load, and run one scenario end to end.

    With ``"shards": k`` for k > 1 the run executes on the sharded
    parallel runtime (see :mod:`repro.shard`) and the returned horse is
    None — the k simulations lived in worker processes.
    """
    shards = shard_section(ensure_v1(scenario, warn=False))
    if int(shards.get("count", 1)) > 1:
        from ..shard import run_sharded

        result, count = run_sharded(scenario, solver=solver)
        return None, result, count
    horse, fabric = build_horse(scenario, solver=solver)
    count = build_traffic(scenario.get("traffic", {}), horse, fabric)
    try:
        result = horse.run(until=scenario.get("until"))
    finally:
        # A scenario is one run; release the wire listener (no-op inproc).
        horse.shutdown_wire()
    return horse, result, count


def reset_id_counters() -> None:
    """Rewind the process-global id counters to their import-time state.

    Sweep workers call this before building a job so ids (flow ids,
    flow-entry sequence numbers, packet ids) depend only on the job
    itself — never on what the process ran earlier or on fork
    inheritance — making job results identical whether the job runs
    serially, on any worker, or after a retry.
    """
    from ..flowsim.flow import reset_flow_ids
    from ..openflow.flowtable import reset_entry_seq
    from ..openflow.messages import reset_xids
    from ..pktsim.packet import reset_packet_ids

    reset_flow_ids()
    reset_entry_seq()
    reset_packet_ids()
    reset_xids()
