"""Scenario documents -> runnable simulations.

One JSON *scenario* describes topology, policies, traffic, engine, and
runtime knobs — everything a run needs, so experiments are shareable
files rather than scripts.  The builders here are shared by the ``repro
run`` CLI and the sweep workers: both must construct byte-identical
simulations from the same document for sweep results to be independent
of where a job executes.

Schema (the ``runtime`` section is new in this module)::

    {
      "engine": "flow" | "packet" | "hybrid",
      "solver": "incremental" | "full" | "vector",   # flow engine only
      "route_cache": true,                           # flow engine only
      "hybrid_select": "none" | "all" | "top:K" | "match:...",  # hybrid only
      "hybrid_sync_interval_s": 0.05,                # hybrid only
      "seed": 0,
      "until": 60.0,
      "topology": {"kind": "fat-tree", "k": 4} | ... | {"file": "topo.json"},
      "policies": { ... },                   # inproc control only
      "control": "inproc" | "wire",
      "wire_client": null | "learning" | "static",   # wire only
      "traffic":  {"kind": "matrix", ...} | {"kind": "trace", ...},
      "runtime":  {"checkpoint_path": "run.ckpt",
                   "checkpoint_interval_s": 5.0,
                   "monitor_mode": "poll",
                   "trace_path": "run.trace.jsonl",
                   "profile": false,
                   "wire_listen": "127.0.0.1:0",      # wire only
                   "wire_sync_quantum_s": 0.05,
                   "wire_latency_budget_s": 5.0,
                   "wire_dilation": 0.0,
                   "wire_client_routes": [...]}
    }
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core import Horse, HorseConfig
from ..core.results import RunResult
from ..errors import ExperimentError
from ..net.generators import fat_tree, leaf_spine, linear, single_switch
from ..net.io import load_topology
from ..control.policy.spec import parse_rate
from ..traffic.matrix import TrafficMatrix


def build_topology(spec: dict):
    """Build a topology (and the IXP fabric, when applicable)."""
    if "file" in spec:
        return load_topology(spec["file"]), None
    kind = spec.get("kind")
    if kind == "fat-tree":
        return fat_tree(spec.get("k", 4)), None
    if kind == "leaf-spine":
        return (
            leaf_spine(
                spec.get("leaves", 4),
                spec.get("spines", 2),
                hosts_per_leaf=spec.get("hosts_per_leaf", 2),
            ),
            None,
        )
    if kind == "linear":
        return (
            linear(
                spec.get("switches", 2),
                hosts_per_switch=spec.get("hosts_per_switch", 1),
            ),
            None,
        )
    if kind == "star":
        return single_switch(spec.get("hosts", 4)), None
    if kind == "ixp":
        from ..ixp import build_ixp

        fabric = build_ixp(spec.get("members", 16), seed=spec.get("seed", 0))
        return fabric.topology, fabric
    raise ExperimentError(f"unknown topology kind {kind!r}")


def build_config(
    scenario: dict, solver: Optional[str] = None
) -> HorseConfig:
    """A :class:`HorseConfig` from a scenario document.

    ``solver`` overrides the scenario's choice (the ``repro run
    --solver`` flag).  The scenario's ``runtime`` section supplies the
    checkpoint knobs.
    """
    runtime = scenario.get("runtime", {}) or {}
    return HorseConfig(
        engine=scenario.get("engine", "flow"),
        solver=solver or scenario.get("solver", "incremental"),
        route_cache=scenario.get("route_cache", True),
        hybrid_select=scenario.get("hybrid_select", "none"),
        hybrid_sync_interval_s=scenario.get("hybrid_sync_interval_s", 0.05),
        seed=scenario.get("seed", 0),
        link_sample_interval_s=scenario.get("link_sample_interval_s"),
        monitor_interval_s=scenario.get("monitor_interval_s"),
        monitor_mode=runtime.get("monitor_mode", "poll"),
        monitor_push_min_delta_bytes=runtime.get(
            "monitor_push_min_delta_bytes", 0.0
        ),
        trace_path=runtime.get("trace_path"),
        profile=runtime.get("profile", False),
        checkpoint_path=runtime.get("checkpoint_path"),
        checkpoint_interval_s=runtime.get("checkpoint_interval_s"),
        control=scenario.get("control", "inproc"),
        wire_client=scenario.get("wire_client"),
        wire_listen=runtime.get("wire_listen", "127.0.0.1:0"),
        wire_client_routes=runtime.get("wire_client_routes"),
        wire_sync_quantum_s=runtime.get("wire_sync_quantum_s", 0.05),
        wire_latency_budget_s=runtime.get("wire_latency_budget_s", 5.0),
        wire_dilation=runtime.get("wire_dilation", 0.0),
    )


def build_horse(
    scenario: dict, solver: Optional[str] = None
) -> Tuple[Horse, object]:
    """Build the simulation a scenario describes (traffic not submitted)."""
    topology, fabric = build_topology(scenario.get("topology", {}))
    config = build_config(scenario, solver=solver)
    if config.control == "wire":
        if scenario.get("policies"):
            raise ExperimentError(
                "a wire-control scenario cannot carry in-process policies; "
                "the controller lives on the other end of the connection"
            )
        horse = Horse(topology, policies=None, config=config)
    else:
        horse = Horse(
            topology, policies=scenario.get("policies") or {}, config=config
        )
    return horse, fabric


def build_traffic(spec: dict, horse: Horse, fabric) -> int:
    """Generate and submit the scenario's traffic; returns flow count."""
    kind = spec.get("kind", "matrix")
    if kind == "trace":
        from ..traffic.trace_io import load_trace

        flows = load_trace(spec["file"])
        horse.submit_flows(flows)
        return len(flows)
    if kind == "matrix":
        model = spec.get("model", "uniform")
        total = parse_rate(spec.get("total", "1 Gbps"))
        hosts = [h.name for h in horse.topology.hosts]
        if model == "uniform":
            matrix = TrafficMatrix.uniform(hosts, total_bps=total)
        elif model == "gravity-ixp":
            if fabric is None:
                raise ExperimentError("gravity-ixp traffic needs an ixp topology")
            from ..traffic.ixp_trace import ixp_gravity_matrix

            matrix = ixp_gravity_matrix(fabric, total_bps=total)
        else:
            raise ExperimentError(f"unknown matrix model {model!r}")
        flows = horse.submit_matrix(
            matrix,
            horizon_s=spec.get("horizon_s", 5.0),
            constant_rate=spec.get("constant_rate", False),
        )
        return len(flows)
    raise ExperimentError(f"unknown traffic kind {kind!r}")


def run_scenario(
    scenario: dict, solver: Optional[str] = None
) -> Tuple[Horse, RunResult, int]:
    """Build, load, and run one scenario end to end."""
    horse, fabric = build_horse(scenario, solver=solver)
    count = build_traffic(scenario.get("traffic", {}), horse, fabric)
    try:
        result = horse.run(until=scenario.get("until"))
    finally:
        # A scenario is one run; release the wire listener (no-op inproc).
        horse.shutdown_wire()
    return horse, result, count


def reset_id_counters() -> None:
    """Rewind the process-global id counters to their import-time state.

    Sweep workers call this before building a job so ids (flow ids,
    flow-entry sequence numbers, packet ids) depend only on the job
    itself — never on what the process ran earlier or on fork
    inheritance — making job results identical whether the job runs
    serially, on any worker, or after a retry.
    """
    from ..flowsim.flow import reset_flow_ids
    from ..openflow.flowtable import reset_entry_seq
    from ..openflow.messages import reset_xids
    from ..pktsim.packet import reset_packet_ids

    reset_flow_ids()
    reset_entry_seq()
    reset_packet_ids()
    reset_xids()
