"""A crash-isolated multiprocessing worker pool for sweep jobs.

Each job attempt runs in its own child process, so a worker dying — a
segfault, an ``os._exit``, an OOM kill — marks that job's attempt
failed and never takes the sweep down.  The pool adds per-job wall
timeouts (hung jobs are terminated), bounded retry with exponential
backoff, and file-based result delivery: a child writes its result JSON
atomically, so the parent only trusts results whose process exited
cleanly *and* whose file exists.  Queues or pipes would be lost with
the child; files survive.

The pool is generic over the worker callable: the sweep runner passes
the scenario job worker, benchmarks pass measurement functions.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import SweepError

#: Parent poll period while waiting on children.
_POLL_S = 0.02

#: Grace period between terminate() and kill() for a timed-out child.
_TERM_GRACE_S = 2.0


def _invoke(
    worker: Callable[[Dict[str, Any]], dict],
    payload: Dict[str, Any],
    out_path: str,
) -> None:
    """Child-process entry: run the worker, write its result atomically."""
    try:
        result = worker(payload)
    except Exception:
        traceback.print_exc()
        os._exit(1)
    tmp = f"{out_path}.tmp.{os.getpid()}"
    with open(tmp, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, out_path)


@dataclass
class JobOutcome:
    """How one job ended after all its attempts."""

    index: int
    ok: bool
    attempts: int
    wall_s: float
    error: Optional[str] = None
    out_path: Optional[str] = None


def process_context() -> multiprocessing.context.BaseContext:
    """Fork where available (fast, test-friendly), spawn otherwise.

    Shared by the sweep pool and the shard runtime so every child
    process in the codebase starts the same way.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


_context = process_context


def run_jobs(
    payloads: List[Dict[str, Any]],
    worker: Callable[[Dict[str, Any]], dict],
    out_paths: List[str],
    *,
    workers: int = 1,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    backoff_s: float = 0.5,
    on_event: Optional[Callable[[str, int, int, str], None]] = None,
) -> List[JobOutcome]:
    """Run every payload through ``worker`` on a pool of child processes.

    Parameters
    ----------
    payloads / out_paths:
        Parallel lists: job inputs and where each result JSON lands.
        Each attempt receives ``dict(payload, attempt=n)`` (1-based).
    workers:
        Concurrent child processes.
    timeout_s:
        Per-attempt wall clock bound; a child exceeding it is
        terminated and the attempt counts as a crash.
    retries:
        Extra attempts after the first (``retries=2`` -> 3 attempts max).
    backoff_s:
        Base of the exponential retry delay
        (``backoff_s * 2**(attempt-1)``); 0 retries immediately.
    on_event:
        Progress hook ``(kind, index, attempt, detail)`` with kinds
        ``start``/``ok``/``crash``/``timeout``/``retry``/``failed``,
        called from the parent as things happen (manifest updates,
        CLI progress lines).

    Returns
    -------
    One :class:`JobOutcome` per payload, in payload order.  Job
    failures are reported, never raised — a dying worker must not kill
    the sweep.
    """
    if len(payloads) != len(out_paths):
        raise SweepError(
            f"{len(payloads)} payloads but {len(out_paths)} output paths"
        )
    if workers < 1:
        raise SweepError(f"need >= 1 worker, got {workers}")
    if retries < 0:
        raise SweepError(f"retries must be >= 0, got {retries}")
    ctx = _context()

    def emit(kind: str, index: int, attempt: int, detail: str = "") -> None:
        if on_event is not None:
            on_event(kind, index, attempt, detail)

    # (index, attempt, earliest monotonic launch time)
    queue: List[Tuple[int, int, float]] = [
        (index, 1, 0.0) for index in range(len(payloads))
    ]
    running: Dict[int, Tuple[Any, float, int]] = {}
    outcomes: Dict[int, JobOutcome] = {}
    started_at: Dict[int, float] = {}

    def finish(index: int, attempt: int, ok: bool, error: Optional[str]) -> None:
        wall = time.monotonic() - started_at[index]  # repro: noqa[DET001] - worker wall time; job results are id-reset per job
        outcomes[index] = JobOutcome(
            index=index,
            ok=ok,
            attempts=attempt,
            wall_s=wall,
            error=error,
            out_path=out_paths[index] if ok else None,
        )

    def handle_failure(index: int, attempt: int, kind: str, error: str) -> None:
        emit(kind, index, attempt, error)
        if attempt <= retries:
            delay = backoff_s * (2 ** (attempt - 1)) if backoff_s > 0 else 0.0
            queue.append((index, attempt + 1, time.monotonic() + delay))  # repro: noqa[DET001] - retry backoff is host scheduling, not sim state
            emit("retry", index, attempt + 1, f"in {delay:.2f}s")
        else:
            finish(index, attempt, ok=False, error=error)
            emit("failed", index, attempt, error)

    while queue or running:
        now = time.monotonic()  # repro: noqa[DET001] - retry backoff is host scheduling, not sim state
        progressed = False
        # Launch ready attempts into free slots, lowest index first.
        if len(running) < workers:
            queue.sort(key=lambda item: (item[2], item[0]))
            for item in list(queue):
                if len(running) >= workers:
                    break
                index, attempt, ready_at = item
                if ready_at > now:
                    continue
                queue.remove(item)
                started_at.setdefault(index, now)
                # Stale results from a crashed previous attempt must not
                # be mistaken for this attempt's output.
                if os.path.exists(out_paths[index]):
                    os.unlink(out_paths[index])
                process = ctx.Process(
                    target=_invoke,
                    args=(worker, dict(payloads[index], attempt=attempt),
                          out_paths[index]),
                    daemon=True,
                )
                process.start()
                running[index] = (process, now, attempt)
                emit("start", index, attempt)
                progressed = True
        # Reap finished and timed-out children.
        for index, (process, launched, attempt) in list(running.items()):
            if process.is_alive():
                if timeout_s is not None and now - launched > timeout_s:
                    process.terminate()
                    process.join(_TERM_GRACE_S)
                    if process.is_alive():
                        process.kill()
                        process.join()
                    del running[index]
                    handle_failure(
                        index, attempt, "timeout",
                        f"timed out after {timeout_s}s",
                    )
                    progressed = True
                continue
            process.join()
            del running[index]
            progressed = True
            if process.exitcode == 0 and os.path.exists(out_paths[index]):
                finish(index, attempt, ok=True, error=None)
                emit("ok", index, attempt)
            elif process.exitcode == 0:
                handle_failure(
                    index, attempt, "crash",
                    "worker exited cleanly without writing a result",
                )
            else:
                handle_failure(
                    index, attempt, "crash",
                    f"worker died with exit code {process.exitcode}",
                )
        if not progressed:
            time.sleep(_POLL_S)
    return [outcomes[index] for index in range(len(payloads))]
