"""Experiment runtime: checkpoint/restore and the parallel sweep runner.

The Horse evaluation plan replays a fabric "under multiple
configurations" — the unit of work is a *sweep* of scenarios, not one
run.  This package supplies the two pillars that make sweeps practical
at production scale:

* **Checkpoint/restore** (:mod:`.snapshot`, :mod:`.checkpoint`):
  serialize the complete simulation state — kernel clock and pending
  event set, RNG streams, topology state, flow/group/meter tables,
  active flows, solver state, statistics — to a versioned on-disk
  format.  ``Horse.checkpoint(path)`` / ``Horse.restore(path)``
  round-trip bitwise-deterministically: a restored run produces results
  identical to an uninterrupted one.
* **Sweep runner** (:mod:`.sweep`, :mod:`.pool`): expand a scenario
  template x parameter grid into jobs and execute them on a
  crash-isolated multiprocessing pool with per-job timeouts, bounded
  retry with exponential backoff, periodic checkpointing of long jobs,
  resumable manifests, and deterministic aggregation of per-job results
  into one report.

:mod:`.scenario` holds the scenario-document builders shared by the CLI
and the sweep workers.
"""

from .checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    load_checkpoint,
    read_checkpoint_header,
    save_checkpoint,
)
from .pool import JobOutcome, run_jobs
from .scenario import build_horse, build_traffic, reset_id_counters, run_scenario
from .snapshot import SNAPSHOT_VERSION, SimulationSnapshot
from .sweep import (
    SweepJob,
    SweepSpec,
    aggregate_report,
    expand_jobs,
    resume_sweep,
    run_sweep,
)

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "JobOutcome",
    "SNAPSHOT_VERSION",
    "SimulationSnapshot",
    "SweepJob",
    "SweepSpec",
    "aggregate_report",
    "build_horse",
    "build_traffic",
    "expand_jobs",
    "load_checkpoint",
    "read_checkpoint_header",
    "reset_id_counters",
    "resume_sweep",
    "run_jobs",
    "run_sweep",
    "save_checkpoint",
]
