"""The OpenFlow pipeline: multi-table lookup, groups, and meters.

:class:`OpenFlowPipeline` is attached to every :class:`~repro.net.node.Switch`.
Both engines drive the same pipeline — the flow-level engine walks it once
per flow (path setup / re-route), the packet-level baseline once per
packet — so a policy compiled to rules behaves identically at either
granularity, which is what makes the accuracy experiment (E3) meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from ..errors import OpenFlowError
from .action import (
    Action,
    ApplyActions,
    Drop,
    Flood,
    GotoTable,
    GroupAction,
    Instruction,
    MeterInstruction,
    Output,
    PORT_IN_PORT,
    PopVlan,
    PushVlan,
    SetField,
    ToController,
)
from .flowtable import FlowEntry, FlowTable
from .group import Group, GroupTable
from .headers import HeaderFields
from .match import Match
from .meter import MeterTable

if TYPE_CHECKING:  # pragma: no cover
    from ..net.node import Switch

#: Maximum nesting depth when groups reference groups.
_MAX_GROUP_DEPTH = 8


@dataclass
class PipelineResult:
    """The outcome of pushing one traffic aggregate through a pipeline.

    Attributes
    ----------
    out_ports:
        Resolved physical output port numbers (flood already expanded).
    dropped:
        True when an explicit Drop action fired.
    miss:
        True when no table entry matched (OF 1.3 default: drop).
    to_controller:
        True when a ToController action fired (packet-in).
    meter_ids:
        Meter ids traversed, in order; the engines apply their caps.
    matched_entries:
        Entries that matched, for counter accounting by the caller.
    group_hits:
        (group, bucket_index) pairs taken, for bucket accounting.
    headers:
        Possibly rewritten header fields after SetField actions.
    """

    out_ports: List[int] = field(default_factory=list)
    dropped: bool = False
    miss: bool = False
    to_controller: bool = False
    meter_ids: List[int] = field(default_factory=list)
    matched_entries: List[FlowEntry] = field(default_factory=list)
    group_hits: List[Tuple[Group, int]] = field(default_factory=list)
    headers: Optional[HeaderFields] = None

    @property
    def forwards(self) -> bool:
        """True when traffic actually leaves on at least one port."""
        return bool(self.out_ports) and not self.dropped


class OpenFlowPipeline:
    """Flow tables + group table + meter table for one switch."""

    def __init__(
        self,
        switch: "Switch",
        num_tables: int = 2,
        table_size: Optional[int] = None,
    ) -> None:
        if num_tables < 1:
            raise OpenFlowError(f"need >= 1 table, got {num_tables}")
        self.switch = switch
        self.tables: List[FlowTable] = [
            FlowTable(table_id=i, max_size=table_size) for i in range(num_tables)
        ]
        self.groups = GroupTable()
        self.meters = MeterTable()

    # ------------------------------------------------------------------
    # Lookup path
    # ------------------------------------------------------------------
    def process(self, headers: HeaderFields, in_port: int) -> PipelineResult:
        """Run the full multi-table pipeline for one traffic aggregate."""
        result = PipelineResult(headers=headers)
        table_id: Optional[int] = 0
        current = headers
        while table_id is not None:
            if table_id >= len(self.tables):
                raise OpenFlowError(
                    f"goto_table {table_id} beyond pipeline of "
                    f"{len(self.tables)} tables on {self.switch.name}"
                )
            entry = self.tables[table_id].lookup(current, in_port)
            if entry is None:
                result.miss = not result.matched_entries
                break
            result.matched_entries.append(entry)
            next_table: Optional[int] = None
            for instruction in entry.instructions:
                if isinstance(instruction, MeterInstruction):
                    # Validate the reference eagerly; engines apply the cap.
                    self.meters.get(instruction.meter_id)
                    result.meter_ids.append(instruction.meter_id)
                elif isinstance(instruction, ApplyActions):
                    current = self._apply_actions(
                        instruction.actions, current, in_port, result, depth=0
                    )
                elif isinstance(instruction, GotoTable):
                    if instruction.table_id <= table_id:
                        raise OpenFlowError(
                            f"goto_table must move forward: "
                            f"{table_id} -> {instruction.table_id}"
                        )
                    next_table = instruction.table_id
                else:  # pragma: no cover - defensive
                    raise OpenFlowError(f"unknown instruction {instruction!r}")
            table_id = next_table
        result.headers = current
        if result.dropped:
            result.out_ports = []
        return result

    def _apply_actions(
        self,
        actions: Tuple[Action, ...],
        headers: HeaderFields,
        in_port: int,
        result: PipelineResult,
        depth: int,
    ) -> HeaderFields:
        if depth > _MAX_GROUP_DEPTH:
            raise OpenFlowError(
                f"group nesting deeper than {_MAX_GROUP_DEPTH} on {self.switch.name}"
            )
        for action in actions:
            if isinstance(action, Output):
                self._emit(action.port, in_port, result)
            elif isinstance(action, Flood):
                for number in self.flood_ports(in_port):
                    result.out_ports.append(number)
            elif isinstance(action, Drop):
                result.dropped = True
            elif isinstance(action, ToController):
                result.to_controller = True
            elif isinstance(action, (SetField, PushVlan, PopVlan)):
                headers = action.apply(headers)
            elif isinstance(action, GroupAction):
                group = self.groups.get(action.group_id)
                chosen = group.select_buckets(headers, port_up=self._port_up)
                for index, bucket in chosen:
                    result.group_hits.append((group, index))
                    headers = self._apply_actions(
                        bucket.actions, headers, in_port, result, depth + 1
                    )
            else:  # pragma: no cover - defensive
                raise OpenFlowError(f"unknown action {action!r}")
        return headers

    def _emit(self, port: int, in_port: int, result: PipelineResult) -> None:
        if port == PORT_IN_PORT:
            result.out_ports.append(in_port)
            return
        if port == in_port:
            # OpenFlow suppresses output to the ingress port unless the
            # reserved IN_PORT port is used explicitly.
            return
        result.out_ports.append(port)

    def flood_ports(self, in_port: int) -> List[int]:
        """Live egress ports a FLOOD from ``in_port`` replicates to
        (every up, connected port except the ingress), in port order.
        Engines use this to expand reserved port numbers in packet-outs.
        """
        return [
            number
            for number, port in sorted(self.switch.ports.items())
            if number != in_port and port.connected and port.up and port.link.up
        ]

    def _port_up(self, number: int) -> bool:
        port = self.switch.ports.get(number)
        return bool(port and port.up and port.connected and port.link.up)

    # ------------------------------------------------------------------
    # Table management helpers
    # ------------------------------------------------------------------
    def table(self, table_id: int = 0) -> FlowTable:
        if not 0 <= table_id < len(self.tables):
            raise OpenFlowError(
                f"no table {table_id} on {self.switch.name} "
                f"(pipeline has {len(self.tables)})"
            )
        return self.tables[table_id]

    def install(
        self,
        match: Match,
        instructions: Tuple[Instruction, ...],
        priority: int = 0,
        table_id: int = 0,
        idle_timeout: float = 0.0,
        hard_timeout: float = 0.0,
        cookie: int = 0,
        now: float = 0.0,
        check_overlap: bool = False,
    ) -> FlowEntry:
        """Convenience wrapper adding one entry to a table."""
        entry = FlowEntry(
            match=match,
            priority=priority,
            instructions=instructions,
            idle_timeout=idle_timeout,
            hard_timeout=hard_timeout,
            cookie=cookie,
            install_time=now,
        )
        return self.table(table_id).add(entry, check_overlap=check_overlap)

    def expire(self, now: float) -> List[Tuple[int, FlowEntry, str]]:
        """Expire timed-out entries in every table; returns
        (table_id, entry, reason) triples for FlowRemoved messages."""
        expired: List[Tuple[int, FlowEntry, str]] = []
        for table in self.tables:
            for entry, reason in table.expire(now):
                expired.append((table.table_id, entry, reason))
        return expired

    @property
    def total_entries(self) -> int:
        return sum(len(t) for t in self.tables)

    @property
    def version(self) -> int:
        """Monotonic pipeline generation: bumps whenever any flow table,
        the group table, or the meter table changes.  Routing caches key
        their entries on the versions of every pipeline they consulted,
        so a flow-mod/group-mod invalidates exactly the cached routes
        that crossed the modified switch."""
        return (
            sum(t.version for t in self.tables)
            + self.groups.version
            + self.meters.version
        )

    def clear(self) -> None:
        for table in self.tables:
            table.clear()
        self.groups.clear()
        self.meters.clear()

    def __repr__(self) -> str:
        return (
            f"<OpenFlowPipeline {self.switch.name} tables={len(self.tables)} "
            f"entries={self.total_entries} groups={len(self.groups)} "
            f"meters={len(self.meters)}>"
        )


def attach_pipeline(
    switch: "Switch", num_tables: int = 2, table_size: Optional[int] = None
) -> OpenFlowPipeline:
    """Create and attach a pipeline to a switch (idempotent per switch)."""
    if switch.pipeline is None:
        switch.pipeline = OpenFlowPipeline(
            switch, num_tables=num_tables, table_size=table_size
        )
    return switch.pipeline
