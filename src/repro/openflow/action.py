"""OpenFlow actions and instructions.

Actions transform or forward a traffic aggregate; instructions attach
actions (and table/meter hops) to a flow entry.  The set mirrors the
OpenFlow 1.3 constructs the Horse policies need: output, flood, drop,
send-to-controller, set-field, and group indirection, plus goto-table
and meter instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Tuple

from .headers import HeaderFields

#: Reserved "port numbers" mirroring OpenFlow reserved ports.
PORT_CONTROLLER = -1
PORT_FLOOD = -2
PORT_IN_PORT = -3
PORT_ALL = -4


class Action:
    """Base class for all actions (marker type)."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Output(Action):
    """Forward out a specific port number."""

    port: int

    def __repr__(self) -> str:
        return f"Output({self.port})"


@dataclass(frozen=True, slots=True)
class Flood(Action):
    """Forward out every up port except the ingress port."""

    def __repr__(self) -> str:
        return "Flood()"


@dataclass(frozen=True, slots=True)
class Drop(Action):
    """Explicitly discard the traffic (blackholing policies)."""

    def __repr__(self) -> str:
        return "Drop()"


@dataclass(frozen=True, slots=True)
class ToController(Action):
    """Punt to the controller as a packet-in (reactive policies)."""

    def __repr__(self) -> str:
        return "ToController()"


@dataclass(frozen=True, slots=True)
class SetField(Action):
    """Rewrite one header field before subsequent actions."""

    field_name: str
    value: Any

    ALLOWED_FIELDS = (
        "eth_src",
        "eth_dst",
        "eth_type",
        "vlan_vid",
        "ip_src",
        "ip_dst",
        "ip_proto",
        "tp_src",
        "tp_dst",
    )

    def __post_init__(self) -> None:
        if self.field_name not in self.ALLOWED_FIELDS:
            raise ValueError(f"unknown settable field: {self.field_name!r}")

    def apply(self, headers: HeaderFields) -> HeaderFields:
        return headers.with_fields(**{self.field_name: self.value})

    def __repr__(self) -> str:
        return f"SetField({self.field_name}={self.value})"


@dataclass(frozen=True, slots=True)
class GroupAction(Action):
    """Hand processing to a group table entry (ECMP/failover)."""

    group_id: int

    def __repr__(self) -> str:
        return f"Group({self.group_id})"


@dataclass(frozen=True, slots=True)
class PushVlan(Action):
    """Tag the traffic with a VLAN id (peering-LAN isolation)."""

    vlan_vid: int

    def __post_init__(self) -> None:
        if not 1 <= self.vlan_vid <= 4094:
            raise ValueError(f"VLAN id must be in 1..4094, got {self.vlan_vid}")

    def apply(self, headers: HeaderFields) -> HeaderFields:
        return headers.with_fields(vlan_vid=self.vlan_vid)

    def __repr__(self) -> str:
        return f"PushVlan({self.vlan_vid})"


@dataclass(frozen=True, slots=True)
class PopVlan(Action):
    """Strip the VLAN tag before delivery to an access port."""

    def apply(self, headers: HeaderFields) -> HeaderFields:
        return headers.with_fields(vlan_vid=None)

    def __repr__(self) -> str:
        return "PopVlan()"


# ----------------------------------------------------------------------
# Instructions (OpenFlow 1.3 style)
# ----------------------------------------------------------------------


class Instruction:
    """Base class for all instructions (marker type)."""

    __slots__ = ()


@dataclass(frozen=True)
class ApplyActions(Instruction):
    """Execute an action list immediately, in order."""

    actions: Tuple[Action, ...]

    def __init__(self, actions) -> None:
        object.__setattr__(self, "actions", tuple(actions))

    def __repr__(self) -> str:
        return f"ApplyActions({list(self.actions)})"


@dataclass(frozen=True, slots=True)
class GotoTable(Instruction):
    """Continue matching in a later table of the pipeline."""

    table_id: int

    def __post_init__(self) -> None:
        if self.table_id < 0:
            raise ValueError(f"table_id must be >= 0, got {self.table_id}")

    def __repr__(self) -> str:
        return f"GotoTable({self.table_id})"


@dataclass(frozen=True, slots=True)
class MeterInstruction(Instruction):
    """Subject the aggregate to a rate-limiting meter before actions."""

    meter_id: int

    def __repr__(self) -> str:
        return f"Meter({self.meter_id})"


def actions(*items: Action) -> ApplyActions:
    """Shorthand building an ApplyActions instruction from actions."""
    return ApplyActions(items)


def output(port: int) -> ApplyActions:
    """Shorthand for the single-output instruction list."""
    return ApplyActions((Output(port),))


def drop() -> ApplyActions:
    """Shorthand for the explicit-drop instruction list."""
    return ApplyActions((Drop(),))
