"""Group tables: ALL, SELECT, INDIRECT, and fast-failover groups.

Groups give policies a level of indirection over action lists — the
load-balancing policies hash flows across SELECT buckets (ECMP/WCMP),
and fast-failover groups switch to a live bucket when a watched port
goes down.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import GroupError
from .action import Action
from .headers import HeaderFields


class GroupType(Enum):
    """OpenFlow group types."""

    ALL = "all"
    SELECT = "select"
    INDIRECT = "indirect"
    FAST_FAILOVER = "ff"


@dataclass(frozen=True)
class Bucket:
    """One weighted action list inside a group.

    ``watch_port`` applies to fast-failover groups: the bucket is live
    only while that port is up.
    """

    actions: Tuple[Action, ...]
    weight: int = 1
    watch_port: Optional[int] = None

    def __init__(
        self,
        actions: Sequence[Action],
        weight: int = 1,
        watch_port: Optional[int] = None,
    ) -> None:
        if weight < 0:
            raise GroupError(f"bucket weight must be >= 0, got {weight}")
        object.__setattr__(self, "actions", tuple(actions))
        object.__setattr__(self, "weight", weight)
        object.__setattr__(self, "watch_port", watch_port)


def flow_hash(headers: HeaderFields) -> int:
    """A stable hash of the flow's header tuple.

    Uses CRC32 over the describe() rendering so the value is identical
    across processes and runs (Python's builtin ``hash`` is salted).
    """
    return zlib.crc32(headers.describe().encode())


class Group:
    """A group entry: a type plus its buckets."""

    def __init__(
        self, group_id: int, group_type: GroupType, buckets: Sequence[Bucket]
    ) -> None:
        if group_id < 0:
            raise GroupError(f"group_id must be >= 0, got {group_id}")
        if not buckets:
            raise GroupError(f"group {group_id} must have at least one bucket")
        if group_type is GroupType.INDIRECT and len(buckets) != 1:
            raise GroupError("INDIRECT groups must have exactly one bucket")
        if group_type is GroupType.SELECT and all(b.weight == 0 for b in buckets):
            raise GroupError("SELECT group needs at least one bucket with weight > 0")
        self.group_id = group_id
        self.group_type = group_type
        self.buckets: List[Bucket] = list(buckets)
        #: Per-bucket byte counters, indexed like ``buckets``.
        self.bucket_bytes: List[int] = [0] * len(buckets)
        self.ref_count = 0

    def select_buckets(
        self,
        headers: HeaderFields,
        port_up: Optional[Callable[[int], bool]] = None,
    ) -> List[Tuple[int, Bucket]]:
        """The (index, bucket) list to execute for this traffic.

        * ALL → every bucket.
        * SELECT → one bucket chosen by weighted flow hash.
        * INDIRECT → the single bucket.
        * FAST_FAILOVER → the first live bucket (watch_port up), or none.
        """
        if self.group_type is GroupType.ALL:
            return list(enumerate(self.buckets))
        if self.group_type is GroupType.INDIRECT:
            return [(0, self.buckets[0])]
        if self.group_type is GroupType.SELECT:
            index = self._weighted_choice(flow_hash(headers))
            return [(index, self.buckets[index])]
        # FAST_FAILOVER
        for i, bucket in enumerate(self.buckets):
            if bucket.watch_port is None:
                return [(i, bucket)]
            if port_up is None or port_up(bucket.watch_port):
                return [(i, bucket)]
        return []

    def _weighted_choice(self, hash_value: int) -> int:
        total = sum(b.weight for b in self.buckets)
        point = hash_value % total
        cumulative = 0
        for i, bucket in enumerate(self.buckets):
            cumulative += bucket.weight
            if point < cumulative:
                return i
        return len(self.buckets) - 1  # pragma: no cover - unreachable

    def account(self, bucket_index: int, byte_count: int) -> None:
        """Charge traffic to a bucket counter."""
        self.bucket_bytes[bucket_index] += byte_count

    def __repr__(self) -> str:
        return (
            f"<Group {self.group_id} {self.group_type.value} "
            f"buckets={len(self.buckets)}>"
        )


class GroupTable:
    """The per-switch registry of groups."""

    def __init__(self) -> None:
        self._groups: Dict[int, Group] = {}
        #: Monotonic generation counter, bumped on every mutation (used
        #: by routing caches to detect group-mod changes).
        self.version = 0

    def add(
        self, group_id: int, group_type: GroupType, buckets: Sequence[Bucket]
    ) -> Group:
        if group_id in self._groups:
            raise GroupError(f"group {group_id} already exists")
        group = Group(group_id, group_type, buckets)
        self._groups[group_id] = group
        self.version += 1
        return group

    def modify(
        self, group_id: int, group_type: GroupType, buckets: Sequence[Bucket]
    ) -> Group:
        if group_id not in self._groups:
            raise GroupError(f"cannot modify unknown group {group_id}")
        group = Group(group_id, group_type, buckets)
        group.ref_count = self._groups[group_id].ref_count
        self._groups[group_id] = group
        self.version += 1
        return group

    def delete(self, group_id: int) -> Group:
        try:
            group = self._groups.pop(group_id)
        except KeyError:
            raise GroupError(f"cannot delete unknown group {group_id}") from None
        self.version += 1
        return group

    def get(self, group_id: int) -> Group:
        try:
            return self._groups[group_id]
        except KeyError:
            raise GroupError(f"unknown group {group_id}") from None

    def __contains__(self, group_id: int) -> bool:
        return group_id in self._groups

    def __len__(self) -> int:
        return len(self._groups)

    @property
    def groups(self) -> List[Group]:
        return list(self._groups.values())

    def clear(self) -> None:
        if self._groups:
            self.version += 1
        self._groups.clear()
