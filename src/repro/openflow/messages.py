"""Control-plane message types.

The poster removes real OpenFlow connections; these dataclasses are the
in-memory equivalents of the wire messages, carried over the direct
control channel (:mod:`repro.control.channel`).  Southbound messages go
controller → switch, northbound messages switch → controller.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

from .action import Instruction
from .group import Bucket, GroupType
from .headers import HeaderFields
from .match import Match
from .meter import DropBand

_XID = itertools.count(1)

#: Highest xid handed out so far (0 = none): the checkpoint watermark,
#: so a restored run in a fresh process never reuses transaction ids.
_XID_LAST = 0


def next_xid() -> int:
    """Allocate a transaction id (monotone per process)."""
    global _XID_LAST
    _XID_LAST = next(_XID)
    return _XID_LAST


def xid_watermark() -> int:
    """Highest xid allocated so far (checkpoint capture reads this)."""
    return _XID_LAST


def reset_xids() -> None:
    """Rewind the process-global xid counter to its import-time state
    (sweep workers isolate jobs this way)."""
    global _XID, _XID_LAST
    _XID = itertools.count(1)
    _XID_LAST = 0


def advance_xids(minimum: int) -> None:
    """Ensure future xids are > ``minimum`` (checkpoint restore advances
    past the snapshot's watermark)."""
    global _XID, _XID_LAST
    start = max(_XID_LAST, minimum) + 1
    _XID = itertools.count(start)
    _XID_LAST = start - 1


@dataclass
class Message:
    """Base of every control message; carries datapath id and xid."""

    dpid: int
    xid: int = field(default_factory=next_xid)


# ----------------------------------------------------------------------
# Session (both directions) — used by the wire gateway handshake
# ----------------------------------------------------------------------


@dataclass
class Hello(Message):
    """Version negotiation; first message on a wire connection."""

    version: int = 4  # OpenFlow 1.3 wire version


@dataclass
class EchoRequest(Message):
    """Connection liveness probe; the payload is echoed back."""

    payload: bytes = b""


@dataclass
class EchoReply(Message):
    """Answers an EchoRequest, echoing its payload."""

    payload: bytes = b""


@dataclass
class FeaturesRequest(Message):
    """Ask a datapath for its identity and capabilities."""


@dataclass
class FeaturesReply(Message):
    """Datapath identity: ``dpid`` is the datapath id.

    ``reserved`` carries the datapath count of the simulation (a repro
    profile extension so the built-in client knows how many connections
    to open) and ``auxiliary_id`` is 1 on a connection re-established
    after checkpoint restore (the controller should skip proactive
    installs — the rules are part of the restored snapshot).
    """

    n_buffers: int = 0
    n_tables: int = 1
    auxiliary_id: int = 0
    capabilities: int = 0
    reserved: int = 0


# ----------------------------------------------------------------------
# Southbound (controller -> switch)
# ----------------------------------------------------------------------


class FlowModCommand(Enum):
    ADD = "add"
    MODIFY = "modify"
    MODIFY_STRICT = "modify_strict"
    DELETE = "delete"
    DELETE_STRICT = "delete_strict"


@dataclass
class FlowMod(Message):
    """Install/modify/delete flow entries on one switch table."""

    command: FlowModCommand = FlowModCommand.ADD
    table_id: int = 0
    match: Match = field(default_factory=Match)
    priority: int = 0
    instructions: Tuple[Instruction, ...] = ()
    idle_timeout: float = 0.0
    hard_timeout: float = 0.0
    cookie: int = 0
    check_overlap: bool = False

    def __post_init__(self) -> None:
        self.instructions = tuple(self.instructions)


class GroupModCommand(Enum):
    ADD = "add"
    MODIFY = "modify"
    DELETE = "delete"


@dataclass
class GroupMod(Message):
    """Install/modify/delete a group."""

    command: GroupModCommand = GroupModCommand.ADD
    group_id: int = 0
    group_type: GroupType = GroupType.ALL
    buckets: Tuple[Bucket, ...] = ()

    def __post_init__(self) -> None:
        self.buckets = tuple(self.buckets)


class MeterModCommand(Enum):
    ADD = "add"
    MODIFY = "modify"
    DELETE = "delete"


@dataclass
class MeterMod(Message):
    """Install/modify/delete a meter."""

    command: MeterModCommand = MeterModCommand.ADD
    meter_id: int = 0
    bands: Tuple[DropBand, ...] = ()

    def __post_init__(self) -> None:
        self.bands = tuple(self.bands)


@dataclass
class PacketOut(Message):
    """Inject traffic at a switch (used to answer packet-ins)."""

    in_port: int = 0
    headers: Optional[HeaderFields] = None
    out_ports: Tuple[int, ...] = ()
    #: Correlates a reactive packet-out with the packet-in it answers
    #: (the wire gateway sets it to the packet-in's xid); None for
    #: unsolicited injections.
    buffer_id: Optional[int] = None

    def __post_init__(self) -> None:
        self.out_ports = tuple(self.out_ports)


@dataclass
class PortStatsRequest(Message):
    """Ask for port counters; ``port_no`` None means every port."""

    port_no: Optional[int] = None


@dataclass
class FlowStatsRequest(Message):
    """Ask for flow entry counters filtered by table/match/cookie."""

    table_id: Optional[int] = None
    match: Optional[Match] = None
    cookie: Optional[int] = None


@dataclass
class TableStatsRequest(Message):
    """Ask for per-table lookup/match counters."""


@dataclass
class BarrierRequest(Message):
    """Fence: the switch replies after all prior messages are applied."""


# ----------------------------------------------------------------------
# Northbound (switch -> controller)
# ----------------------------------------------------------------------


class PacketInReason(Enum):
    NO_MATCH = "no_match"
    ACTION = "action"


@dataclass
class PacketIn(Message):
    """A flow aggregate punted to the controller.

    ``rate_bps``/``size_bytes`` carry the flow-level context that a real
    packet-in would lack — this is Horse's abstraction: the controller
    reasons about flows, not packets.
    """

    in_port: int = 0
    reason: PacketInReason = PacketInReason.NO_MATCH
    headers: Optional[HeaderFields] = None
    rate_bps: float = 0.0
    size_bytes: int = 0
    flow_id: Optional[int] = None


class FlowRemovedReason(Enum):
    IDLE_TIMEOUT = "idle"
    HARD_TIMEOUT = "hard"
    DELETE = "delete"


@dataclass
class FlowRemoved(Message):
    """A flow entry expired or was deleted."""

    table_id: int = 0
    match: Match = field(default_factory=Match)
    priority: int = 0
    reason: FlowRemovedReason = FlowRemovedReason.IDLE_TIMEOUT
    cookie: int = 0
    duration_s: float = 0.0
    packet_count: int = 0
    byte_count: int = 0


class PortStatusReason(Enum):
    ADD = "add"
    DELETE = "delete"
    MODIFY = "modify"


@dataclass
class PortStatus(Message):
    """A port (or its link) changed state."""

    port_no: int = 0
    reason: PortStatusReason = PortStatusReason.MODIFY
    link_up: bool = True


@dataclass
class PortStatsReply(Message):
    """Port counters; one dict per port (see Port.stats())."""

    stats: List[dict] = field(default_factory=list)


@dataclass
class FlowStatsReply(Message):
    """Flow entry counters; one dict per matching entry."""

    stats: List[dict] = field(default_factory=list)


@dataclass
class TableStatsReply(Message):
    """Per-table counters; one dict per table (see FlowTable.stats())."""

    stats: List[dict] = field(default_factory=list)


@dataclass
class BarrierReply(Message):
    """Acknowledges a BarrierRequest."""


@dataclass
class ErrorMsg(Message):
    """The switch rejected a southbound message."""

    error_type: str = "unknown"
    detail: str = ""
    failed_xid: int = 0
