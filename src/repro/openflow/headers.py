"""Packet-header field tuples.

The poster defines a data flow as "an aggregate of packets with equal
values of the header fields".  :class:`HeaderFields` is that equal-value
tuple: an immutable, hashable record shared by the flow-level engine
(one per flow) and the packet-level baseline (one per packet).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..net.address import IPv4Address, MacAddress


class EthType:
    """EtherType constants used by match fields."""

    IPV4 = 0x0800
    ARP = 0x0806
    VLAN = 0x8100
    IPV6 = 0x86DD


class IpProto:
    """IP protocol numbers used by match fields."""

    ICMP = 1
    TCP = 6
    UDP = 17


#: Well-known transport ports used by application-based peering policies.
class AppPort:
    HTTP = 80
    HTTPS = 443
    DNS = 53
    SSH = 22
    RTMP = 1935


@dataclass(frozen=True, slots=True)
class HeaderFields:
    """The header-field tuple identifying a flow aggregate.

    All fields are optional: a pure L2 flow sets only the Ethernet
    fields, an L4 flow sets the whole 5-tuple.  Instances are frozen and
    hashable so they can key flow tables, statistics maps, and caches.
    """

    eth_src: Optional[MacAddress] = None
    eth_dst: Optional[MacAddress] = None
    eth_type: Optional[int] = None
    vlan_vid: Optional[int] = None
    ip_src: Optional[IPv4Address] = None
    ip_dst: Optional[IPv4Address] = None
    ip_proto: Optional[int] = None
    tp_src: Optional[int] = None
    tp_dst: Optional[int] = None

    def with_fields(self, **changes) -> "HeaderFields":
        """A copy with some fields rewritten (set-field actions)."""
        return replace(self, **changes)

    def five_tuple(self) -> tuple:
        """The classic (ip_src, ip_dst, proto, tp_src, tp_dst) tuple."""
        return (self.ip_src, self.ip_dst, self.ip_proto, self.tp_src, self.tp_dst)

    def describe(self) -> str:
        """A compact human-readable rendering of the set fields."""
        parts = []
        for field in (
            "eth_src",
            "eth_dst",
            "eth_type",
            "vlan_vid",
            "ip_src",
            "ip_dst",
            "ip_proto",
            "tp_src",
            "tp_dst",
        ):
            value = getattr(self, field)
            if value is not None:
                if field == "eth_type":
                    parts.append(f"{field}=0x{value:04x}")
                else:
                    parts.append(f"{field}={value}")
        return " ".join(parts) if parts else "(any)"


def tcp_flow(
    ip_src: IPv4Address,
    ip_dst: IPv4Address,
    tp_src: int,
    tp_dst: int,
    eth_src: Optional[MacAddress] = None,
    eth_dst: Optional[MacAddress] = None,
) -> HeaderFields:
    """Convenience constructor for a TCP 5-tuple header set."""
    return HeaderFields(
        eth_src=eth_src,
        eth_dst=eth_dst,
        eth_type=EthType.IPV4,
        ip_src=ip_src,
        ip_dst=ip_dst,
        ip_proto=IpProto.TCP,
        tp_src=tp_src,
        tp_dst=tp_dst,
    )


def udp_flow(
    ip_src: IPv4Address,
    ip_dst: IPv4Address,
    tp_src: int,
    tp_dst: int,
    eth_src: Optional[MacAddress] = None,
    eth_dst: Optional[MacAddress] = None,
) -> HeaderFields:
    """Convenience constructor for a UDP 5-tuple header set."""
    return HeaderFields(
        eth_src=eth_src,
        eth_dst=eth_dst,
        eth_type=EthType.IPV4,
        ip_src=ip_src,
        ip_dst=ip_dst,
        ip_proto=IpProto.UDP,
        tp_src=tp_src,
        tp_dst=tp_dst,
    )
