"""Meters: rate-limiting with drop bands.

A meter caps the rate of all traffic directed through it.  The
flow-level engine uses :meth:`Meter.cap_rate` — a fluid interpretation
where the meter clamps the aggregate's offered rate.  The packet-level
baseline uses :meth:`Meter.admit_packet` — a token bucket that drops
packets beyond the configured rate, which is how hardware meters behave.
Both views share one configuration, so the two engines are directly
comparable (experiment E3/E4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..errors import MeterError


@dataclass(frozen=True, slots=True)
class DropBand:
    """Drop traffic exceeding ``rate_bps`` (with ``burst_bits`` slack)."""

    rate_bps: float
    burst_bits: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise MeterError(f"band rate must be > 0, got {self.rate_bps}")
        if self.burst_bits < 0:
            raise MeterError(f"burst must be >= 0, got {self.burst_bits}")


class Meter:
    """One meter instance: the lowest-rate drop band is the binding cap."""

    def __init__(self, meter_id: int, bands: Sequence[DropBand]) -> None:
        if meter_id < 0:
            raise MeterError(f"meter_id must be >= 0, got {meter_id}")
        if not bands:
            raise MeterError(f"meter {meter_id} must have at least one band")
        self.meter_id = meter_id
        self.bands: List[DropBand] = sorted(bands, key=lambda b: b.rate_bps)
        # Token bucket state for the packet-level view.
        self._tokens_bits = self.burst_bits or self.rate_bps * 0.01
        self._bucket_cap = self._tokens_bits
        self._last_refill = 0.0
        #: Cumulative accounting.
        self.in_bytes = 0
        self.dropped_bytes = 0
        self.dropped_packets = 0

    @property
    def rate_bps(self) -> float:
        """The binding (lowest) band rate."""
        return self.bands[0].rate_bps

    @property
    def burst_bits(self) -> float:
        return self.bands[0].burst_bits

    # ------------------------------------------------------------------
    # Flow-level (fluid) view
    # ------------------------------------------------------------------
    def cap_rate(self, offered_bps: float) -> float:
        """Clamp an aggregate's offered rate to the meter rate."""
        if offered_bps < 0:
            raise MeterError(f"offered rate must be >= 0, got {offered_bps}")
        return min(offered_bps, self.rate_bps)

    def account_fluid(self, offered_bps: float, duration_s: float) -> None:
        """Record fluid-model drops over an interval for statistics."""
        allowed = self.cap_rate(offered_bps)
        self.in_bytes += int(offered_bps * duration_s / 8)
        self.dropped_bytes += int(max(0.0, offered_bps - allowed) * duration_s / 8)

    # ------------------------------------------------------------------
    # Packet-level (token bucket) view
    # ------------------------------------------------------------------
    def admit_packet(self, size_bytes: int, now: float) -> bool:
        """Token-bucket admission for one packet at time ``now``."""
        if now < self._last_refill:
            raise MeterError(
                f"meter {self.meter_id} time went backwards: "
                f"{now} < {self._last_refill}"
            )
        elapsed = now - self._last_refill
        self._tokens_bits = min(
            self._bucket_cap, self._tokens_bits + elapsed * self.rate_bps
        )
        self._last_refill = now
        size_bits = size_bytes * 8
        self.in_bytes += size_bytes
        if size_bits <= self._tokens_bits:
            self._tokens_bits -= size_bits
            return True
        self.dropped_bytes += size_bytes
        self.dropped_packets += 1
        return False

    def reset_bucket(self, now: float = 0.0) -> None:
        """Refill the token bucket (e.g. on simulation reset)."""
        self._tokens_bits = self._bucket_cap
        self._last_refill = now

    def stats(self) -> dict:
        return {
            "meter_id": self.meter_id,
            "rate_bps": self.rate_bps,
            "in_bytes": self.in_bytes,
            "dropped_bytes": self.dropped_bytes,
            "dropped_packets": self.dropped_packets,
        }

    def __repr__(self) -> str:
        return f"<Meter {self.meter_id} rate={self.rate_bps / 1e6:.3g}Mbps>"


class MeterTable:
    """The per-switch registry of meters."""

    def __init__(self) -> None:
        self._meters: Dict[int, Meter] = {}
        #: Monotonic generation counter, bumped on every mutation (used
        #: by routing caches to detect meter-mod changes).
        self.version = 0

    def add(self, meter_id: int, bands: Sequence[DropBand]) -> Meter:
        if meter_id in self._meters:
            raise MeterError(f"meter {meter_id} already exists")
        meter = Meter(meter_id, bands)
        self._meters[meter_id] = meter
        self.version += 1
        return meter

    def modify(self, meter_id: int, bands: Sequence[DropBand]) -> Meter:
        if meter_id not in self._meters:
            raise MeterError(f"cannot modify unknown meter {meter_id}")
        meter = Meter(meter_id, bands)
        self._meters[meter_id] = meter
        self.version += 1
        return meter

    def delete(self, meter_id: int) -> Meter:
        try:
            meter = self._meters.pop(meter_id)
        except KeyError:
            raise MeterError(f"cannot delete unknown meter {meter_id}") from None
        self.version += 1
        return meter

    def get(self, meter_id: int) -> Meter:
        try:
            return self._meters[meter_id]
        except KeyError:
            raise MeterError(f"unknown meter {meter_id}") from None

    def __contains__(self, meter_id: int) -> bool:
        return meter_id in self._meters

    def __len__(self) -> int:
        return len(self._meters)

    @property
    def meters(self) -> List[Meter]:
        return list(self._meters.values())

    def clear(self) -> None:
        if self._meters:
            self.version += 1
        self._meters.clear()
