"""OpenFlow match fields with wildcards and IPv4 prefixes.

A :class:`Match` tests a :class:`~repro.openflow.headers.HeaderFields`
tuple plus the ingress port.  Unset fields are wildcards.  IPv4 source
and destination accept either exact addresses or :class:`IPv4Network`
prefixes.  Matches also support a partial order (:meth:`subsumes`) used
by rule deletion with strict/loose semantics and by the policy
validator's conflict detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dc_fields
from typing import Optional, Union

from ..net.address import IPv4Address, IPv4Network, MacAddress
from .headers import HeaderFields

IpMatch = Union[IPv4Address, IPv4Network]


def _ip_field_matches(pattern: Optional[IpMatch], value: Optional[IPv4Address]) -> bool:
    if pattern is None:
        return True
    if value is None:
        return False
    if isinstance(pattern, IPv4Network):
        return pattern.contains(value)
    return pattern == value


def _ip_field_subsumes(outer: Optional[IpMatch], inner: Optional[IpMatch]) -> bool:
    """True when every address accepted by ``inner`` is accepted by ``outer``."""
    if outer is None:
        return True
    if inner is None:
        return False
    if isinstance(outer, IPv4Address):
        if isinstance(inner, IPv4Address):
            return outer == inner
        return inner.prefix_len == 32 and outer == inner.network
    # outer is a network
    if isinstance(inner, IPv4Address):
        return outer.contains(inner)
    return outer.prefix_len <= inner.prefix_len and outer.contains(inner.network)


def _ip_field_overlaps(a: Optional[IpMatch], b: Optional[IpMatch]) -> bool:
    """True when some address is accepted by both patterns."""
    if a is None or b is None:
        return True
    return _ip_field_subsumes(a, b) or _ip_field_subsumes(b, a)


@dataclass(frozen=True)
class Match:
    """A wildcard-capable predicate over header fields and ingress port.

    Examples
    --------
    >>> from repro.net import IPv4Address, IPv4Network
    >>> m = Match(ip_dst=IPv4Network("10.0.0.0/8"), tp_dst=80)
    >>> from repro.openflow.headers import HeaderFields, EthType, IpProto
    >>> hdr = HeaderFields(eth_type=EthType.IPV4, ip_dst=IPv4Address("10.1.2.3"),
    ...                    ip_proto=IpProto.TCP, tp_dst=80)
    >>> m.matches(hdr)
    True
    """

    in_port: Optional[int] = None
    eth_src: Optional[MacAddress] = None
    eth_dst: Optional[MacAddress] = None
    eth_type: Optional[int] = None
    vlan_vid: Optional[int] = None
    ip_src: Optional[IpMatch] = None
    ip_dst: Optional[IpMatch] = None
    ip_proto: Optional[int] = None
    tp_src: Optional[int] = None
    tp_dst: Optional[int] = None

    _EXACT_FIELDS = (
        "eth_src",
        "eth_dst",
        "eth_type",
        "vlan_vid",
        "ip_proto",
        "tp_src",
        "tp_dst",
    )

    def matches(self, headers: HeaderFields, in_port: Optional[int] = None) -> bool:
        """Test header fields (and optionally the ingress port)."""
        if self.in_port is not None and self.in_port != in_port:
            return False
        for name in self._EXACT_FIELDS:
            pattern = getattr(self, name)
            if pattern is not None and pattern != getattr(headers, name):
                return False
        if not _ip_field_matches(self.ip_src, headers.ip_src):
            return False
        if not _ip_field_matches(self.ip_dst, headers.ip_dst):
            return False
        return True

    def subsumes(self, other: "Match") -> bool:
        """True when every header set matched by ``other`` is matched by
        this match (this is a superset pattern)."""
        if self.in_port is not None and self.in_port != other.in_port:
            return False
        for name in self._EXACT_FIELDS:
            mine = getattr(self, name)
            if mine is not None and mine != getattr(other, name):
                return False
        return _ip_field_subsumes(self.ip_src, other.ip_src) and _ip_field_subsumes(
            self.ip_dst, other.ip_dst
        )

    def overlaps(self, other: "Match") -> bool:
        """True when some header set is matched by both matches.

        Conservative and exact for this field model: exact-match fields
        overlap iff equal-or-wildcard; prefix fields via prefix overlap.
        """
        if (
            self.in_port is not None
            and other.in_port is not None
            and self.in_port != other.in_port
        ):
            return False
        for name in self._EXACT_FIELDS:
            mine = getattr(self, name)
            theirs = getattr(other, name)
            if mine is not None and theirs is not None and mine != theirs:
                return False
        return _ip_field_overlaps(self.ip_src, other.ip_src) and _ip_field_overlaps(
            self.ip_dst, other.ip_dst
        )

    @property
    def wildcard_count(self) -> int:
        """Number of unset fields; higher means a coarser match."""
        return sum(1 for f in dc_fields(self) if getattr(self, f.name) is None)

    @property
    def is_wildcard_all(self) -> bool:
        return all(getattr(self, f.name) is None for f in dc_fields(self))

    def describe(self) -> str:
        """Compact human-readable rendering of set fields."""
        parts = []
        for f in dc_fields(self):
            value = getattr(self, f.name)
            if value is not None:
                if f.name == "eth_type":
                    parts.append(f"{f.name}=0x{value:04x}")
                else:
                    parts.append(f"{f.name}={value}")
        return " ".join(parts) if parts else "(match-all)"

    def __repr__(self) -> str:
        return f"Match({self.describe()})"


def match_all() -> Match:
    """The all-wildcard match (lowest-priority table-miss rules)."""
    return Match()


def exact_match_for(headers: HeaderFields, in_port: Optional[int] = None) -> Match:
    """Build the exact match covering precisely one header tuple.

    Used by reactive apps installing per-flow microflow rules.
    """
    return Match(
        in_port=in_port,
        eth_src=headers.eth_src,
        eth_dst=headers.eth_dst,
        eth_type=headers.eth_type,
        vlan_vid=headers.vlan_vid,
        ip_src=headers.ip_src,
        ip_dst=headers.ip_dst,
        ip_proto=headers.ip_proto,
        tp_src=headers.tp_src,
        tp_dst=headers.tp_dst,
    )
