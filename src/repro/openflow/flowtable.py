"""Priority flow tables with timeouts and counters.

Each :class:`FlowTable` holds :class:`FlowEntry` rules ordered by
priority.  Lookup returns the highest-priority matching entry, updating
its counters and idle-timeout clock.  Tables enforce an optional size
cap and support OpenFlow add/modify/delete semantics including overlap
checking and strict/loose deletion.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..errors import TableFullError
from .action import Instruction
from .headers import HeaderFields
from .match import Match

_ENTRY_SEQ = itertools.count()


def reset_entry_seq() -> None:
    """Rewind the process-global entry-sequence counter to its
    import-time state (sweep workers isolate jobs this way)."""
    global _ENTRY_SEQ
    _ENTRY_SEQ = itertools.count()


def advance_entry_seq(minimum: int) -> None:
    """Ensure future entry sequence numbers are > ``minimum``
    (checkpoint restore advances past the snapshot's watermark)."""
    global _ENTRY_SEQ
    _ENTRY_SEQ = itertools.count(max(next(_ENTRY_SEQ), minimum + 1))


@dataclass
class FlowEntry:
    """One rule: a match, a priority, and instructions, plus counters.

    Attributes
    ----------
    idle_timeout:
        Seconds of no traffic after which the entry expires (0 = never).
    hard_timeout:
        Seconds after installation at which the entry expires (0 = never).
    cookie:
        Opaque controller tag; policies stamp their rules with a cookie so
        they can bulk-delete or attribute counters.
    """

    match: Match
    priority: int = 0
    instructions: Tuple[Instruction, ...] = ()
    idle_timeout: float = 0.0
    hard_timeout: float = 0.0
    cookie: int = 0
    install_time: float = 0.0
    last_used: float = 0.0
    packet_count: int = 0
    byte_count: int = 0
    _seq: int = field(default_factory=lambda: next(_ENTRY_SEQ))

    def __post_init__(self) -> None:
        self.instructions = tuple(self.instructions)
        if self.idle_timeout < 0 or self.hard_timeout < 0:
            raise ValueError("timeouts must be >= 0")
        self.last_used = self.install_time

    def account(self, byte_count: int, packet_count: int = 1, now: float = 0.0) -> None:
        """Charge traffic against this entry's counters."""
        self.packet_count += packet_count
        self.byte_count += byte_count
        if now > self.last_used:
            self.last_used = now

    def expired(self, now: float) -> Optional[str]:
        """Return 'idle'/'hard' if the entry has timed out, else None."""
        if self.hard_timeout > 0 and now >= self.install_time + self.hard_timeout:
            return "hard"
        if self.idle_timeout > 0 and now >= self.last_used + self.idle_timeout:
            return "idle"
        return None

    @property
    def seq(self) -> int:
        """Process-global insertion sequence number (tie-break order)."""
        return self._seq

    @property
    def sort_key(self) -> Tuple[int, int]:
        """Descending priority, then insertion order."""
        return (-self.priority, self._seq)

    def __repr__(self) -> str:
        return (
            f"<FlowEntry prio={self.priority} {self.match.describe()} "
            f"instrs={list(self.instructions)}>"
        )


class FlowTable:
    """A single numbered table of priority-ordered flow entries."""

    def __init__(self, table_id: int = 0, max_size: Optional[int] = None) -> None:
        if table_id < 0:
            raise ValueError(f"table_id must be >= 0, got {table_id}")
        if max_size is not None and max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self.table_id = table_id
        self.max_size = max_size
        self._entries: List[FlowEntry] = []
        #: Cumulative lookup statistics (OpenFlow table-stats).
        self.lookup_count = 0
        self.matched_count = 0
        #: Monotonic generation counter, bumped on every mutation that
        #: can change lookup results.  Caches keyed on a table's version
        #: stay valid exactly as long as its rule set is unchanged.
        self.version = 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(
        self, headers: HeaderFields, in_port: Optional[int] = None
    ) -> Optional[FlowEntry]:
        """Highest-priority entry matching the headers, or None (miss).

        Does not touch per-entry counters; the pipeline accounts traffic
        explicitly, because a flow-level "lookup" may represent many
        packets.
        """
        self.lookup_count += 1
        for entry in self._entries:
            if entry.match.matches(headers, in_port):
                self.matched_count += 1
                return entry
        return None

    # ------------------------------------------------------------------
    # Mutation (FlowMod semantics)
    # ------------------------------------------------------------------
    def add(self, entry: FlowEntry, check_overlap: bool = False) -> FlowEntry:
        """Install an entry.

        An entry with an identical match and priority replaces the old
        one (OpenFlow ADD semantics, counters reset).  With
        ``check_overlap``, raises on any overlapping same-priority entry.
        """
        if check_overlap:
            for existing in self._entries:
                if (
                    existing.priority == entry.priority
                    and existing.match != entry.match
                    and existing.match.overlaps(entry.match)
                ):
                    raise TableFullError(
                        f"overlap check failed: {entry.match.describe()} overlaps "
                        f"{existing.match.describe()} at priority {entry.priority}"
                    )
        replaced = False
        for i, existing in enumerate(self._entries):
            if existing.priority == entry.priority and existing.match == entry.match:
                self._entries[i] = entry
                replaced = True
                break
        if not replaced:
            if self.max_size is not None and len(self._entries) >= self.max_size:
                raise TableFullError(
                    f"table {self.table_id} full ({self.max_size} entries)"
                )
            self._entries.append(entry)
        self._entries.sort(key=lambda e: e.sort_key)
        self.version += 1
        return entry

    def modify(
        self,
        match: Match,
        instructions: Sequence[Instruction],
        priority: Optional[int] = None,
        strict: bool = False,
    ) -> List[FlowEntry]:
        """Rewrite instructions of matching entries (counters preserved).

        Strict mode requires an exact match+priority equality; loose mode
        touches every entry whose match is subsumed by ``match``.
        """
        touched = []
        for entry in self._entries:
            if self._selected(entry, match, priority, strict):
                entry.instructions = tuple(instructions)
                touched.append(entry)
        if touched:
            self.version += 1
        return touched

    def delete(
        self,
        match: Match,
        priority: Optional[int] = None,
        strict: bool = False,
        cookie: Optional[int] = None,
    ) -> List[FlowEntry]:
        """Remove matching entries and return them (for FlowRemoved)."""
        removed = []
        kept = []
        for entry in self._entries:
            if cookie is not None and entry.cookie != cookie:
                kept.append(entry)
            elif self._selected(entry, match, priority, strict):
                removed.append(entry)
            else:
                kept.append(entry)
        self._entries = kept
        if removed:
            self.version += 1
        return removed

    @staticmethod
    def _selected(
        entry: FlowEntry, match: Match, priority: Optional[int], strict: bool
    ) -> bool:
        if strict:
            return entry.match == match and (
                priority is None or entry.priority == priority
            )
        return match.subsumes(entry.match)

    def expire(self, now: float) -> List[Tuple[FlowEntry, str]]:
        """Remove timed-out entries; returns (entry, reason) pairs."""
        expired: List[Tuple[FlowEntry, str]] = []
        kept: List[FlowEntry] = []
        for entry in self._entries:
            reason = entry.expired(now)
            if reason is None:
                kept.append(entry)
            else:
                expired.append((entry, reason))
        self._entries = kept
        if expired:
            self.version += 1
        return expired

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def entries(self) -> List[FlowEntry]:
        """Entries in match order (highest priority first)."""
        return list(self._entries)

    def entries_by_cookie(self, cookie: int) -> List[FlowEntry]:
        return [e for e in self._entries if e.cookie == cookie]

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def clear(self) -> None:
        if self._entries:
            self.version += 1
        self._entries.clear()

    def stats(self) -> dict:
        """OpenFlow table-stats shaped snapshot."""
        return {
            "table_id": self.table_id,
            "active_count": len(self._entries),
            "lookup_count": self.lookup_count,
            "matched_count": self.matched_count,
        }

    def __repr__(self) -> str:
        return f"<FlowTable {self.table_id} entries={len(self._entries)}>"
