"""Horse: a flow-level SDN traffic dynamics simulator for large scale
networks.

Reproduction of *"Horse: towards an SDN traffic dynamics simulator for
large scale networks"* (Fernandes, Antichi, Castro, Uhlig — SIGCOMM
2016).  The public API re-exports the pieces most users need; see the
subpackages for the full surface:

* :mod:`repro.core` — the :class:`Horse` façade, config, results.
* :mod:`repro.sim` — the discrete-event kernel.
* :mod:`repro.net` — addresses, topology, generators.
* :mod:`repro.openflow` — the OpenFlow abstraction.
* :mod:`repro.flowsim` — the flow-level engine (the contribution).
* :mod:`repro.pktsim` — the packet-level baseline.
* :mod:`repro.control` — controller, apps, channel, monitor, policies.
* :mod:`repro.traffic` — matrices, generators, replay, IXP traces.
* :mod:`repro.ixp` — members, route server, peering fabric.
* :mod:`repro.stats` — collection and comparison metrics.
* :mod:`repro.telemetry` — tracing, metrics registry, monitor samples.
"""

from .core import Horse, HorseConfig, RunResult
from .errors import HorseError
from .flowsim import Flow, FlowLevelEngine, FlowState
from .net import Host, IPv4Address, IPv4Network, MacAddress, Switch, Topology
from .pktsim import PacketLevelEngine
from .sim import Simulator
from .telemetry import MetricsRegistry, MonitorSample, Telemetry, TraceBus
from .traffic import FlowGenConfig, FlowGenerator, TrafficMatrix, TrafficReplay

__version__ = "1.0.0"

__all__ = [
    "Flow",
    "FlowGenConfig",
    "FlowGenerator",
    "FlowLevelEngine",
    "FlowState",
    "Horse",
    "HorseConfig",
    "HorseError",
    "Host",
    "IPv4Address",
    "IPv4Network",
    "MacAddress",
    "MetricsRegistry",
    "MonitorSample",
    "PacketLevelEngine",
    "RunResult",
    "Simulator",
    "Switch",
    "Telemetry",
    "Topology",
    "TraceBus",
    "TrafficMatrix",
    "TrafficReplay",
    "__version__",
]
