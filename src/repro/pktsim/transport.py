"""Host transports for the packet baseline: AIMD (TCP-like) and CBR.

The AIMD transport approximates TCP Reno congestion control with
simulator-oracle loss feedback: drops are known to the simulator, so
instead of sequence numbers and dup-acks the source receives a loss
notification one RTT after the drop.  This reproduces the bandwidth
sharing that matters for accuracy comparison (E3) without a full TCP
stack; the flow-level engine's max-min allocation is the fluid limit of
the same sharing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..flowsim.flow import Flow
from ..sim.event import CallbackEvent
from ..sim.kernel import Simulator
from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from .engine import PacketLevelEngine

#: Initial congestion window / slow-start threshold (packets).
INITIAL_CWND = 2.0
INITIAL_SSTHRESH = 64.0
#: Fallback RTT estimate before any measurement (seconds).
DEFAULT_RTT = 1e-3


class Transport:
    """Base transport: paces a flow's bytes into packets."""

    def __init__(
        self, engine: "PacketLevelEngine", flow: Flow, mtu_bytes: int
    ) -> None:
        self.engine = engine
        self.flow = flow
        self.mtu = mtu_bytes
        self.bytes_queued = 0.0  # bytes handed to the NIC so far
        self.done_sending = False

    @property
    def sim(self) -> Simulator:
        return self.engine.sim

    def start(self) -> None:
        raise NotImplementedError

    def next_packet(self) -> Optional[Packet]:
        """Mint the next packet, or None when the volume is exhausted."""
        flow = self.flow
        if flow.size_bytes is not None:
            remaining = flow.size_bytes - self.bytes_queued
            if remaining <= 0:
                self.done_sending = True
                return None
            size = int(min(self.mtu, remaining))
        else:
            if (
                flow.duration_s is not None
                and self.sim.now >= flow.start_time + flow.duration_s
            ):
                self.done_sending = True
                return None
            size = self.mtu
        self.bytes_queued += size
        return Packet(
            headers=flow.headers,
            size_bytes=size,
            flow_id=flow.flow_id,
            src=flow.src,
            dst=flow.dst,
            sent_at=self.sim.now,
        )

    # Engine callbacks -------------------------------------------------
    def on_delivered(self, packet: Packet) -> None:
        """A data packet reached the destination host."""

    def on_ack(self, packet: Packet) -> None:
        """The (modelled) ack for a delivered packet reached the source."""

    def on_loss(self, packet: Packet) -> None:
        """Loss feedback for a dropped packet reached the source."""

    def stop(self) -> None:
        self.done_sending = True


class CbrTransport(Transport):
    """Constant-bit-rate (UDP-like) pacing at the flow's demand rate.

    The pacing tick is a single reschedulable timer: after each firing
    the same event object is re-armed via ``Simulator.reschedule`` (one
    push, no allocation) instead of minting a fresh callback event per
    packet.
    """

    def __init__(
        self, engine: "PacketLevelEngine", flow: Flow, mtu_bytes: int
    ) -> None:
        super().__init__(engine, flow, mtu_bytes)
        self._tick_event: Optional[CallbackEvent] = None

    def start(self) -> None:
        self._send_tick(self.sim)

    def _send_tick(self, sim: Simulator) -> None:
        if self.done_sending or self.flow.finished:
            return
        packet = self.next_packet()
        if packet is None:
            self.engine.source_finished(self.flow)
            return
        self.engine.inject(self.flow, packet)
        interval = packet.size_bytes * 8.0 / self.flow.demand_bps
        timer = self._tick_event
        if timer is None:
            timer = CallbackEvent(sim.now + interval, self._send_tick)
            self._tick_event = sim.schedule(timer)
        else:
            self._tick_event = sim.reschedule(timer, sim.now + interval)

    def on_loss(self, packet: Packet) -> None:
        self.flow.bytes_dropped += packet.size_bytes


class AimdTransport(Transport):
    """Window-based AIMD (TCP Reno approximation with oracle loss)."""

    def __init__(
        self, engine: "PacketLevelEngine", flow: Flow, mtu_bytes: int
    ) -> None:
        super().__init__(engine, flow, mtu_bytes)
        self.cwnd = INITIAL_CWND
        self.ssthresh = INITIAL_SSTHRESH
        self.in_flight = 0
        self.srtt = DEFAULT_RTT
        self._recovery_until = 0.0  # one halving per window of loss

    def start(self) -> None:
        self._pump()

    def _pump(self) -> None:
        """Send while the window allows."""
        while not self.done_sending and self.in_flight < int(self.cwnd):
            packet = self.next_packet()
            if packet is None:
                break
            self.in_flight += 1
            self.engine.inject(self.flow, packet)
        if (
            self.done_sending
            and self.in_flight == 0
            and not self.flow.finished
        ):
            self.engine.source_finished(self.flow)

    def on_delivered(self, packet: Packet) -> None:
        # Model the ack: it arrives back at the source after the same
        # one-way delay the data packet experienced (symmetric paths,
        # ack bandwidth ignored — the standard simulation shortcut).
        self.sim.call_in(
            max(packet.accumulated_delay, 1e-9), self._ack_event, packet
        )

    def _ack_event(self, sim: Simulator, packet: Packet) -> None:
        self.on_ack(packet)

    def on_ack(self, packet: Packet) -> None:
        if self.flow.finished:
            return
        self.in_flight = max(0, self.in_flight - 1)
        rtt_sample = (self.sim.now - packet.sent_at)
        self.srtt = 0.875 * self.srtt + 0.125 * rtt_sample
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0  # slow start
        else:
            self.cwnd += 1.0 / self.cwnd  # congestion avoidance
        self._pump()

    def on_loss(self, packet: Packet) -> None:
        if self.flow.finished:
            return
        self.flow.bytes_dropped += packet.size_bytes
        self.in_flight = max(0, self.in_flight - 1)
        # Retransmit the lost bytes: put them back on the budget.
        self.bytes_queued = max(0.0, self.bytes_queued - packet.size_bytes)
        self.done_sending = False
        if self.sim.now >= self._recovery_until:
            self.ssthresh = max(2.0, self.cwnd / 2.0)
            self.cwnd = self.ssthresh
            self._recovery_until = self.sim.now + self.srtt
        self._pump()


def make_transport(
    engine: "PacketLevelEngine", flow: Flow, mtu_bytes: int
) -> Transport:
    """Pick the transport from the flow's elasticity flag."""
    if flow.elastic:
        return AimdTransport(engine, flow, mtu_bytes)
    return CbrTransport(engine, flow, mtu_bytes)
