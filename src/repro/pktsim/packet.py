"""Packet objects for the packet-level baseline engine."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..openflow.headers import HeaderFields

_PACKET_IDS = itertools.count(1)


def reset_packet_ids() -> None:
    """Rewind the process-global packet-id counter to its import-time
    state (sweep workers isolate jobs this way)."""
    global _PACKET_IDS
    _PACKET_IDS = itertools.count(1)


@dataclass
class Packet:
    """One packet: a header tuple, a size, and bookkeeping timestamps.

    ``flow_id`` ties the packet back to the generating
    :class:`~repro.flowsim.flow.Flow` so per-flow throughput and
    completion can be measured at packet granularity.
    """

    headers: HeaderFields
    size_bytes: int
    flow_id: int
    src: str
    dst: str
    sent_at: float = 0.0
    #: Cumulative one-way propagation+transmission delay experienced.
    accumulated_delay: float = 0.0
    hops: int = 0
    packet_id: int = field(default_factory=lambda: next(_PACKET_IDS))

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"packet size must be > 0, got {self.size_bytes}")

    def __repr__(self) -> str:
        return (
            f"<Packet {self.packet_id} flow={self.flow_id} "
            f"{self.src}->{self.dst} {self.size_bytes}B>"
        )
