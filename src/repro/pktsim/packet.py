"""Packet objects for the packet-level baseline engine."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..openflow.headers import HeaderFields

_PACKET_IDS = itertools.count(1)

#: Highest packet id handed out so far (0 = none): the checkpoint
#: watermark, so a restored run in a fresh process never reuses ids.
_PACKET_ID_LAST = 0


def next_packet_id() -> int:
    """Allocate a packet id (monotone per process)."""
    global _PACKET_ID_LAST
    _PACKET_ID_LAST = next(_PACKET_IDS)
    return _PACKET_ID_LAST


def packet_id_watermark() -> int:
    """Highest packet id allocated so far (checkpoint capture reads this)."""
    return _PACKET_ID_LAST


def reset_packet_ids() -> None:
    """Rewind the process-global packet-id counter to its import-time
    state (sweep workers isolate jobs this way)."""
    global _PACKET_IDS, _PACKET_ID_LAST
    _PACKET_IDS = itertools.count(1)
    _PACKET_ID_LAST = 0


def advance_packet_ids(minimum: int) -> None:
    """Ensure future packet ids are > ``minimum`` (checkpoint restore
    advances past the snapshot's watermark)."""
    global _PACKET_IDS, _PACKET_ID_LAST
    start = max(_PACKET_ID_LAST, minimum) + 1
    _PACKET_IDS = itertools.count(start)
    _PACKET_ID_LAST = start - 1


@dataclass
class Packet:
    """One packet: a header tuple, a size, and bookkeeping timestamps.

    ``flow_id`` ties the packet back to the generating
    :class:`~repro.flowsim.flow.Flow` so per-flow throughput and
    completion can be measured at packet granularity.
    """

    headers: HeaderFields
    size_bytes: int
    flow_id: int
    src: str
    dst: str
    sent_at: float = 0.0
    #: Cumulative one-way propagation+transmission delay experienced.
    accumulated_delay: float = 0.0
    hops: int = 0
    packet_id: int = field(default_factory=next_packet_id)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"packet size must be > 0, got {self.size_bytes}")

    def __repr__(self) -> str:
        return (
            f"<Packet {self.packet_id} flow={self.flow_id} "
            f"{self.src}->{self.dst} {self.size_bytes}B>"
        )
