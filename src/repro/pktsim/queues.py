"""Drop-tail output queues serializing packets onto links.

One :class:`OutputQueue` per link direction.  Packets enqueue at the
egress port; the head packet transmits for ``size*8/capacity`` seconds,
then propagates for the link delay before arriving at the peer node.
Queue overflow drops the tail (drop-tail discipline).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from ..net.link import LinkDirection
from ..sim.kernel import Simulator
from .packet import Packet


class OutputQueue:
    """A FIFO bound to one link direction.

    Parameters
    ----------
    capacity_packets:
        Maximum queued packets (the in-flight transmission excluded).
    on_arrival:
        Callback ``(packet, dst_port)`` invoked when a packet finishes
        propagating to the far end.
    on_drop:
        Callback ``(packet, direction)`` for tail drops.
    capacity_fn:
        Optional ``(direction) -> bps`` override of the transmit rate,
        sampled per packet.  The hybrid engine supplies the *residual*
        capacity (link rate minus flow-level background load) here; when
        None the direction's configured capacity is used.
    """

    __slots__ = (
        "sim",
        "direction",
        "capacity_packets",
        "on_arrival",
        "on_drop",
        "capacity_fn",
        "_queue",
        "_busy",
        "enqueued",
        "dropped",
        "transmitted_bytes",
        "busy_time",
        "_busy_since",
    )

    def __init__(
        self,
        sim: Simulator,
        direction: LinkDirection,
        capacity_packets: int,
        on_arrival: Callable[[Packet, object], None],
        on_drop: Callable[[Packet, LinkDirection], None],
        capacity_fn: Optional[Callable[[LinkDirection], float]] = None,
    ) -> None:
        if capacity_packets < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity_packets}")
        self.sim = sim
        self.direction = direction
        self.capacity_packets = capacity_packets
        self.on_arrival = on_arrival
        self.on_drop = on_drop
        self.capacity_fn = capacity_fn
        self._queue: Deque[Packet] = deque()
        self._busy = False
        self.enqueued = 0
        self.dropped = 0
        self.transmitted_bytes = 0
        #: Total seconds the transmitter was busy (for utilization).
        self.busy_time = 0.0
        self._busy_since: Optional[float] = None

    @property
    def depth(self) -> int:
        return len(self._queue)

    def enqueue(self, packet: Packet) -> bool:
        """Queue a packet for transmission; False when tail-dropped."""
        if not self.direction.up:
            self._drop(packet)
            return False
        if len(self._queue) >= self.capacity_packets:
            self._drop(packet)
            return False
        self._queue.append(packet)
        self.enqueued += 1
        if not self._busy:
            self._start_next()
        return True

    def _drop(self, packet: Packet) -> None:
        self.dropped += 1
        self.direction.src_port.tx_dropped += 1
        self.on_drop(packet, self.direction)

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            if self._busy_since is not None:
                self.busy_time += self.sim.now - self._busy_since
                self._busy_since = None
            return
        if not self._busy:
            self._busy = True
            self._busy_since = self.sim.now
        packet = self._queue.popleft()
        capacity_fn = self.capacity_fn
        rate = (
            self.direction.capacity_bps
            if capacity_fn is None
            else capacity_fn(self.direction)
        )
        tx_time = packet.size_bytes * 8.0 / rate
        # tx_time rides along with the callback: under a time-varying
        # residual capacity the rate sampled at completion would differ
        # from the one the transmission actually used.
        self.sim.call_in(tx_time, self._on_tx_done, packet, tx_time)

    def _on_tx_done(self, sim: Simulator, packet: Packet, tx_time: float) -> None:
        self.transmitted_bytes += packet.size_bytes
        src_port = self.direction.src_port
        dst_port = self.direction.dst_port
        src_port.tx_packets += 1
        src_port.tx_bytes += packet.size_bytes
        delay = self.direction.delay_s
        packet.accumulated_delay += delay + tx_time
        packet.hops += 1
        if self.direction.up:
            sim.call_in(delay, self._on_propagated, packet)
        # else: packet lost in flight (link failed mid-transmission)
        self._start_next()

    def _on_propagated(self, sim: Simulator, packet: Packet) -> None:
        dst_port = self.direction.dst_port
        dst_port.rx_packets += 1
        dst_port.rx_bytes += packet.size_bytes
        self.on_arrival(packet, dst_port)

    def utilization(self, now: float, since: float = 0.0) -> float:
        """Fraction of [since, now] the transmitter was busy."""
        busy = self.busy_time
        if self._busy_since is not None:
            busy += now - self._busy_since
        window = now - since
        return busy / window if window > 0 else 0.0
