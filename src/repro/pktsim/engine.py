"""The packet-level baseline engine.

Moves individual packets through the same topology and OpenFlow
pipelines as the flow-level engine, with drop-tail queues and
store-and-forward links.  This is the in-repo stand-in for the
packet-granularity tools the poster contrasts against (Mininet/ns-3):
high fidelity, per-packet cost — the scalability experiments (E1/E2)
measure exactly that cost, and the accuracy experiment (E3) uses it as
ground truth.
"""

from __future__ import annotations

import logging
from collections import deque
from typing import Dict, Iterable, List, Optional

from ..errors import SimulationError
from ..net.link import LinkDirection, Port
from ..net.node import Host, Switch
from ..net.topology import Topology
from ..flowsim.flow import Flow, FlowState
from ..openflow.messages import PacketIn, PacketInReason
from ..sim.kernel import Simulator
from .packet import Packet
from .queues import OutputQueue
from .transport import AimdTransport, Transport, make_transport

logger = logging.getLogger(__name__)


class PacketLevelEngine:
    """Per-packet simulation over OpenFlow pipelines.

    Accepts the same :class:`~repro.flowsim.flow.Flow` objects as the
    flow-level engine — ``elastic`` flows get an AIMD transport, others
    constant-bit-rate — so one workload definition drives both engines.

    Parameters
    ----------
    mtu_bytes:
        Packet size used by the transports.
    queue_capacity_packets:
        Drop-tail depth of every output queue.
    max_hops:
        Hop guard against forwarding loops.
    capacity_fn:
        Optional ``(direction) -> bps`` transmit-rate override threaded
        into every output queue (hybrid residual capacity); None uses
        each direction's configured capacity.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        control: Optional[object] = None,
        mtu_bytes: int = 1500,
        queue_capacity_packets: int = 100,
        max_hops: int = 64,
        capacity_fn: Optional[object] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.control = control
        self.mtu_bytes = mtu_bytes
        self.queue_capacity_packets = queue_capacity_packets
        self.max_hops = max_hops
        #: Per-direction transmit-rate override passed to new queues.
        self.capacity_fn = capacity_fn
        self.flows: Dict[int, Flow] = {}
        self.transports: Dict[int, Transport] = {}
        self._queues: Dict[LinkDirection, OutputQueue] = {}
        # Packets parked at a switch awaiting an asynchronous packet-out,
        # keyed by (dpid, in_port, flow_id); bounded per key.
        self._buffered: Dict[tuple, deque] = {}
        #: Structured trace sink (:class:`repro.telemetry.TraceBus`) or
        #: None; per-packet emission sites check ``is not None``.
        self.trace_bus = None
        #: Per-phase profiler or None (the kernel charges "dispatch").
        self.profiler = None
        self.stats = {
            "packets_sent": 0,
            "packets_delivered": 0,
            "drops_congestion": 0,
            "drops_meter": 0,
            "drops_policy": 0,
            "drops_loop": 0,
            "drops_no_route": 0,
            "packet_ins": 0,
            "completed": 0,
        }

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(self, flow: Flow) -> Flow:
        """Schedule a flow's source to start at ``flow.start_time``."""
        if flow.flow_id in self.flows:
            raise SimulationError(f"flow {flow.flow_id} submitted twice")
        if flow.start_time < self.sim.now:
            raise SimulationError(
                f"flow {flow.flow_id} starts in the past ({flow.start_time})"
            )
        self.flows[flow.flow_id] = flow
        self.sim.call_at(flow.start_time, self._start_flow, flow)
        return flow

    def submit_all(self, flows: Iterable[Flow]) -> List[Flow]:
        return [self.submit(f) for f in flows]

    def summary(self) -> dict:
        out = dict(self.stats)
        out["total_flows"] = len(self.flows)
        out["bytes_sent"] = sum(f.bytes_sent for f in self.flows.values())
        out["bytes_delivered"] = sum(f.bytes_delivered for f in self.flows.values())
        out["bytes_dropped"] = sum(f.bytes_dropped for f in self.flows.values())
        return out

    def engine_stats(self) -> dict:
        """Engine internals for run diagnostics (deterministic)."""
        out = {"engine": "packet"}
        out.update(self.stats)
        if self.profiler is not None:
            # Wall-clock content: only present when profiling was
            # explicitly enabled, so default reports stay deterministic.
            out["profile"] = self.profiler.snapshot()
        return out

    def queue_for(self, direction: LinkDirection) -> OutputQueue:
        """The (lazily created) output queue of a link direction."""
        queue = self._queues.get(direction)
        if queue is None:
            queue = OutputQueue(
                self.sim,
                direction,
                self.queue_capacity_packets,
                on_arrival=self._on_packet_arrival,
                on_drop=self._on_congestion_drop,
                capacity_fn=self.capacity_fn,
            )
            self._queues[direction] = queue
        return queue

    # ------------------------------------------------------------------
    # Source side
    # ------------------------------------------------------------------
    def _start_flow(self, sim: Simulator, flow: Flow) -> None:
        flow.state = FlowState.ACTIVE
        transport = make_transport(self, flow, self.mtu_bytes)
        self.transports[flow.flow_id] = transport
        if flow.duration_s is not None:
            sim.call_at(
                flow.start_time + flow.duration_s, self._end_flow, flow
            )
        transport.start()

    def _end_flow(self, sim: Simulator, flow: Flow) -> None:
        if flow.finished:
            return
        flow.state = FlowState.ENDED
        flow.end_time = sim.now
        transport = self.transports.get(flow.flow_id)
        if transport is not None:
            transport.stop()

    def inject(self, flow: Flow, packet: Packet) -> None:
        """Called by transports: put a fresh packet on the host uplink."""
        self.stats["packets_sent"] += 1
        if self.trace_bus is not None:
            self.trace_bus.emit(
                "packet.enqueue",
                packet=packet.packet_id,
                flow=packet.flow_id,
                size=packet.size_bytes,
            )
        flow.bytes_sent += packet.size_bytes
        host = self.topology.host(flow.src)
        uplink = host.uplink_port
        if uplink.link is None or not uplink.link.up:
            self._policy_drop(packet, "no_route")
            return
        self.queue_for(uplink.link.direction_from(uplink)).enqueue(packet)

    def source_finished(self, flow: Flow) -> None:
        """A source exhausted its volume (transport callback)."""
        # Elastic flows complete on full delivery (see _deliver); CBR
        # volume flows complete when the source drains.
        if not flow.elastic and flow.size_bytes is not None and not flow.finished:
            self._complete(flow)

    def _complete(self, flow: Flow) -> None:
        flow.state = FlowState.COMPLETED
        flow.end_time = self.sim.now
        self.stats["completed"] += 1

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def _on_packet_arrival(self, packet: Packet, dst_port: Port) -> None:
        node = dst_port.node
        if isinstance(node, Host):
            if node.name == packet.dst:
                self._deliver(packet)
            # Frames for other hosts are discarded silently.
            return
        if not isinstance(node, Switch) or node.pipeline is None:
            self._policy_drop(packet, "no_route")
            return
        if packet.hops >= self.max_hops:
            self._policy_drop(packet, "loop")
            return
        self._switch_process(node, packet, dst_port.number)

    def _switch_process(self, switch: Switch, packet: Packet, in_port: int) -> None:
        pipeline = switch.pipeline
        result = pipeline.process(packet.headers, in_port)
        out_ports = list(result.out_ports)
        if result.to_controller or (result.miss and not result.matched_entries):
            reply = self._raise_packet_in(switch, packet, in_port, result)
            if reply is not None:
                retry = pipeline.process(packet.headers, in_port)
                if retry.matched_entries and not retry.to_controller:
                    result = retry
                    out_ports = list(retry.out_ports)
                else:
                    result = retry
                    out_ports = self._expand_reserved(switch, in_port, list(reply))
            elif self.control is not None and not out_ports:
                # Asynchronous control: park the packet like a real switch
                # buffers it, released by apply_packet_out.
                self._buffer_packet(switch, packet, in_port)
                return
            elif result.miss:
                self._policy_drop(packet, "policy")
                return
        # Account matched entries (per-packet granularity).
        for entry in result.matched_entries:
            entry.account(packet.size_bytes, 1, now=self.sim.now)
        for group, index in result.group_hits:
            group.account(index, packet.size_bytes)
        if result.dropped:
            self._policy_drop(packet, "policy")
            return
        if result.miss and not out_ports:
            self._policy_drop(packet, "policy")
            return
        # Meters: token-bucket admission; any red band drops the packet.
        for meter_id in result.meter_ids:
            meter = pipeline.meters.get(meter_id)
            if not meter.admit_packet(packet.size_bytes, self.sim.now):
                self.stats["drops_meter"] += 1
                if self.trace_bus is not None:
                    self.trace_bus.emit(
                        "packet.drop",
                        reason="meter",
                        packet=packet.packet_id,
                        flow=packet.flow_id,
                    )
                self._loss_feedback(packet)
                return
        headers_after = result.headers or packet.headers
        if headers_after is not packet.headers:
            packet.headers = headers_after
        if not out_ports:
            self._policy_drop(packet, "policy")
            return
        first = True
        for number in out_ports:
            port = switch.ports.get(number)
            if (
                port is None
                or not port.connected
                or not port.up
                or not port.link.up
            ):
                self.stats["drops_no_route"] += 1
                continue
            copy = packet if first else self._clone(packet)
            first = False
            self.queue_for(port.link.direction_from(port)).enqueue(copy)


    @staticmethod
    def _expand_reserved(switch: Switch, in_port: int, ports: List[int]) -> List[int]:
        """Expand reserved port numbers (FLOOD) in a packet-out list."""
        from ..openflow.action import PORT_FLOOD

        expanded: List[int] = []
        for number in ports:
            if number == PORT_FLOOD:
                expanded.extend(switch.pipeline.flood_ports(in_port))
            else:
                expanded.append(number)
        return expanded

    @staticmethod
    def _clone(packet: Packet) -> Packet:
        return Packet(
            headers=packet.headers,
            size_bytes=packet.size_bytes,
            flow_id=packet.flow_id,
            src=packet.src,
            dst=packet.dst,
            sent_at=packet.sent_at,
            accumulated_delay=packet.accumulated_delay,
            hops=packet.hops,
        )

    _BUFFER_LIMIT = 16

    def _buffer_packet(self, switch: Switch, packet: Packet, in_port: int) -> None:
        key = (switch.dpid, in_port, packet.flow_id)
        parked = self._buffered.setdefault(key, deque())
        if len(parked) < self._BUFFER_LIMIT:
            parked.append(packet)
        else:
            self._policy_drop(packet, "policy")

    def apply_packet_out(self, message, ports: List[int]) -> None:
        """Release packets parked for (dpid, in_port, flow) on the ports
        the controller chose (or via freshly installed rules)."""
        key = (message.dpid, message.in_port, message.flow_id)
        parked = self._buffered.pop(key, None)
        if not parked:
            return
        switch = self.topology.switch_by_dpid(message.dpid)
        expanded = self._expand_reserved(switch, message.in_port, list(ports))
        for packet in parked:
            self._emit_on_ports(switch, packet, expanded)

    def _emit_on_ports(self, switch: Switch, packet: Packet, out_ports: List[int]) -> None:
        first = True
        for number in out_ports:
            port = switch.ports.get(number)
            if (
                port is None
                or not port.connected
                or not port.up
                or not port.link.up
            ):
                self.stats["drops_no_route"] += 1
                continue
            copy = packet if first else self._clone(packet)
            first = False
            self.queue_for(port.link.direction_from(port)).enqueue(copy)

    def _raise_packet_in(
        self, switch: Switch, packet: Packet, in_port: int, result
    ) -> Optional[List[int]]:
        self.stats["packet_ins"] += 1
        if self.control is None:
            return None
        flow = self.flows.get(packet.flow_id)
        message = PacketIn(
            dpid=switch.dpid,
            in_port=in_port,
            reason=PacketInReason.NO_MATCH if result.miss else PacketInReason.ACTION,
            headers=packet.headers,
            rate_bps=flow.demand_bps if flow else 0.0,
            size_bytes=packet.size_bytes,
            flow_id=packet.flow_id,
        )
        return self.control.deliver_packet_in(message)

    # ------------------------------------------------------------------
    # Sinks: delivery and drops
    # ------------------------------------------------------------------
    def _deliver(self, packet: Packet) -> None:
        self.stats["packets_delivered"] += 1
        flow = self.flows.get(packet.flow_id)
        if flow is None:
            return
        flow.bytes_delivered += packet.size_bytes
        transport = self.transports.get(packet.flow_id)
        if transport is not None:
            transport.on_delivered(packet)
        if (
            flow.elastic
            and flow.size_bytes is not None
            and flow.bytes_delivered >= flow.size_bytes
            and not flow.finished
        ):
            self._complete(flow)

    def _on_congestion_drop(self, packet: Packet, direction: LinkDirection) -> None:
        self.stats["drops_congestion"] += 1
        if self.trace_bus is not None:
            self.trace_bus.emit(
                "packet.drop",
                reason="congestion",
                packet=packet.packet_id,
                flow=packet.flow_id,
                link=str(direction),
            )
        self._loss_feedback(packet)

    def _loss_feedback(self, packet: Packet) -> None:
        """Oracle loss notification to the source after ~one RTT."""
        transport = self.transports.get(packet.flow_id)
        if transport is None:
            return
        if isinstance(transport, AimdTransport):
            delay = max(2.0 * packet.accumulated_delay, transport.srtt, 1e-6)
        else:
            delay = max(2.0 * packet.accumulated_delay, 1e-6)
        self.sim.call_in(delay, self._loss_event, packet)

    def _loss_event(self, sim, packet: Packet) -> None:
        transport = self.transports.get(packet.flow_id)
        if transport is not None:
            transport.on_loss(packet)

    def _policy_drop(self, packet: Packet, kind: str) -> None:
        """Drops with no congestion signal (blackhole, miss, loops).

        Real TCP would stall waiting for a timeout here; the oracle gives
        no feedback, so AIMD windows stall exactly the same way.
        """
        if kind == "loop":
            self.stats["drops_loop"] += 1
        elif kind == "no_route":
            self.stats["drops_no_route"] += 1
        else:
            self.stats["drops_policy"] += 1
        if self.trace_bus is not None:
            self.trace_bus.emit(
                "packet.drop",
                reason=kind,
                packet=packet.packet_id,
                flow=packet.flow_id,
            )
        flow = self.flows.get(packet.flow_id)
        if flow is not None:
            flow.bytes_dropped += packet.size_bytes
