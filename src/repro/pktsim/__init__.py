"""Packet-level baseline engine (the Mininet/ns-3 stand-in)."""

from .engine import PacketLevelEngine
from .packet import Packet
from .queues import OutputQueue
from .transport import AimdTransport, CbrTransport, Transport, make_transport

__all__ = [
    "AimdTransport",
    "CbrTransport",
    "OutputQueue",
    "Packet",
    "PacketLevelEngine",
    "Transport",
    "make_transport",
]
