"""Command-line interface: run scenarios and manage topologies.

Three subcommands::

    python -m repro topo --kind fat-tree --k 4 --out topo.json
    python -m repro info topo.json
    python -m repro run scenario.json --flows-csv flows.csv --json run.json

A *scenario* is one JSON document describing topology, policies,
traffic, and engine — everything a run needs, so experiments are
shareable files rather than scripts.  Schema::

    {
      "engine": "flow" | "packet",
      "solver": "incremental" | "full" | "vector",   # flow engine only
      "route_cache": true,                           # flow engine only
      "seed": 0,
      "until": 60.0,
      "topology": {"kind": "fat-tree", "k": 4}
                | {"kind": "leaf-spine", "leaves": 4, "spines": 2, ...}
                | {"kind": "linear", "switches": 3, ...}
                | {"kind": "ixp", "members": 32, "seed": 1}
                | {"file": "topo.json"},
      "policies": { ... same dict the policy generator accepts ... },
      "traffic":  {"kind": "matrix", "model": "uniform" | "gravity-ixp",
                   "total": "10 Gbps", "horizon_s": 5.0,
                   "constant_rate": false}
                | {"kind": "trace", "file": "flows.jsonl"}
    }
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .core import Horse, HorseConfig
from .errors import ExperimentError, HorseError
from .net.generators import fat_tree, leaf_spine, linear, single_switch
from .net.io import load_topology, save_topology
from .stats.export import flows_to_csv, result_to_json, summary_text
from .traffic.matrix import TrafficMatrix
from .control.policy.spec import parse_rate


def _build_topology(spec: dict):
    """Build a topology (and the IXP fabric, when applicable)."""
    if "file" in spec:
        return load_topology(spec["file"]), None
    kind = spec.get("kind")
    if kind == "fat-tree":
        return fat_tree(spec.get("k", 4)), None
    if kind == "leaf-spine":
        return (
            leaf_spine(
                spec.get("leaves", 4),
                spec.get("spines", 2),
                hosts_per_leaf=spec.get("hosts_per_leaf", 2),
            ),
            None,
        )
    if kind == "linear":
        return (
            linear(
                spec.get("switches", 2),
                hosts_per_switch=spec.get("hosts_per_switch", 1),
            ),
            None,
        )
    if kind == "star":
        return single_switch(spec.get("hosts", 4)), None
    if kind == "ixp":
        from .ixp import build_ixp

        fabric = build_ixp(
            spec.get("members", 16), seed=spec.get("seed", 0)
        )
        return fabric.topology, fabric
    raise ExperimentError(f"unknown topology kind {kind!r}")


def _build_traffic(spec: dict, horse: Horse, fabric) -> int:
    """Generate and submit the scenario's traffic; returns flow count."""
    kind = spec.get("kind", "matrix")
    if kind == "trace":
        from .traffic.trace_io import load_trace

        flows = load_trace(spec["file"])
        horse.submit_flows(flows)
        return len(flows)
    if kind == "matrix":
        model = spec.get("model", "uniform")
        total = parse_rate(spec.get("total", "1 Gbps"))
        hosts = [h.name for h in horse.topology.hosts]
        if model == "uniform":
            matrix = TrafficMatrix.uniform(hosts, total_bps=total)
        elif model == "gravity-ixp":
            if fabric is None:
                raise ExperimentError(
                    "gravity-ixp traffic needs an ixp topology"
                )
            from .traffic.ixp_trace import ixp_gravity_matrix

            matrix = ixp_gravity_matrix(fabric, total_bps=total)
        else:
            raise ExperimentError(f"unknown matrix model {model!r}")
        flows = horse.submit_matrix(
            matrix,
            horizon_s=spec.get("horizon_s", 5.0),
            constant_rate=spec.get("constant_rate", False),
        )
        return len(flows)
    raise ExperimentError(f"unknown traffic kind {kind!r}")


def cmd_run(args: argparse.Namespace) -> int:
    with open(args.scenario) as handle:
        scenario = json.load(handle)
    topology, fabric = _build_topology(scenario.get("topology", {}))
    config = HorseConfig(
        engine=scenario.get("engine", "flow"),
        solver=getattr(args, "solver", None) or scenario.get("solver", "incremental"),
        route_cache=scenario.get("route_cache", True),
        seed=scenario.get("seed", 0),
        link_sample_interval_s=scenario.get("link_sample_interval_s"),
        monitor_interval_s=scenario.get("monitor_interval_s"),
    )
    horse = Horse(
        topology, policies=scenario.get("policies") or {}, config=config
    )
    count = _build_traffic(scenario.get("traffic", {}), horse, fabric)
    print(f"scenario: {args.scenario} ({count} flows submitted)")
    result = horse.run(until=scenario.get("until"))
    print(summary_text(result))
    if args.flows_csv:
        rows = flows_to_csv(result, args.flows_csv)
        print(f"wrote {rows} flow records to {args.flows_csv}")
    if args.json:
        result_to_json(result, args.json)
        print(f"wrote run document to {args.json}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Statically verify the forwarding state a scenario would install."""
    from .analysis import analyze_network

    with open(args.scenario) as handle:
        scenario = json.load(handle)
    topology, _ = _build_topology(scenario.get("topology", {}))
    config = HorseConfig(
        engine=scenario.get("engine", "flow"),
        seed=scenario.get("seed", 0),
    )
    horse = Horse(
        topology, policies=scenario.get("policies") or {}, config=config
    )
    horse.start_control_plane()
    # Failures are applied *after* proactive install, so rules that
    # predate the failure go stale — exactly the defect class the
    # analyzer exists to catch.
    for a, b in args.fail_link or []:
        topology.fail_link(a, b)
        print(f"failed link {a} <-> {b}")
    report = analyze_network(
        topology,
        specs=horse.compiled.specs if horse.compiled else None,
        ingress=args.ingress,
    )
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2)
            handle.write("\n")
        print(f"wrote analysis report to {args.json}")
    print(report.summary_text())
    return report.exit_code(strict=args.strict)


def cmd_topo(args: argparse.Namespace) -> int:
    spec = {"kind": args.kind}
    if args.k is not None:
        spec["k"] = args.k
    if args.members is not None:
        spec["members"] = args.members
    if args.switches is not None:
        spec["switches"] = args.switches
    if args.hosts is not None:
        spec["hosts"] = args.hosts
    if args.seed is not None:
        spec["seed"] = args.seed
    topology, _ = _build_topology(spec)
    save_topology(topology, args.out)
    print(f"wrote {topology.summary()} to {args.out}")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    topology = load_topology(args.topology)
    summary = topology.summary()
    print(f"name     : {summary['name']}")
    print(f"hosts    : {summary['hosts']}")
    print(f"switches : {summary['switches']}")
    print(f"links    : {summary['links']}")
    print(f"capacity : {summary['total_capacity_bps'] / 1e9:.3g} Gb/s total")
    degree = {}
    for node in topology.nodes:
        degree[node.name] = len(node.connected_ports)
    hubs = sorted(degree.items(), key=lambda kv: -kv[1])[:5]
    print("highest-degree nodes:")
    for name, deg in hubs:
        print(f"  {name}: {deg} links")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Horse: flow-level SDN traffic dynamics simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run a scenario file")
    run_p.add_argument("scenario", help="scenario JSON path")
    run_p.add_argument("--flows-csv", help="write per-flow records here")
    run_p.add_argument("--json", help="write the full run document here")
    run_p.add_argument(
        "--solver",
        choices=["incremental", "full", "vector"],
        help="flow-engine rate solver (overrides the scenario)",
    )
    run_p.set_defaults(func=cmd_run)

    an_p = sub.add_parser(
        "analyze",
        help="statically verify the forwarding state a scenario installs",
    )
    an_p.add_argument("scenario", help="scenario JSON path")
    an_p.add_argument(
        "--fail-link",
        nargs=2,
        action="append",
        metavar=("A", "B"),
        help="bring a link down after rule install (repeatable)",
    )
    an_p.add_argument(
        "--ingress",
        choices=["edge", "all"],
        default="edge",
        help="inject classes at host-facing ports only (edge) or all ports",
    )
    an_p.add_argument("--json", help="write the structured report here")
    an_p.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings too",
    )
    an_p.set_defaults(func=cmd_analyze)

    topo_p = sub.add_parser("topo", help="generate a topology file")
    topo_p.add_argument(
        "--kind",
        required=True,
        choices=["fat-tree", "leaf-spine", "linear", "star", "ixp"],
    )
    topo_p.add_argument("--k", type=int, help="fat-tree arity")
    topo_p.add_argument("--members", type=int, help="IXP member count")
    topo_p.add_argument("--switches", type=int, help="linear chain length")
    topo_p.add_argument("--hosts", type=int, help="star host count")
    topo_p.add_argument("--seed", type=int)
    topo_p.add_argument("--out", required=True, help="output JSON path")
    topo_p.set_defaults(func=cmd_topo)

    info_p = sub.add_parser("info", help="describe a topology file")
    info_p.add_argument("topology", help="topology JSON path")
    info_p.set_defaults(func=cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (HorseError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
