"""Command-line interface: run scenarios, sweeps, and topologies.

Subcommands::

    python -m repro topo --kind fat-tree --k 4 --out topo.json
    python -m repro info topo.json
    python -m repro run scenario.json --flows-csv flows.csv --json run.json
    python -m repro run scenario.json --checkpoint state.ckpt
    python -m repro run --restore state.ckpt --json run.json
    python -m repro run scenario.json --trace run.trace.jsonl --metrics metrics.prom
    python -m repro trace record scenario.json --out run.trace.jsonl
    python -m repro trace summarize run.trace.jsonl
    python -m repro sweep sweep.json --out DIR --workers 4
    python -m repro resume DIR

A *scenario* is one JSON document describing topology, policies,
traffic, engine, and runtime knobs — everything a run needs, so
experiments are shareable files rather than scripts (schema in
:mod:`repro.runtime.scenario`).  A *sweep spec* adds a parameter grid
and pool settings on top of a base scenario (schema in
:mod:`repro.runtime.sweep`).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .core import Horse, HorseConfig
from .errors import ExperimentError, HorseError
from .net.io import load_topology, save_topology
from .runtime.scenario import (
    build_horse,
    build_topology as _build_topology,
    build_traffic as _build_traffic,
    reset_id_counters,
    run_scenario,
)
from .runtime.schema import (
    SCHEMA_VERSION,
    ensure_v1,
    migrate_scenario,
    shard_section,
    validate_scenario,
)
from .stats.export import flows_to_csv, result_to_json, run_digest, summary_text


def cmd_run(args: argparse.Namespace) -> int:
    # Rewind the process-global id counters so two identical invocations
    # emit identical documents (ids included) even in one process.
    reset_id_counters()
    if args.restore:
        if args.scenario:
            raise ExperimentError(
                "pass a scenario file or --restore, not both"
            )
        horse = Horse.restore(args.restore)
        print(f"restored checkpoint: {args.restore} (t={horse.sim.now:g} s)")
        if args.trace:
            horse.telemetry.enable_tracing(args.trace)
        if args.profile:
            horse.telemetry.enable_profiling()
        until = args.until if args.until is not None else horse.last_until
        try:
            result = horse.run(until=until)
        finally:
            horse.shutdown_wire()
    else:
        if not args.scenario:
            raise ExperimentError("a scenario file (or --restore) is required")
        with open(args.scenario) as handle:
            scenario = json.load(handle)
        # Legacy (v0) documents migrate in memory, warning once per key;
        # CLI overrides are applied to the v1 sections.
        scenario = ensure_v1(scenario)
        if args.checkpoint:
            section = scenario.setdefault("checkpoint", {})
            section["path"] = args.checkpoint
            if args.checkpoint_interval:
                section["interval_s"] = args.checkpoint_interval
        if args.trace:
            scenario.setdefault("telemetry", {})["trace_path"] = args.trace
        if args.profile:
            scenario.setdefault("telemetry", {})["profile"] = True
        if args.hybrid_select:
            # Selecting a foreground implies the hybrid engine.
            scenario["engine"] = "hybrid"
            scenario.setdefault("hybrid", {})["select"] = args.hybrid_select
        if args.hybrid_sync_interval:
            scenario.setdefault("hybrid", {})[
                "sync_interval_s"
            ] = args.hybrid_sync_interval
        if args.control:
            scenario["control"] = args.control
        if args.wire_client:
            scenario["control"] = "wire"
            scenario.setdefault("wire", {})["client"] = args.wire_client
        if args.wire_listen:
            scenario.setdefault("wire", {})["listen"] = args.wire_listen
        if args.kernel_queue:
            scenario.setdefault("kernel", {})["queue"] = args.kernel_queue
        if args.kernel_compaction_threshold is not None:
            # <= 0 on the command line means "disable compaction".
            threshold = args.kernel_compaction_threshold
            scenario.setdefault("kernel", {})["compaction_threshold"] = (
                threshold if threshold > 0 else None
            )
        if args.shards is not None or args.shard_quantum is not None:
            shards = shard_section(scenario)
            if args.shards is not None:
                shards["count"] = args.shards
            if args.shard_quantum is not None:
                shards["quantum_s"] = args.shard_quantum
            scenario["shards"] = shards
        validate_scenario(scenario)
        if args.until is not None:
            scenario["until"] = args.until
        if int(shard_section(scenario).get("count", 1)) > 1:
            if args.checkpoint or args.metrics or args.trace:
                raise ExperimentError(
                    "--checkpoint/--metrics/--trace are per-process "
                    "features; they are not available on a sharded run"
                )
            horse, result, count = run_scenario(scenario, solver=args.solver)
            print(f"scenario: {args.scenario} ({count} flows submitted, "
                  f"{shard_section(scenario)['count']} shards)")
        else:
            horse, fabric = build_horse(scenario, solver=args.solver)
            count = _build_traffic(scenario.get("traffic", {}), horse, fabric)
            print(f"scenario: {args.scenario} ({count} flows submitted)")
            try:
                result = horse.run(until=scenario.get("until"))
            finally:
                horse.shutdown_wire()
            if args.checkpoint and not args.checkpoint_interval:
                # No periodic ticker: snapshot the final state explicitly.
                horse.checkpoint(args.checkpoint)
                print(f"wrote checkpoint to {args.checkpoint}")
    print(summary_text(result))
    if args.check_digest:
        digest = run_digest(result)
        expected = args.check_digest
        if expected == "@golden":
            if not args.scenario:
                raise ExperimentError(
                    "--check-digest without a value needs a scenario file "
                    "(golden digests are looked up next to it)"
                )
            import os

            golden_path = os.path.join(
                os.path.dirname(os.path.abspath(args.scenario)),
                "GOLDEN_DIGESTS.json",
            )
            with open(golden_path) as handle:
                goldens = json.load(handle)
            key = os.path.basename(args.scenario)
            if key not in goldens:
                raise ExperimentError(
                    f"no golden digest for {key!r} in {golden_path}"
                )
            expected = goldens[key]
        if digest != expected:
            print(f"digest MISMATCH: got {digest}, expected {expected}",
                  file=sys.stderr)
            return 3
        print(f"digest OK: {digest}")
    if args.flows_csv:
        rows = flows_to_csv(result, args.flows_csv)
        print(f"wrote {rows} flow records to {args.flows_csv}")
    if args.json:
        result_to_json(result, args.json)
        print(f"wrote run document to {args.json}")
    if args.metrics and horse is not None:
        with open(args.metrics, "w") as handle:
            handle.write(horse.telemetry.prometheus())
        print(f"wrote metrics exposition to {args.metrics}")
    if horse is not None and horse.telemetry.tracing_enabled:
        bus = horse.telemetry.trace
        emitted = bus.emitted
        horse.telemetry.disable_tracing()
        if bus.path:
            print(f"wrote {emitted + 1} trace records to {bus.path}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run a scenario as an OpenFlow 1.3 datapath agent: listen for an
    external controller, then simulate against it."""
    reset_id_counters()
    with open(args.scenario) as handle:
        scenario = json.load(handle)
    scenario = ensure_v1(scenario)
    scenario["control"] = "wire"
    wire = scenario.setdefault("wire", {})
    wire.pop("client", None)  # serve = external controller
    if args.listen:
        wire["listen"] = args.listen
    if args.budget:
        wire["latency_budget_s"] = args.budget
    if args.dilation is not None:
        wire["dilation"] = args.dilation
    horse, fabric = build_horse(scenario, solver=None)
    count = _build_traffic(scenario.get("traffic", {}), horse, fabric)

    def announce(address):
        host, port = address
        print(f"listening on {host}:{port} "
              f"({len(horse.topology.switches)} datapaths)", flush=True)

    horse.wire.on_listening = announce
    print(f"scenario: {args.scenario} ({count} flows submitted)", flush=True)
    try:
        result = horse.run(until=args.until or scenario.get("until"))
    finally:
        horse.shutdown_wire()
    print(summary_text(result))
    metrics = horse.telemetry.snapshot()
    print(f"wire.active_connections "
          f"{metrics.get('wire.active_connections', 0):g}")
    if args.json:
        result_to_json(result, args.json)
        print(f"wrote run document to {args.json}")
    return 0


def cmd_wire_client(args: argparse.Namespace) -> int:
    """Run the built-in wire controller against a ``repro serve``."""
    from .wire import WireControllerClient

    host, _, port = args.address.rpartition(":")
    if not host:
        raise ExperimentError(
            f"address must be 'host:port', got {args.address!r}"
        )
    routes = None
    if args.routes:
        with open(args.routes) as handle:
            routes = json.load(handle)
    client = WireControllerClient(
        host,
        int(port),
        mode=args.mode,
        routes=routes,
        connect_timeout_s=args.connect_timeout,
    )
    dpids = client.connect()
    print(f"connected to {args.address}: datapaths {dpids}", flush=True)
    try:
        client.serve()
    except KeyboardInterrupt:
        pass
    finally:
        client.close()
    for key, value in sorted(client.stats.items()):
        print(f"client.{key} {value}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Record, inspect, or summarize a structured JSONL trace."""
    from .telemetry import read_trace, summarize_trace

    if args.trace_command == "record":
        reset_id_counters()
        with open(args.scenario) as handle:
            scenario = json.load(handle)
        scenario = ensure_v1(scenario)
        scenario.setdefault("telemetry", {})["trace_path"] = args.out
        horse, fabric = build_horse(scenario, solver=args.solver)
        count = _build_traffic(scenario.get("traffic", {}), horse, fabric)
        print(f"scenario: {args.scenario} ({count} flows submitted)")
        horse.run(until=args.until or scenario.get("until"))
        emitted = horse.telemetry.trace.emitted
        horse.telemetry.disable_tracing()
        print(f"wrote {emitted + 1} trace records to {args.out}")
        return 0

    records = read_trace(args.trace_file)
    if args.trace_command == "inspect":
        shown = 0
        for record in records:
            if args.kind and record.get("kind") != args.kind:
                continue
            print(json.dumps(record, sort_keys=True))
            shown += 1
            if args.limit and shown >= args.limit:
                break
        return 0

    # summarize
    summary = summarize_trace(records)
    t_range = summary["sim_time"]
    print(f"records  : {summary['records']}")
    if t_range["min"] is not None:
        print(f"sim time : {t_range['min']:g} .. {t_range['max']:g} s")
    print(f"{'kind':32s} {'count':>8s} {'wall_dur_s':>12s}")
    for kind, entry in summary["kinds"].items():
        print(f"{kind:32s} {entry['count']:8d} {entry['wall_dur_s']:12.6f}")
    return 0


def _sweep_progress(kind: str, index: int, attempt: int, detail: str) -> None:
    if kind == "start":
        print(f"job {index:4d} attempt {attempt} started")
    elif kind == "ok":
        print(f"job {index:4d} done")
    elif kind in ("crash", "timeout"):
        print(f"job {index:4d} attempt {attempt} {kind}: {detail}")
    elif kind == "retry":
        print(f"job {index:4d} retrying (attempt {attempt}) {detail}")
    elif kind == "failed":
        print(f"job {index:4d} FAILED: {detail}")


def _report_exit(report: dict, out_dir: str) -> int:
    summary = report["summary"]
    print(
        f"sweep '{report['name']}': {summary['completed']}/{summary['jobs']} "
        f"jobs completed -> {out_dir}/report.json"
    )
    if summary["failed"]:
        print(f"failed jobs: {summary['failed']}", file=sys.stderr)
        return 2
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from .runtime.sweep import SweepSpec, run_sweep

    spec = SweepSpec.from_file(args.spec)
    report = run_sweep(
        spec,
        args.out,
        workers=args.workers,
        on_event=None if args.quiet else _sweep_progress,
    )
    return _report_exit(report, args.out)


def cmd_resume(args: argparse.Namespace) -> int:
    from .runtime.sweep import resume_sweep

    report = resume_sweep(
        args.dir,
        workers=args.workers,
        on_event=None if args.quiet else _sweep_progress,
    )
    return _report_exit(report, args.dir)


def cmd_analyze(args: argparse.Namespace) -> int:
    """Statically verify the forwarding state a scenario would install."""
    from .analysis import analyze_network

    with open(args.scenario) as handle:
        scenario = json.load(handle)
    topology, _ = _build_topology(scenario.get("topology", {}))
    config = HorseConfig(
        engine=scenario.get("engine", "flow"),
        seed=scenario.get("seed", 0),
    )
    horse = Horse(
        topology, policies=scenario.get("policies") or {}, config=config
    )
    horse.start_control_plane()
    # Failures are applied *after* proactive install, so rules that
    # predate the failure go stale — exactly the defect class the
    # analyzer exists to catch.
    for a, b in args.fail_link or []:
        topology.fail_link(a, b)
        print(f"failed link {a} <-> {b}")
    report = analyze_network(
        topology,
        specs=horse.compiled.specs if horse.compiled else None,
        ingress=args.ingress,
    )
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2)
            handle.write("\n")
        print(f"wrote analysis report to {args.json}")
    if args.sarif:
        with open(args.sarif, "w") as handle:
            json.dump(report.to_sarif(), handle, indent=2)
            handle.write("\n")
        print(f"wrote SARIF report to {args.sarif}")
    print(report.summary_text())
    # The exit status gates only under --strict; otherwise findings flow
    # to the report and CI merges analyze+lint reports before gating.
    return 1 if (args.strict and not report.ok) else 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the simulation-correctness linter over source paths."""
    from .lint import all_rules, run_lint, write_baseline

    if args.list_rules:
        for rule in sorted(all_rules(), key=lambda r: r.id):
            print(f"{rule.id}  {rule.name:24s} [{rule.severity}]")
            print(f"        {rule.description}")
        return 0
    report = run_lint(
        args.paths or ["src"],
        select=args.select or (),
        ignore=args.ignore or (),
        baseline=args.baseline,
    )
    if args.write_baseline:
        count = write_baseline(args.write_baseline, report)
        print(f"wrote {count} fingerprint(s) to {args.write_baseline}")
        return 0
    if args.format == "json":
        output = json.dumps(report.to_dict(), indent=2)
    elif args.format == "sarif":
        output = json.dumps(report.to_sarif(), indent=2)
    else:
        output = report.summary_text()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(output)
            handle.write("\n")
        print(report.summary_text())
        print(f"wrote {args.format} report to {args.output}")
    else:
        print(output)
    # Same gate semantics as `repro analyze`: non-zero only with --strict.
    return report.exit_code(strict=args.strict)


def cmd_migrate_scenario(args: argparse.Namespace) -> int:
    """Rewrite a legacy (v0) scenario document to schema v1."""
    with open(args.scenario) as handle:
        doc = json.load(handle)
    if "grid" in doc and "base" in doc:
        # A sweep spec: the scenario lives under "base"; the top-level
        # "runtime" section is the pool's (retries/backoff/workers).
        migrated = dict(doc)
        migrated["base"], notes = migrate_scenario(doc["base"])
        validate_scenario(migrated["base"])
        notes = [f"base.{note}" for note in notes]
    else:
        migrated, notes = migrate_scenario(doc)
        validate_scenario(migrated)
    text = json.dumps(migrated, indent=2) + "\n"
    for note in notes:
        print(f"  {note}", file=sys.stderr)
    if not notes:
        print(f"{args.scenario}: already at schema v{SCHEMA_VERSION}",
              file=sys.stderr)
    if args.in_place:
        with open(args.scenario, "w") as handle:
            handle.write(text)
        print(f"rewrote {args.scenario}", file=sys.stderr)
    elif args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def cmd_topo(args: argparse.Namespace) -> int:
    spec = {"kind": args.kind}
    if args.k is not None:
        spec["k"] = args.k
    if args.pods is not None:
        spec["pods"] = args.pods
    if args.hosts_per_pod is not None:
        spec["hosts_per_pod"] = args.hosts_per_pod
    if args.members is not None:
        spec["members"] = args.members
    if args.switches is not None:
        spec["switches"] = args.switches
    if args.hosts is not None:
        spec["hosts"] = args.hosts
    if args.seed is not None:
        spec["seed"] = args.seed
    topology, _ = _build_topology(spec)
    save_topology(topology, args.out)
    print(f"wrote {topology.summary()} to {args.out}")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    topology = load_topology(args.topology)
    summary = topology.summary()
    print(f"name     : {summary['name']}")
    print(f"hosts    : {summary['hosts']}")
    print(f"switches : {summary['switches']}")
    print(f"links    : {summary['links']}")
    print(f"capacity : {summary['total_capacity_bps'] / 1e9:.3g} Gb/s total")
    degree = {}
    for node in topology.nodes:
        degree[node.name] = len(node.connected_ports)
    hubs = sorted(degree.items(), key=lambda kv: -kv[1])[:5]
    print("highest-degree nodes:")
    for name, deg in hubs:
        print(f"  {name}: {deg} links")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Horse: flow-level SDN traffic dynamics simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run a scenario file (or a checkpoint)")
    run_p.add_argument(
        "scenario", nargs="?", help="scenario JSON path (omit with --restore)"
    )
    run_p.add_argument("--flows-csv", help="write per-flow records here")
    run_p.add_argument("--json", help="write the full run document here")
    run_p.add_argument(
        "--solver",
        choices=["incremental", "full", "vector"],
        help="flow-engine rate solver (overrides the scenario)",
    )
    run_p.add_argument(
        "--until", type=float, help="stop at this simulated time (seconds)"
    )
    run_p.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="checkpoint the simulation state here (at the end, or "
        "periodically with --checkpoint-interval)",
    )
    run_p.add_argument(
        "--checkpoint-interval",
        type=float,
        metavar="SECONDS",
        help="simulated seconds between periodic checkpoints",
    )
    run_p.add_argument(
        "--restore",
        metavar="PATH",
        help="resume from a checkpoint instead of building a scenario",
    )
    run_p.add_argument(
        "--trace",
        metavar="PATH",
        help="record a structured JSONL trace of the run here",
    )
    run_p.add_argument(
        "--metrics",
        metavar="PATH",
        help="write a Prometheus-style metrics exposition here at the end",
    )
    run_p.add_argument(
        "--profile",
        action="store_true",
        help="account per-phase wall clock (reported in engine_stats)",
    )
    run_p.add_argument(
        "--hybrid-select",
        metavar="SPEC",
        help="run selected flows at packet granularity (hybrid engine): "
        "none, all, top:K, or match:field=value[,...]",
    )
    run_p.add_argument(
        "--hybrid-sync-interval",
        type=float,
        metavar="SECONDS",
        help="hybrid foreground/background coupling cadence",
    )
    run_p.add_argument(
        "--shards",
        type=int,
        metavar="K",
        help="run on the sharded parallel runtime with K domains "
        "(1 = the ordinary single-process engine, bitwise-identical)",
    )
    run_p.add_argument(
        "--shard-quantum",
        type=float,
        metavar="SECONDS",
        help="shard synchronization quantum (default: derived from the "
        "minimum cross-shard link latency)",
    )
    run_p.add_argument(
        "--kernel-queue",
        choices=["heap", "sorted"],
        help="pending-event-set implementation (overrides the scenario)",
    )
    run_p.add_argument(
        "--kernel-compaction-threshold",
        type=float,
        metavar="FRACTION",
        help="stale fraction of the event heap that triggers compaction "
        "(0 or negative disables compaction)",
    )
    run_p.add_argument(
        "--check-digest",
        nargs="?",
        const="@golden",
        metavar="SHA256",
        help="verify the run's content digest: against the given value, "
        "or (with no value) against GOLDEN_DIGESTS.json next to the "
        "scenario file; mismatch exits 3",
    )
    run_p.add_argument(
        "--control",
        choices=["inproc", "wire"],
        help="control-plane transport (overrides the scenario)",
    )
    run_p.add_argument(
        "--wire-client",
        choices=["learning", "static"],
        help="run the built-in wire controller against this run's own "
        "listener (implies --control wire)",
    )
    run_p.add_argument(
        "--wire-listen",
        metavar="HOST:PORT",
        help="wire control listen address (port 0 picks a free port)",
    )
    run_p.set_defaults(func=cmd_run)

    serve_p = sub.add_parser(
        "serve",
        help="run a scenario as an OpenFlow 1.3 datapath agent for an "
        "external controller",
    )
    serve_p.add_argument("scenario", help="scenario JSON path")
    serve_p.add_argument(
        "--listen",
        metavar="HOST:PORT",
        help="listen address (default from the scenario, else 127.0.0.1:0)",
    )
    serve_p.add_argument(
        "--until", type=float, help="stop at this simulated time (seconds)"
    )
    serve_p.add_argument(
        "--budget",
        type=float,
        metavar="SECONDS",
        help="wall-clock budget for controller connect/answers "
        "(wire_latency_budget_s)",
    )
    serve_p.add_argument(
        "--dilation",
        type=float,
        metavar="FACTOR",
        help="simulated seconds charged per wall second of controller "
        "thinking time (0 = synchronous)",
    )
    serve_p.add_argument("--json", help="write the full run document here")
    serve_p.set_defaults(func=cmd_serve)

    client_p = sub.add_parser(
        "wire-client",
        help="run the built-in wire controller against a repro serve",
    )
    client_p.add_argument("address", help="server address, host:port")
    client_p.add_argument(
        "--mode",
        choices=["learning", "static"],
        default="learning",
        help="controller behavior (default: learning switch)",
    )
    client_p.add_argument(
        "--routes",
        metavar="PATH",
        help="static mode: JSON file with route dicts",
    )
    client_p.add_argument(
        "--connect-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="per-connection handshake timeout",
    )
    client_p.set_defaults(func=cmd_wire_client)

    trace_p = sub.add_parser(
        "trace", help="record, inspect, or summarize a structured trace"
    )
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)
    record_p = trace_sub.add_parser(
        "record", help="run a scenario with tracing enabled"
    )
    record_p.add_argument("scenario", help="scenario JSON path")
    record_p.add_argument(
        "--out", required=True, help="JSONL trace output path"
    )
    record_p.add_argument(
        "--solver",
        choices=["incremental", "full", "vector"],
        help="flow-engine rate solver (overrides the scenario)",
    )
    record_p.add_argument(
        "--until", type=float, help="stop at this simulated time (seconds)"
    )
    record_p.set_defaults(func=cmd_trace)
    inspect_p = trace_sub.add_parser(
        "inspect", help="print trace records as JSON lines"
    )
    inspect_p.add_argument("trace_file", help="JSONL trace path")
    inspect_p.add_argument("--kind", help="only records of this kind")
    inspect_p.add_argument(
        "--limit", type=int, help="stop after this many records"
    )
    inspect_p.set_defaults(func=cmd_trace)
    summarize_p = trace_sub.add_parser(
        "summarize", help="aggregate counts and wall time per record kind"
    )
    summarize_p.add_argument("trace_file", help="JSONL trace path")
    summarize_p.set_defaults(func=cmd_trace)

    sweep_p = sub.add_parser(
        "sweep", help="expand and run a parameter sweep on a worker pool"
    )
    sweep_p.add_argument("spec", help="sweep spec JSON path")
    sweep_p.add_argument("--out", required=True, help="sweep output directory")
    sweep_p.add_argument(
        "--workers", type=int, help="pool size (overrides the spec)"
    )
    sweep_p.add_argument(
        "--quiet", action="store_true", help="suppress per-job progress lines"
    )
    sweep_p.set_defaults(func=cmd_sweep)

    resume_p = sub.add_parser(
        "resume", help="re-run only the unfinished jobs of a sweep directory"
    )
    resume_p.add_argument("dir", help="sweep output directory (with manifest.json)")
    resume_p.add_argument(
        "--workers", type=int, help="pool size (overrides the spec)"
    )
    resume_p.add_argument(
        "--quiet", action="store_true", help="suppress per-job progress lines"
    )
    resume_p.set_defaults(func=cmd_resume)

    an_p = sub.add_parser(
        "analyze",
        help="statically verify the forwarding state a scenario installs",
    )
    an_p.add_argument("scenario", help="scenario JSON path")
    an_p.add_argument(
        "--fail-link",
        nargs=2,
        action="append",
        metavar=("A", "B"),
        help="bring a link down after rule install (repeatable)",
    )
    an_p.add_argument(
        "--ingress",
        choices=["edge", "all"],
        default="edge",
        help="inject classes at host-facing ports only (edge) or all ports",
    )
    an_p.add_argument("--json", help="write the structured report here")
    an_p.add_argument("--sarif", help="write a SARIF 2.1.0 report here")
    an_p.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when the report has findings (default: exit 0 "
        "and let CI gate on the merged report)",
    )
    an_p.set_defaults(func=cmd_analyze)

    lint_p = sub.add_parser(
        "lint",
        help="statically lint source for simulation-correctness defects",
    )
    lint_p.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src)",
    )
    lint_p.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="only run rules matching this id prefix (repeatable, "
        "e.g. DET or DET003)",
    )
    lint_p.add_argument(
        "--ignore",
        action="append",
        metavar="RULE",
        help="skip rules matching this id prefix (repeatable)",
    )
    lint_p.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format (default: text)",
    )
    lint_p.add_argument(
        "--output",
        metavar="PATH",
        help="write the report here instead of stdout",
    )
    lint_p.add_argument(
        "--baseline",
        metavar="PATH",
        help="suppress findings whose fingerprint is in this baseline file",
    )
    lint_p.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="record current findings as the new baseline and exit",
    )
    lint_p.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when the report has findings (default: exit 0 "
        "and let CI gate on the merged report)",
    )
    lint_p.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    lint_p.set_defaults(func=cmd_lint)

    mig_p = sub.add_parser(
        "migrate-scenario",
        help="rewrite a legacy (v0) scenario file to schema v1",
    )
    mig_p.add_argument("scenario", help="scenario JSON path")
    mig_p.add_argument(
        "--out", metavar="PATH", help="write here instead of stdout"
    )
    mig_p.add_argument(
        "--in-place",
        action="store_true",
        help="overwrite the input file",
    )
    mig_p.set_defaults(func=cmd_migrate_scenario)

    topo_p = sub.add_parser("topo", help="generate a topology file")
    topo_p.add_argument(
        "--kind",
        required=True,
        choices=["fat-tree", "leaf-spine", "linear", "star", "pods", "ixp"],
    )
    topo_p.add_argument("--k", type=int, help="fat-tree arity")
    topo_p.add_argument("--pods", type=int, help="pod count (kind=pods)")
    topo_p.add_argument(
        "--hosts-per-pod", type=int, help="hosts per pod (kind=pods)"
    )
    topo_p.add_argument("--members", type=int, help="IXP member count")
    topo_p.add_argument("--switches", type=int, help="linear chain length")
    topo_p.add_argument("--hosts", type=int, help="star host count")
    topo_p.add_argument("--seed", type=int)
    topo_p.add_argument("--out", required=True, help="output JSON path")
    topo_p.set_defaults(func=cmd_topo)

    info_p = sub.add_parser("info", help="describe a topology file")
    info_p.add_argument("topology", help="topology JSON path")
    info_p.set_defaults(func=cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (HorseError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
