"""The metrics registry: named counters, gauges, and histograms.

One queryable surface over every statistic the simulator produces.  Two
kinds of metric live here:

* **Owned metrics** — :class:`Counter`/:class:`Gauge`/:class:`Histogram`
  objects created through the registry and incremented by whoever holds
  them.  These are for control-rate events (monitor pushes, checkpoint
  writes), not per-event hot paths.
* **Pull sources** — callables registered with :meth:`MetricsRegistry
  .register_source` that return a plain dict of values when the registry
  is snapshot.  The data-plane engines keep their counters in flat dicts
  (a per-event registry call would slow the hot path); the registry
  pulls them at read time, so ``engine_stats``, route-cache counters,
  channel message counts, and monitor utilization all appear under one
  namespace without costing the simulation anything.

A snapshot flattens everything into dotted names
(``engine.route_cache_hits``, ``channel.flow_mods``,
``monitor.max_utilization.s1:2``) and :meth:`to_prometheus` renders the
same data as a Prometheus-style text exposition.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from ..errors import TelemetryError

Number = Union[int, float]

#: Default histogram bucket upper bounds (seconds-flavoured log scale).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0
)


class Metric:
    """Base class: a named observable with help text."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not name:
            raise TelemetryError("metric name must be non-empty")
        self.name = name
        self.help = help

    def value_snapshot(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}={self.value_snapshot()!r}>"


class Counter(Metric):
    """A monotonically increasing value."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self.value: float = 0.0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        self.value += amount

    def value_snapshot(self) -> float:
        return self.value


class Gauge(Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self.value: float = 0.0

    def set(self, value: Number) -> None:
        self.value = float(value)

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount

    def value_snapshot(self) -> float:
        return self.value


class Histogram(Metric):
    """A distribution: cumulative buckets plus count/sum/min/max."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        if not buckets or list(buckets) != sorted(buckets):
            raise TelemetryError(
                f"histogram {name} buckets must be sorted and non-empty"
            )
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self.bucket_counts: List[int] = [0] * len(self.bounds)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Number) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1

    def value_snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": {
                bound: count
                for bound, count in zip(self.bounds, self.bucket_counts)
            },
        }


def _flatten(prefix: str, value, out: Dict[str, object]) -> None:
    """Flatten nested dicts into dotted keys; tuples become ``a:b``."""
    if isinstance(value, dict):
        for key, inner in value.items():
            if isinstance(key, tuple):
                key = ":".join(str(part) for part in key)
            _flatten(f"{prefix}.{key}" if prefix else str(key), inner, out)
    else:
        out[prefix] = value


class MetricsRegistry:
    """Named metrics plus pull-sources, snapshot-able as one namespace.

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> registry.counter("checkpoint.writes").inc()
    >>> registry.register_source("engine", lambda: {"arrivals": 3})
    >>> registry.snapshot()["engine.arrivals"]
    3
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._sources: Dict[str, Callable[[], dict]] = {}

    # ------------------------------------------------------------------
    # Owned metrics
    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, cls):
                raise TelemetryError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"not {cls.kind}"
                )
            return metric
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a counter."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create a histogram."""
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Metric:
        try:
            return self._metrics[name]
        except KeyError:
            raise TelemetryError(f"no metric named {name!r}") from None

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------
    # Pull sources
    # ------------------------------------------------------------------
    def register_source(
        self, prefix: str, supplier: Callable[[], dict]
    ) -> None:
        """Register a dict-returning callable pulled at snapshot time.

        ``supplier`` must be picklable when the registry participates in
        checkpoints — bound methods of checkpointed objects are, lambdas
        are not.
        """
        if not prefix:
            raise TelemetryError("source prefix must be non-empty")
        if prefix in self._sources:
            raise TelemetryError(f"source prefix {prefix!r} already registered")
        self._sources[prefix] = supplier

    def unregister_source(self, prefix: str) -> None:
        self._sources.pop(prefix, None)

    def sources(self) -> List[str]:
        return sorted(self._sources)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Every metric and source value, flattened to dotted names."""
        out: Dict[str, object] = {}
        for name in sorted(self._metrics):
            out[name] = self._metrics[name].value_snapshot()
        for prefix in sorted(self._sources):
            _flatten(prefix, self._sources[prefix](), out)
        return out

    def to_prometheus(self) -> str:
        """A Prometheus-style text exposition of the registry.

        Owned metrics carry ``# TYPE``/``# HELP`` headers; pull-source
        values are exported as untyped samples.  Non-numeric values
        (mode strings and the like) are emitted as comments so the
        document stays machine-parseable.
        """
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            prom = _prom_name(name)
            if metric.help:
                lines.append(f"# HELP {prom} {metric.help}")
            lines.append(f"# TYPE {prom} {metric.kind}")
            if isinstance(metric, Histogram):
                cumulative = 0
                for bound, count in zip(metric.bounds, metric.bucket_counts):
                    cumulative = count
                    lines.append(
                        f'{prom}_bucket{{le="{_prom_float(bound)}"}} {cumulative}'
                    )
                lines.append(f'{prom}_bucket{{le="+Inf"}} {metric.count}')
                lines.append(f"{prom}_sum {_prom_float(metric.sum)}")
                lines.append(f"{prom}_count {metric.count}")
            else:
                lines.append(f"{prom} {_prom_float(metric.value_snapshot())}")
        for key, value in self.snapshot().items():
            if key in self._metrics:
                continue  # already rendered with type info above
            prom = _prom_name(key)
            if isinstance(value, bool):
                lines.append(f"{prom} {int(value)}")
            elif isinstance(value, (int, float)):
                lines.append(f"{prom} {_prom_float(value)}")
            else:
                lines.append(f"# {prom} = {value!r}")
        return "\n".join(lines) + "\n"


def _prom_name(name: str) -> str:
    """Sanitize a dotted metric name for the Prometheus exposition."""
    out = []
    for char in name:
        out.append(char if char.isalnum() or char == "_" else "_")
    sanitized = "".join(out)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_float(value) -> str:
    if value is None:
        return "NaN"
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
