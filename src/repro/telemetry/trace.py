"""The trace bus: structured span/event emission as JSONL.

Subsystems that can trace (the kernel, both engines, the incremental
solver, the control channel) each hold a ``trace_bus`` attribute that is
``None`` by default; every emission site is guarded by a plain ``is not
None`` check, so a disabled trace costs one attribute read per site and
allocates nothing.  Enabling tracing (``Horse.telemetry
.enable_tracing``) swaps a shared :class:`TraceBus` into those slots.

Every record carries the event ``kind``, the simulation clock ``t``,
and ``wall`` (host seconds since the bus was opened, monotonic); spans
add ``wall_dur_s``.  Records are appended to a JSONL file (or an
in-memory buffer when no path is given), and the ``repro trace`` CLI
records, inspects, and summarizes them.

The schema is documented in ``docs/observability.md``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import IO, Dict, Iterator, List, Optional

from ..errors import TelemetryError

#: Bumped when the record layout changes incompatibly.
TRACE_SCHEMA_VERSION = 1


class TraceBus:
    """A shared, append-only sink for structured trace records.

    Parameters
    ----------
    sim:
        The kernel whose clock stamps records (``t`` field); ``None``
        stamps 0.0 (useful for unit tests of the bus itself).
    path:
        JSONL output path.  ``None`` buffers records in :attr:`events`
        instead (bounded only by memory — meant for tests/inspection).
    stream:
        An already-open text stream to write to (mutually exclusive
        with ``path``).
    """

    def __init__(
        self,
        sim=None,
        path: Optional[str] = None,
        stream: Optional[IO[str]] = None,
    ) -> None:
        if path is not None and stream is not None:
            raise TelemetryError("pass path or stream, not both")
        self._sim = sim
        self.path = path
        self._stream = stream
        self._handle: Optional[IO[str]] = None
        self.events: List[dict] = []
        self.emitted = 0
        self._wall0 = time.perf_counter()
        if path is not None:
            # Open eagerly (truncating) so a recorded trace always starts
            # with the header record, even if nothing else is emitted.
            self._handle = open(path, "w")
        self.emit(
            "trace.open",
            schema=TRACE_SCHEMA_VERSION,
        )

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(self, kind: str, **fields) -> None:
        """Append one record: ``kind`` + clocks + caller fields."""
        record = {
            "kind": kind,
            "t": self._sim.now if self._sim is not None else 0.0,
            "wall": round(time.perf_counter() - self._wall0, 9),
        }
        record.update(fields)
        self.emitted += 1
        sink = self._stream if self._stream is not None else self._writer()
        if sink is not None:
            sink.write(json.dumps(record, default=str))
            sink.write("\n")
        else:
            self.events.append(record)

    @contextmanager
    def span(self, kind: str, **fields) -> Iterator[None]:
        """Time a block; emits ``kind`` with ``wall_dur_s`` on exit."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.emit(
                kind,
                wall_dur_s=round(time.perf_counter() - start, 9),
                **fields,
            )

    def _writer(self) -> Optional[IO[str]]:
        if self.path is None:
            return None
        if self._handle is None:
            # Re-opened lazily after checkpoint restore (append mode so
            # the pre-checkpoint prefix of the trace survives).
            self._handle = open(self.path, "a")
        return self._handle

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()
        elif self._stream is not None:
            self._stream.flush()

    def close(self) -> None:
        """Emit a closing record and release the file handle (if owned)."""
        self.emit("trace.close", emitted=self.emitted)
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------
    # Pickling (checkpoint/restore)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        # File handles and foreign streams don't survive pickling; the
        # restored bus re-opens its path in append mode on next emit.
        state["_handle"] = None
        state["_stream"] = None
        return state


def read_trace(source) -> List[dict]:
    """Parse a JSONL trace (path or open stream) into records."""
    own = isinstance(source, str)
    handle = open(source) if own else source
    try:
        records = []
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
        return records
    finally:
        if own:
            handle.close()


def summarize_trace(records: List[dict]) -> dict:
    """Aggregate a trace: record counts and wall time per kind, plus
    the simulated-time range covered."""
    by_kind: Dict[str, dict] = {}
    t_min: Optional[float] = None
    t_max: Optional[float] = None
    for record in records:
        kind = record.get("kind", "?")
        entry = by_kind.setdefault(
            kind, {"count": 0, "wall_dur_s": 0.0}
        )
        entry["count"] += 1
        entry["wall_dur_s"] += record.get("wall_dur_s", 0.0)
        t = record.get("t")
        if isinstance(t, (int, float)):
            t_min = t if t_min is None else min(t_min, t)
            t_max = t if t_max is None else max(t_max, t)
    for entry in by_kind.values():
        entry["wall_dur_s"] = round(entry["wall_dur_s"], 9)
    return {
        "records": len(records),
        "kinds": dict(sorted(by_kind.items())),
        "sim_time": {"min": t_min, "max": t_max},
    }
