"""The unified observation entry point.

One :class:`Telemetry` per simulation owns the metrics registry and
controls tracing/profiling for every bound subsystem.  Subsystems opt in
by exposing ``trace_bus`` and/or ``profiler`` attributes (``None`` when
disabled); :meth:`Telemetry.bind` records them, and enable/disable calls
swap the shared :class:`~repro.telemetry.trace.TraceBus` /
:class:`~repro.telemetry.profile.PhaseProfiler` in and out of those
slots.  :class:`~repro.core.simulator.Horse` constructs and binds one
automatically — ``horse.telemetry`` is the user-facing handle.
"""

from __future__ import annotations

from typing import IO, Dict, List, Optional

from .profile import PhaseProfiler
from .registry import MetricsRegistry
from .trace import TraceBus


class Telemetry:
    """Registry + trace/profiling control for one simulation.

    Examples
    --------
    >>> from repro.sim import Simulator
    >>> telemetry = Telemetry(Simulator())
    >>> bus = telemetry.enable_tracing()   # in-memory buffer
    >>> bus.emit("example", detail=1)
    >>> telemetry.disable_tracing()["example"]["count"]
    1
    """

    def __init__(self, sim=None) -> None:
        self._sim = sim
        self.registry = MetricsRegistry()
        self.trace: Optional[TraceBus] = None
        self.profiler: Optional[PhaseProfiler] = None
        self._sinks: List[object] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind(self, *sinks: object) -> None:
        """Register subsystems whose ``trace_bus``/``profiler`` slots
        this hub manages.  Already-enabled tracing/profiling is applied
        to newly bound sinks immediately."""
        for sink in sinks:
            if sink is None or sink in self._sinks:
                continue
            self._sinks.append(sink)
            if self.trace is not None and hasattr(sink, "trace_bus"):
                sink.trace_bus = self.trace
            if self.profiler is not None and hasattr(sink, "profiler"):
                sink.profiler = self.profiler

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    @property
    def tracing_enabled(self) -> bool:
        return self.trace is not None

    def enable_tracing(
        self,
        path: Optional[str] = None,
        stream: Optional[IO[str]] = None,
    ) -> TraceBus:
        """Start tracing every bound subsystem.

        ``path`` appends JSONL records there; with neither ``path`` nor
        ``stream`` the records buffer in ``bus.events``.  Idempotent
        while already enabled (returns the live bus).
        """
        if self.trace is not None:
            return self.trace
        bus = TraceBus(self._sim, path=path, stream=stream)
        self.trace = bus
        for sink in self._sinks:
            if hasattr(sink, "trace_bus"):
                sink.trace_bus = bus
        return bus

    def disable_tracing(self) -> Optional[dict]:
        """Stop tracing; returns the closed trace's per-kind summary
        (None when tracing was not enabled)."""
        bus = self.trace
        if bus is None:
            return None
        self.trace = None
        for sink in self._sinks:
            if getattr(sink, "trace_bus", None) is bus:
                sink.trace_bus = None
        bus.close()
        from .trace import summarize_trace

        return summarize_trace(bus.events)["kinds"] if bus.events else {}

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    @property
    def profiling_enabled(self) -> bool:
        return self.profiler is not None

    def enable_profiling(self) -> PhaseProfiler:
        """Start per-phase wall-clock accounting on bound subsystems."""
        if self.profiler is None:
            self.profiler = PhaseProfiler()
            for sink in self._sinks:
                if hasattr(sink, "profiler"):
                    sink.profiler = self.profiler
        return self.profiler

    def disable_profiling(self) -> Optional[Dict[str, dict]]:
        """Stop profiling; returns the final per-phase snapshot."""
        profiler = self.profiler
        if profiler is None:
            return None
        self.profiler = None
        for sink in self._sinks:
            if getattr(sink, "profiler", None) is profiler:
                sink.profiler = None
        return profiler.snapshot()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """The registry's flattened metric namespace."""
        return self.registry.snapshot()

    def prometheus(self) -> str:
        """The registry as a Prometheus-style text exposition."""
        return self.registry.to_prometheus()
