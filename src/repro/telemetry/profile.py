"""Per-phase wall-clock profiling for simulation hot paths.

A :class:`PhaseProfiler` accumulates host seconds per named phase.  The
kernel charges ``dispatch`` (inclusive: everything an event's firing
does), the flow engine charges ``solve`` (rate re-computation) and
``route`` (pipeline walks) inside it, so ``dispatch - solve - route``
approximates everything else.  Like tracing, profiling is off by
default and every measuring site is guarded by an ``is not None``
check.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator


class PhaseProfiler:
    """Accumulates wall-clock time and invocation counts per phase.

    Examples
    --------
    >>> profiler = PhaseProfiler()
    >>> with profiler.phase("solve"):
    ...     pass
    >>> profiler.snapshot()["solve"]["count"]
    1
    """

    __slots__ = ("totals", "counts")

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}

    def add(self, phase: str, seconds: float) -> None:
        """Charge ``seconds`` of wall time to ``phase``."""
        self.totals[phase] = self.totals.get(phase, 0.0) + seconds
        self.counts[phase] = self.counts.get(phase, 0) + 1

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context-manager convenience around :meth:`add`.

        Hot paths should call ``perf_counter`` + :meth:`add` directly;
        the context manager is for control-rate call sites.
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def reset(self) -> None:
        self.totals.clear()
        self.counts.clear()

    def snapshot(self) -> Dict[str, dict]:
        """``{phase: {"wall_s": ..., "count": ...}}`` (sorted by name)."""
        return {
            name: {
                "wall_s": round(self.totals[name], 6),
                "count": self.counts[name],
            }
            for name in sorted(self.totals)
        }
