"""The typed monitoring sample.

:class:`MonitorSample` replaces the raw dicts
:class:`~repro.control.monitor.NetworkMonitor` used to hand to apps.
Attribute access is the API; the mapping-style access the old dicts
allowed (``sample["utilization"]``, ``sample.get("tx_bps")``) keeps
working for one release through a shim that emits a
:class:`DeprecationWarning` (once per call site under the default
warning filter).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields
from typing import Dict, List, Tuple

#: A sample key: (switch name, port number) — the egress direction.
PortKey = Tuple[str, int]


def _warn_mapping_access(what: str) -> None:
    # stacklevel=3: _warn_mapping_access <- shim method <- user call site,
    # so the warning registry dedupes per user call site.
    warnings.warn(
        f"dict-style MonitorSample access ({what}) is deprecated; "
        "use attribute access (sample.utilization, sample.tx_bps, ...)",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass
class MonitorSample:
    """One monitoring sample: per-egress-port rates and utilization.

    Attributes
    ----------
    time:
        Simulation time the sample was taken at.
    tx_bps / rx_bps:
        Per ``(switch, port)`` egress/ingress rate derived from counter
        deltas since the previous sample (empty on the first sample).
    utilization:
        ``tx_bps / link capacity`` per egress port with a live link.
    congested:
        Ports whose utilization met the monitor's threshold.
    """

    time: float
    tx_bps: Dict[PortKey, float] = field(default_factory=dict)
    rx_bps: Dict[PortKey, float] = field(default_factory=dict)
    utilization: Dict[PortKey, float] = field(default_factory=dict)
    congested: List[PortKey] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Deprecated mapping shim (one release)
    # ------------------------------------------------------------------
    def __getitem__(self, key: str):
        _warn_mapping_access(f"sample[{key!r}]")
        try:
            return getattr(self, key)
        except AttributeError:
            raise KeyError(key) from None

    def get(self, key: str, default=None):
        _warn_mapping_access(f"sample.get({key!r})")
        return getattr(self, key, default)

    def __contains__(self, key: object) -> bool:
        _warn_mapping_access(f"{key!r} in sample")
        return isinstance(key, str) and key in _FIELD_NAMES

    def keys(self) -> Tuple[str, ...]:
        _warn_mapping_access("sample.keys()")
        return _FIELD_NAMES

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """An explicit (non-deprecated) plain-dict view."""
        return {name: getattr(self, name) for name in _FIELD_NAMES}


_FIELD_NAMES: Tuple[str, ...] = tuple(f.name for f in fields(MonitorSample))
