"""Unified telemetry: tracing, metrics registry, profiling, samples."""

from .hub import Telemetry
from .profile import PhaseProfiler
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
)
from .sample import MonitorSample, PortKey
from .trace import TRACE_SCHEMA_VERSION, TraceBus, read_trace, summarize_trace

__all__ = [
    "Telemetry",
    "MetricsRegistry",
    "Metric",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "TraceBus",
    "read_trace",
    "summarize_trace",
    "TRACE_SCHEMA_VERSION",
    "PhaseProfiler",
    "MonitorSample",
    "PortKey",
]
