"""OpenFlow pipeline tests: multi-table, groups, meters, flood, set-field."""

import pytest

from repro.errors import OpenFlowError
from repro.net import IPv4Address, Topology
from repro.openflow import (
    ApplyActions,
    Bucket,
    Drop,
    DropBand,
    Flood,
    GotoTable,
    GroupAction,
    GroupType,
    HeaderFields,
    Match,
    MeterInstruction,
    Output,
    PORT_IN_PORT,
    SetField,
    ToController,
    attach_pipeline,
)
from repro.openflow.headers import tcp_flow


@pytest.fixture
def switch_with_ports():
    """One switch with 4 connected ports (to stub hosts)."""
    topo = Topology()
    switch = topo.add_switch("s1")
    for i in range(4):
        host = topo.add_host(f"h{i + 1}")
        topo.add_link(host, switch)
    return topo, switch


def hdr(tp_dst=80):
    return tcp_flow(IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"), 999, tp_dst)


class TestBasicProcessing:
    def test_miss_on_empty_pipeline(self, switch_with_ports):
        _, switch = switch_with_ports
        pipeline = attach_pipeline(switch)
        result = pipeline.process(hdr(), in_port=1)
        assert result.miss and not result.forwards

    def test_output_action(self, switch_with_ports):
        _, switch = switch_with_ports
        pipeline = attach_pipeline(switch)
        pipeline.install(Match(), (ApplyActions((Output(2),)),))
        result = pipeline.process(hdr(), in_port=1)
        assert result.out_ports == [2]
        assert result.forwards
        assert len(result.matched_entries) == 1

    def test_output_to_in_port_suppressed(self, switch_with_ports):
        _, switch = switch_with_ports
        pipeline = attach_pipeline(switch)
        pipeline.install(Match(), (ApplyActions((Output(1),)),))
        assert pipeline.process(hdr(), in_port=1).out_ports == []

    def test_reserved_in_port_sends_back(self, switch_with_ports):
        _, switch = switch_with_ports
        pipeline = attach_pipeline(switch)
        pipeline.install(Match(), (ApplyActions((Output(PORT_IN_PORT),)),))
        assert pipeline.process(hdr(), in_port=1).out_ports == [1]

    def test_drop_wins_over_output(self, switch_with_ports):
        _, switch = switch_with_ports
        pipeline = attach_pipeline(switch)
        pipeline.install(Match(), (ApplyActions((Output(2), Drop())),))
        result = pipeline.process(hdr(), in_port=1)
        assert result.dropped and result.out_ports == []

    def test_to_controller_flag(self, switch_with_ports):
        _, switch = switch_with_ports
        pipeline = attach_pipeline(switch)
        pipeline.install(Match(), (ApplyActions((ToController(),)),))
        result = pipeline.process(hdr(), in_port=1)
        assert result.to_controller and not result.miss

    def test_flood_excludes_in_port_and_down_links(self, switch_with_ports):
        topo, switch = switch_with_ports
        pipeline = attach_pipeline(switch)
        pipeline.install(Match(), (ApplyActions((Flood(),)),))
        assert pipeline.process(hdr(), in_port=1).out_ports == [2, 3, 4]
        topo.fail_link("s1", "h3")  # h3 is port 3
        assert pipeline.process(hdr(), in_port=1).out_ports == [2, 4]

    def test_priority_order_respected(self, switch_with_ports):
        _, switch = switch_with_ports
        pipeline = attach_pipeline(switch)
        pipeline.install(Match(), (ApplyActions((Output(2),)),), priority=1)
        pipeline.install(
            Match(tp_dst=80), (ApplyActions((Drop(),)),), priority=100
        )
        assert pipeline.process(hdr(tp_dst=80), in_port=1).dropped
        assert pipeline.process(hdr(tp_dst=443), in_port=1).out_ports == [2]


class TestSetField:
    def test_set_field_rewrites_headers(self, switch_with_ports):
        _, switch = switch_with_ports
        pipeline = attach_pipeline(switch)
        pipeline.install(
            Match(),
            (ApplyActions((SetField("tp_dst", 8080), Output(2))),),
        )
        result = pipeline.process(hdr(tp_dst=80), in_port=1)
        assert result.headers.tp_dst == 8080

    def test_set_field_visible_to_next_table(self, switch_with_ports):
        _, switch = switch_with_ports
        pipeline = attach_pipeline(switch, num_tables=2)
        pipeline.install(
            Match(),
            (ApplyActions((SetField("tp_dst", 8080),)), GotoTable(1)),
            table_id=0,
        )
        pipeline.install(
            Match(tp_dst=8080), (ApplyActions((Output(3),)),), table_id=1
        )
        result = pipeline.process(hdr(tp_dst=80), in_port=1)
        assert result.out_ports == [3]

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            SetField("nope", 1)


class TestMultiTable:
    def test_goto_table_chains(self, switch_with_ports):
        _, switch = switch_with_ports
        pipeline = attach_pipeline(switch, num_tables=3)
        pipeline.install(Match(), (GotoTable(1),), table_id=0)
        pipeline.install(Match(), (GotoTable(2),), table_id=1)
        pipeline.install(Match(), (ApplyActions((Output(2),)),), table_id=2)
        result = pipeline.process(hdr(), in_port=1)
        assert result.out_ports == [2]
        assert len(result.matched_entries) == 3

    def test_goto_backwards_rejected(self, switch_with_ports):
        _, switch = switch_with_ports
        pipeline = attach_pipeline(switch, num_tables=2)
        pipeline.install(Match(), (GotoTable(1),), table_id=0)
        pipeline.install(Match(), (GotoTable(1),), table_id=1)
        with pytest.raises(OpenFlowError):
            pipeline.process(hdr(), in_port=1)

    def test_miss_in_later_table_not_marked_miss(self, switch_with_ports):
        """A table-1 miss after a table-0 match ends quietly (no rules in
        table 1), which is distinct from a pipeline-entry miss."""
        _, switch = switch_with_ports
        pipeline = attach_pipeline(switch, num_tables=2)
        pipeline.install(Match(), (GotoTable(1),), table_id=0)
        result = pipeline.process(hdr(), in_port=1)
        assert not result.miss
        assert result.out_ports == []

    def test_invalid_table_reference(self, switch_with_ports):
        _, switch = switch_with_ports
        pipeline = attach_pipeline(switch, num_tables=1)
        with pytest.raises(OpenFlowError):
            pipeline.table(5)


class TestGroupsInPipeline:
    def test_select_group_outputs_one_port(self, switch_with_ports):
        _, switch = switch_with_ports
        pipeline = attach_pipeline(switch)
        pipeline.groups.add(
            7,
            GroupType.SELECT,
            [Bucket((Output(2),)), Bucket((Output(3),))],
        )
        pipeline.install(Match(), (ApplyActions((GroupAction(7),)),))
        result = pipeline.process(hdr(), in_port=1)
        assert len(result.out_ports) == 1
        assert result.out_ports[0] in (2, 3)
        assert result.group_hits[0][0].group_id == 7

    def test_all_group_replicates(self, switch_with_ports):
        _, switch = switch_with_ports
        pipeline = attach_pipeline(switch)
        pipeline.groups.add(
            7, GroupType.ALL, [Bucket((Output(2),)), Bucket((Output(3),))]
        )
        pipeline.install(Match(), (ApplyActions((GroupAction(7),)),))
        assert pipeline.process(hdr(), in_port=1).out_ports == [2, 3]

    def test_failover_group_follows_port_state(self, switch_with_ports):
        topo, switch = switch_with_ports
        pipeline = attach_pipeline(switch)
        pipeline.groups.add(
            7,
            GroupType.FAST_FAILOVER,
            [
                Bucket((Output(2),), watch_port=2),
                Bucket((Output(3),), watch_port=3),
            ],
        )
        pipeline.install(Match(), (ApplyActions((GroupAction(7),)),))
        assert pipeline.process(hdr(), in_port=1).out_ports == [2]
        topo.fail_link("s1", "h2")  # kills port 2
        assert pipeline.process(hdr(), in_port=1).out_ports == [3]

    def test_unknown_group_raises(self, switch_with_ports):
        _, switch = switch_with_ports
        pipeline = attach_pipeline(switch)
        pipeline.install(Match(), (ApplyActions((GroupAction(9),)),))
        with pytest.raises(OpenFlowError):
            pipeline.process(hdr(), in_port=1)


class TestMetersInPipeline:
    def test_meter_ids_collected(self, switch_with_ports):
        _, switch = switch_with_ports
        pipeline = attach_pipeline(switch)
        pipeline.meters.add(3, [DropBand(rate_bps=1e6)])
        pipeline.install(
            Match(), (MeterInstruction(3), ApplyActions((Output(2),)))
        )
        result = pipeline.process(hdr(), in_port=1)
        assert result.meter_ids == [3]
        assert result.out_ports == [2]

    def test_unknown_meter_raises(self, switch_with_ports):
        _, switch = switch_with_ports
        pipeline = attach_pipeline(switch)
        pipeline.install(
            Match(), (MeterInstruction(9), ApplyActions((Output(2),)))
        )
        with pytest.raises(OpenFlowError):
            pipeline.process(hdr(), in_port=1)


class TestExpiry:
    def test_expire_reports_table_ids(self, switch_with_ports):
        _, switch = switch_with_ports
        pipeline = attach_pipeline(switch, num_tables=2)
        pipeline.install(Match(), (), hard_timeout=1.0, table_id=1, now=0.0)
        expired = pipeline.expire(now=2.0)
        assert len(expired) == 1
        table_id, _, reason = expired[0]
        assert table_id == 1 and reason == "hard"
        assert pipeline.total_entries == 0

    def test_clear_wipes_everything(self, switch_with_ports):
        _, switch = switch_with_ports
        pipeline = attach_pipeline(switch)
        pipeline.install(Match(), ())
        pipeline.groups.add(1, GroupType.ALL, [Bucket((Output(2),))])
        pipeline.meters.add(1, [DropBand(rate_bps=1e6)])
        pipeline.clear()
        assert pipeline.total_entries == 0
        assert len(pipeline.groups) == 0
        assert len(pipeline.meters) == 0

    def test_attach_is_idempotent(self, switch_with_ports):
        _, switch = switch_with_ports
        first = attach_pipeline(switch)
        second = attach_pipeline(switch, num_tables=5)
        assert first is second
