"""Shared workload builders for engine tests.

One `make_flow` serves the flow-level, packet-level, and hybrid test
modules, so all three engines are exercised with identically-built
flows (same headers, same defaults) — a prerequisite for the
differential suites under tests/diff/.
"""

from repro.flowsim import Flow
from repro.openflow.headers import tcp_flow, udp_flow


def make_flow(topo, src, dst, demand, size=None, duration=None, start=0.0,
              sport=1000, dport=80, elastic=True, weight=1.0):
    """A flow between two hosts with fully-populated L2-L4 headers."""
    src_h, dst_h = topo.host(src), topo.host(dst)
    builder = tcp_flow if elastic else udp_flow
    return Flow(
        headers=builder(src_h.ip, dst_h.ip, sport, dport,
                        eth_src=src_h.mac, eth_dst=dst_h.mac),
        src=src,
        dst=dst,
        demand_bps=demand,
        size_bytes=size,
        duration_s=duration,
        start_time=start,
        elastic=elastic,
        weight=weight,
    )
